//! End-to-end federated training on a skewed CIFAR10-like federation, comparing
//! Random, Dubhe and Greedy client selection — a laptop-scale rendition of the
//! paper's Fig. 6 (CIFAR10-10/1.5 column).
//!
//! ```text
//! cargo run --release --example skewed_training_comparison [-- --rounds 60]
//! ```

use dubhe::data::federated::{DatasetFamily, FederatedSpec};
use dubhe::fl::models::small_mlp;
use dubhe::fl::LocalOptimizer;
use dubhe::{
    ClientSelector, DubheConfig, DubheSelector, FlSimulation, GreedySelector, RandomSelector,
    SimulationConfig,
};
use rand::SeedableRng;

fn main() {
    let rounds: usize = std::env::args()
        .skip_while(|a| a != "--rounds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let spec = FederatedSpec {
        family: DatasetFamily::CifarLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 200,
        samples_per_client: 64,
        test_samples_per_class: 30,
        seed: 2021,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let data = spec.build_dataset(&mut rng);
    let dists = data.client_distributions();
    println!(
        "{}: {} clients, rho = {:.1}, EMD_avg = {:.2}, {rounds} rounds, K = 20",
        spec.name(),
        data.num_clients(),
        data.partition.global.imbalance_ratio(),
        data.partition.partition.achieved_emd
    );

    let run = |name: &str, selector: Box<dyn ClientSelector>| {
        let model = small_mlp(32, 10, 5);
        let mut config = SimulationConfig::quick(rounds, 99);
        config.local.optimizer = LocalOptimizer::Sgd { lr: 0.08 };
        config.eval_every = 5;
        let mut sim = FlSimulation::from_datasets(
            data.client_data.clone(),
            data.test.clone(),
            model,
            selector,
            config,
        );
        let history = sim.run().expect("valid selections");
        println!("\n--- {name} ---");
        for (round, acc) in history.accuracy_curve() {
            println!("  round {round:>3}: accuracy {acc:.3}");
        }
        println!(
            "  avg accuracy (last 10 evals): {:.3}   mean ||p_o - p_u||_1: {:.3}",
            history.average_accuracy_last(10).unwrap(),
            history.mean_unbiasedness()
        );
        history
    };

    let random = run(
        "Random selection",
        Box::new(RandomSelector::new(dists.len(), 20)),
    );
    let dubhe = run(
        "Dubhe selection",
        Box::new(DubheSelector::new(&dists, DubheConfig::group1())),
    );
    let greedy = run(
        "Greedy selection",
        Box::new(GreedySelector::new(&dists, 20)),
    );

    println!("\n=== summary (higher accuracy / lower unbiasedness is better) ===");
    for (name, h) in [("Random", &random), ("Dubhe", &dubhe), ("Greedy", &greedy)] {
        println!(
            "  {name:<7}: final acc {:.3}, avg last-10 {:.3}, mean ||p_o - p_u||_1 {:.3}",
            h.final_accuracy().unwrap(),
            h.average_accuracy_last(10).unwrap(),
            h.mean_unbiasedness()
        );
    }
}
