//! Quickstart: build a skewed federation, compare the three client-selection
//! methods on data unbiasedness, and run a short federated training session.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dubhe::data::federated::{DatasetFamily, FederatedSpec};
use dubhe::fl::models::small_mlp;
use dubhe::fl::LocalOptimizer;
use dubhe::select::selector::{population_unbiasedness, selection_stats};
use dubhe::{
    ClientSelector, DubheConfig, DubheSelector, FlSimulation, GreedySelector, RandomSelector,
    SimulationConfig,
};
use rand::SeedableRng;

fn main() {
    // ------------------------------------------------------------------
    // 1. A skewed federation: 500 clients, global imbalance rho = 10,
    //    strongly non-IID clients (EMD_avg = 1.5). This is the hardest
    //    setting of the paper's Fig. 9.
    // ------------------------------------------------------------------
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 500,
        samples_per_client: 32,
        test_samples_per_class: 20,
        seed: 42,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let data = spec.build_dataset(&mut rng);
    let dists = data.client_distributions();
    println!("federation   : {}", spec.name());
    println!("clients      : {}", data.num_clients());
    println!(
        "global rho   : {:.2}",
        data.partition.global.imbalance_ratio()
    );
    println!(
        "achieved EMD : {:.3}",
        data.partition.partition.achieved_emd
    );
    println!();

    // ------------------------------------------------------------------
    // 2. Compare data unbiasedness ||p_o - p_u||_1 of one selection round.
    // ------------------------------------------------------------------
    let k = 20;
    let mut random = RandomSelector::new(dists.len(), k);
    let mut dubhe = DubheSelector::new(&dists, DubheConfig::group1());
    let mut greedy = GreedySelector::new(&dists, k);

    println!("single-round ||p_o - p_u||_1 (lower is better):");
    for (name, selected) in [
        ("Random", random.select(&mut rng)),
        ("Dubhe", dubhe.select(&mut rng)),
        ("Greedy", greedy.select(&mut rng)),
    ] {
        println!(
            "  {name:<7}: {:.4}",
            population_unbiasedness(&selected, &dists).unwrap()
        );
    }
    println!();

    // Averaged over repeated selections (the paper's Fig. 9 methodology).
    println!("mean +/- std over 50 selections:");
    let reps = 50;
    let r = selection_stats(&mut random, &dists, reps, &mut rng).unwrap();
    let d = selection_stats(&mut dubhe, &dists, reps, &mut rng).unwrap();
    let g = selection_stats(&mut greedy, &dists, reps, &mut rng).unwrap();
    println!("  Random : {:.4} +/- {:.4}", r.mean, r.std);
    println!("  Dubhe  : {:.4} +/- {:.4}", d.mean, d.std);
    println!("  Greedy : {:.4} +/- {:.4}", g.mean, g.std);
    println!(
        "  Dubhe reduces the gap by {:.1}% vs random",
        100.0 * (1.0 - d.mean / r.mean)
    );
    println!();

    // ------------------------------------------------------------------
    // 3. A short federated training run with Dubhe selection.
    // ------------------------------------------------------------------
    let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
    let model = small_mlp(32, 10, 7);
    let mut config = SimulationConfig::quick(15, 7);
    config.local.optimizer = LocalOptimizer::Sgd { lr: 0.1 };
    let mut sim = FlSimulation::from_datasets(
        data.client_data.clone(),
        data.test.clone(),
        model,
        selector,
        config,
    );
    let history = sim.run().expect("valid selections");
    println!(
        "federated training with Dubhe selection ({} rounds):",
        history.len()
    );
    for (round, acc) in history.accuracy_curve().iter().step_by(3) {
        println!("  round {round:>3}: test accuracy {acc:.3}");
    }
    println!(
        "  final accuracy {:.3}, mean unbiasedness {:.3}",
        history.final_accuracy().unwrap(),
        history.mean_unbiasedness()
    );
}
