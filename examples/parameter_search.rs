//! Parameter search (§5.3.2): find the registration thresholds σ₁, σ₂ for a
//! given federation via multi-time tentative selections, then show the effect
//! of the tuned thresholds on data unbiasedness.
//!
//! ```text
//! cargo run --release --example parameter_search
//! ```

use dubhe::data::federated::{DatasetFamily, FederatedSpec};
use dubhe::select::param_search::{parameter_search, SearchGrid};
use dubhe::select::selector::selection_stats;
use dubhe::{DubheConfig, DubheSelector, RandomSelector};
use rand::SeedableRng;

fn main() {
    let spec = FederatedSpec {
        family: DatasetFamily::CifarLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 1000,
        samples_per_client: 64,
        test_samples_per_class: 1,
        seed: 77,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let dists = spec.build_partition(&mut rng).client_distributions();
    println!("federation: {} with {} clients", spec.name(), dists.len());

    let base = DubheConfig::group1();
    let grid = SearchGrid {
        values: vec![0.1, 0.3, 0.5, 0.7, 0.9],
        tries_per_candidate: 5,
    };
    println!(
        "searching sigma_1, sigma_2 over {:?} with H = {} tries per candidate ...",
        grid.values, grid.tries_per_candidate
    );
    let outcome = parameter_search(&dists, &base, &grid, &mut rng);

    println!("\ncandidates (sigma_1, sigma_2 -> ||E_h(p_o,h) - p_u||_1):");
    for c in &outcome.candidates {
        println!(
            "  sigma_1 = {:.1}, sigma_2 = {:.1} -> {:.4}",
            c.thresholds[0], c.thresholds[1], c.objective
        );
    }
    println!(
        "\nbest thresholds: sigma_1 = {:.1}, sigma_2 = {:.1} (objective {:.4})",
        outcome.best_thresholds[0], outcome.best_thresholds[1], outcome.best_objective
    );
    println!("(the paper's search finds sigma_1 = 0.7, sigma_2 = 0.1 for this setting)");

    // Effect of the tuned thresholds on repeated selections.
    let reps = 50;
    let mut random = RandomSelector::new(dists.len(), base.k);
    let mut default_dubhe = DubheSelector::new(&dists, base.clone());
    let mut tuned_dubhe = DubheSelector::new(
        &dists,
        base.with_thresholds(outcome.best_thresholds.clone()),
    );
    let r = selection_stats(&mut random, &dists, reps, &mut rng).unwrap();
    let d0 = selection_stats(&mut default_dubhe, &dists, reps, &mut rng).unwrap();
    let d1 = selection_stats(&mut tuned_dubhe, &dists, reps, &mut rng).unwrap();
    println!("\n||p_o - p_u||_1 over {reps} selections:");
    println!("  Random              : {:.4} +/- {:.4}", r.mean, r.std);
    println!("  Dubhe (paper sigma) : {:.4} +/- {:.4}", d0.mean, d0.std);
    println!("  Dubhe (searched)    : {:.4} +/- {:.4}", d1.mean, d1.std);
}
