//! Secure registration walk-through: the full Paillier-encrypted protocol of
//! Fig. 4, showing exactly what the server sees (ciphertexts only) and what
//! each client learns (the aggregate registry and its own probability).
//!
//! ```text
//! cargo run --release --example secure_registration
//! ```
//!
//! Key size defaults to 512 bits so the example finishes in seconds; pass
//! `--key-bits 2048` for the paper's production setting.

use dubhe::data::federated::{DatasetFamily, FederatedSpec};
use dubhe::select::probability::participation_probability;
use dubhe::select::secure::{secure_evaluate_try, secure_registration};
use dubhe::select::DubheConfig;
use dubhe::Keypair;
use rand::SeedableRng;

fn main() {
    let key_bits: u64 = std::env::args()
        .skip_while(|a| a != "--key-bits")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);

    // A small federation so the console output stays readable.
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 40,
        samples_per_client: 64,
        test_samples_per_class: 1,
        seed: 9,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let clients = spec.build_partition(&mut rng).client_distributions();
    let config = DubheConfig::group1();

    println!("== secure registration epoch ({key_bits}-bit Paillier) ==");
    let epoch =
        secure_registration(&clients, &config, key_bits, &mut rng).expect("non-empty federation");
    println!("agent client              : #{}", epoch.agent);
    println!(
        "registries received       : {}",
        epoch.server_view.messages_received
    );
    println!(
        "ciphertext bytes received : {}",
        epoch.server_view.bytes_received
    );
    println!(
        "one registry              : {} B plaintext -> {} B ciphertext ({:.0}x expansion)",
        epoch.registry_plaintext_bytes,
        epoch.registry_ciphertext_bytes,
        epoch.registry_ciphertext_bytes as f64 / epoch.registry_plaintext_bytes as f64
    );

    println!("\noverall registry (decrypted by clients, occupied categories only):");
    let layout = config.validate();
    for (pos, &count) in epoch.overall_registry.iter().enumerate() {
        if count > 0 {
            let cat = layout.category_at(pos);
            println!("  category {:?} -> {count} clients", cat.classes);
        }
    }

    println!("\nper-client probabilities (first 10 clients):");
    for (id, reg) in epoch.registrations.iter().take(10).enumerate() {
        let p = participation_probability(&epoch.overall_registry, reg.position, config.k);
        println!(
            "  client {id:>2}: dominating classes {:?} -> P = {p:.3}",
            reg.category.classes
        );
    }
    let expected: f64 = epoch
        .registrations
        .iter()
        .map(|r| participation_probability(&epoch.overall_registry, r.position, config.k))
        .sum();
    println!(
        "expected participants (Eq. 7): {expected:.2} (target K = {})",
        config.k
    );

    // A secure multi-time tentative try: the agent learns only the aggregate.
    println!("\n== secure tentative try (encrypted p_l aggregation) ==");
    let keypair = Keypair::generate(key_bits, &mut rng);
    let (pk, sk) = keypair.split();
    let selected: Vec<usize> = (0..20).collect();
    let outcome = secure_evaluate_try(&selected, &clients, &pk, &sk, &mut rng)
        .expect("non-empty tentative set");
    println!("tentative clients          : {}", outcome.messages);
    println!("ciphertext bytes exchanged : {}", outcome.ciphertext_bytes);
    println!(
        "agent-side ||p_o - p_u||_1 : {:.4}",
        outcome.distance_to_uniform
    );
}
