//! FEMNIST-scale client selection: the paper's group-2 setting with 8962
//! clients over 52 classes (Table 1 / Fig. 8), selection-only so it runs in
//! seconds at full population scale.
//!
//! ```text
//! cargo run --release --example femnist_scale_selection
//! ```

use dubhe::data::federated::FederatedSpec;
use dubhe::select::selector::selection_stats;
use dubhe::{DubheConfig, DubheSelector, GreedySelector, RandomSelector};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // The paper's group 2: FEMNIST letters, rho = 13.64, EMD_avg = 0.554,
    // N = 8962 clients, K = 20 participants per round.
    let spec = FederatedSpec::group2();
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    println!("building {} with {} clients ...", spec.name(), spec.clients);
    let t = Instant::now();
    let partition = spec.build_partition(&mut rng);
    let dists = partition.client_distributions();
    println!("built in {:.2?}", t.elapsed());
    println!("global rho   : {:.2}", partition.global.imbalance_ratio());
    println!("achieved EMD : {:.3}", partition.partition.achieved_emd);
    println!();

    let k = 20;
    let reps = 20;

    // Random selection: cheap but biased toward the skewed global distribution.
    let t = Instant::now();
    let mut random = RandomSelector::new(dists.len(), k);
    let r = selection_stats(&mut random, &dists, reps, &mut rng).unwrap();
    let random_time = t.elapsed();

    // Dubhe: one registration pass, then probability-driven participation.
    let t = Instant::now();
    let mut dubhe = DubheSelector::new(&dists, DubheConfig::group2());
    let d = selection_stats(&mut dubhe, &dists, reps, &mut rng).unwrap();
    let dubhe_time = t.elapsed();

    // Greedy: needs plaintext distributions and O(N*K) work per round — the
    // paper reports 1.69x extra selection time at N = 8962.
    let t = Instant::now();
    let mut greedy = GreedySelector::new(&dists, k);
    let g = selection_stats(&mut greedy, &dists, reps, &mut rng).unwrap();
    let greedy_time = t.elapsed();

    println!(
        "||p_o - p_u||_1 over {reps} selections of K = {k} out of {}:",
        dists.len()
    );
    println!(
        "  Random : mean {:.4} +/- {:.4}   ({:.2?} total)",
        r.mean, r.std, random_time
    );
    println!(
        "  Dubhe  : mean {:.4} +/- {:.4}   ({:.2?} total)",
        d.mean, d.std, dubhe_time
    );
    println!(
        "  Greedy : mean {:.4} +/- {:.4}   ({:.2?} total)",
        g.mean, g.std, greedy_time
    );
    println!();
    println!(
        "Dubhe reduces the distance to uniform by {:.1}% vs random while never \
         revealing a client's label distribution; greedy needs {:.1}x Dubhe's time \
         and full plaintext knowledge.",
        100.0 * (1.0 - d.mean / r.mean),
        greedy_time.as_secs_f64() / dubhe_time.as_secs_f64().max(1e-9),
    );
}
