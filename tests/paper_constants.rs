//! Integration tests pinning the concrete numbers the paper states outside of
//! its figures: registry lengths, the Fig. 4 worked example, the expected
//! participation identity (Eq. 7), and the §6.4 communication-count model.

use dubhe::data::ClassDistribution;
use dubhe::he::transport::CommunicationCount;
use dubhe::he::{ciphertext_size_bytes, Keypair};
use dubhe::select::codebook::{binomial, Category, RegistryLayout};
use dubhe::select::probability::expected_participation;
use dubhe::select::registry::register;
use dubhe::select::DubheConfig;
use rand::SeedableRng;

#[test]
fn registry_lengths_match_section_6_1_2() {
    // l1 = C(10,1) + C(10,2) + C(10,10) = 56 and l2 = C(52,1) + C(52,52) = 53.
    assert_eq!(RegistryLayout::group1().len(), 56);
    assert_eq!(RegistryLayout::group2().len(), 53);
    assert_eq!(binomial(10, 1) + binomial(10, 2) + binomial(10, 10), 56);
    assert_eq!(binomial(52, 1) + binomial(52, 52), 53);
}

#[test]
fn figure4_worked_example() {
    // Fig. 4 / §5.1: a client whose classes 0 and 1 both exceed sigma_2 (but
    // neither exceeds sigma_1) is categorised as u = (0, 1) and flips the
    // registry bit at the first position of the pair block.
    let layout = RegistryLayout::group1();
    let sigma = DubheConfig::group1().effective_thresholds();
    let d = ClassDistribution::from_counts(vec![40, 40, 4, 4, 3, 3, 2, 2, 1, 1]);
    let reg = register(&d, &layout, &sigma);
    assert_eq!(reg.category, Category::new(vec![0, 1]));
    assert_eq!(reg.position, binomial(10, 1) as usize);
    assert_eq!(reg.registry.iter().sum::<u64>(), 1);
}

#[test]
fn expected_participation_identity_eq7() {
    // Eq. (7): sum over clients of P^(t,k) equals K for any overall registry in
    // which no category saturates.
    for (overall, k) in [
        (vec![50u64, 30, 0, 20, 10, 0, 40], 10usize),
        (vec![5, 5, 5, 5], 3),
        (vec![100, 1_000, 10_000], 2),
    ] {
        let e = expected_participation(&overall, k);
        assert!(
            (e - k as f64).abs() < 1e-9,
            "overall {overall:?}, K={k}: expectation {e}"
        );
    }
}

#[test]
fn paillier_2048_ciphertext_size_matches_paper_registry_sizes() {
    // §6.4: with 2048-bit keys a length-56 registry becomes ~29.6-31.3 KB of
    // ciphertext. One Paillier ciphertext is 2 * 2048 bits = 512 bytes, so the
    // element-wise registry is 56 * 512 B = 28.7 KB — the same ballpark without
    // any of python-paillier's serialisation overhead.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Generating a real 2048-bit key here would slow the test suite; the size
    // formula only needs the modulus bit length, so use the public-key math.
    let kp = Keypair::generate(256, &mut rng);
    assert_eq!(ciphertext_size_bytes(&kp.public), 64);
    let bytes_per_2048_ciphertext = 2 * 2048 / 8;
    let registry_bytes = 56 * bytes_per_2048_ciphertext;
    assert!((28_000..=32_000).contains(&registry_bytes));
}

#[test]
fn communication_count_model_of_section_6_4() {
    // K check-ins per round; + N registry transfers on registration rounds;
    // + ~H*K encrypted-distribution transfers when multi-time selection is on.
    let k = 20;
    let n = 1000;
    let plain = CommunicationCount::per_round(k, n, 1, false);
    assert_eq!(plain.total(), 20);
    let registration = CommunicationCount::per_round(k, n, 1, true);
    assert_eq!(registration.total(), 1020);
    let multi_time = CommunicationCount::per_round(k, n, 10, false);
    assert_eq!(multi_time.total(), 20 + 200);
}

#[test]
fn group_configurations_match_section_6_1() {
    // Group 1: C = 10, G = {1, 2, 10}, K = 20; group 2: C = 52, G = {1, 52}.
    let g1 = DubheConfig::group1();
    assert_eq!(g1.classes, 10);
    assert_eq!(g1.reference_set, vec![1, 2, 10]);
    assert_eq!(g1.k, 20);
    // The searched optimum reported in §6.3.3.
    assert_eq!(g1.effective_thresholds(), vec![0.7, 0.1, 0.0]);
    let g2 = DubheConfig::group2();
    assert_eq!(g2.classes, 52);
    assert_eq!(g2.reference_set, vec![1, 52]);
    assert_eq!(g2.k, 20);
}
