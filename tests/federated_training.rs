//! Cross-crate integration tests of the full training stack: synthetic data →
//! Dubhe selection → parallel local training → FedVC aggregation → evaluation.

use dubhe::data::federated::{DatasetFamily, FederatedSpec};
use dubhe::fl::models::small_mlp;
use dubhe::fl::{Aggregation, LocalOptimizer};
use dubhe::{DubheConfig, DubheSelector, FlSimulation, RandomSelector, SimulationConfig};
use rand::SeedableRng;

fn build(
    family: DatasetFamily,
    rho: f64,
    emd: f64,
    clients: usize,
    seed: u64,
) -> dubhe::data::FederatedDataset {
    let spec = FederatedSpec {
        family,
        rho,
        emd_avg: emd,
        clients,
        samples_per_client: 32,
        test_samples_per_class: 15,
        seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    spec.build_dataset(&mut rng)
}

fn quick_config(rounds: usize, seed: u64) -> SimulationConfig {
    let mut config = SimulationConfig::quick(rounds, seed);
    config.local.optimizer = LocalOptimizer::Sgd { lr: 0.1 };
    config
}

#[test]
fn federated_training_learns_on_balanced_data() {
    let data = build(DatasetFamily::MnistLike, 1.0, 0.0, 30, 11);
    let selector = Box::new(RandomSelector::new(30, 10));
    let mut sim = FlSimulation::from_datasets(
        data.client_data,
        data.test,
        small_mlp(32, 10, 1),
        selector,
        quick_config(12, 5),
    );
    let history = sim.run().unwrap();
    let final_acc = history.final_accuracy().unwrap();
    assert!(
        final_acc > 0.5,
        "balanced federated MNIST-like should learn well, got {final_acc}"
    );
}

#[test]
fn dubhe_pipeline_trains_end_to_end_on_skewed_data() {
    let data = build(DatasetFamily::MnistLike, 10.0, 1.5, 80, 13);
    let dists = data.client_distributions();
    let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
    let mut config = quick_config(10, 17);
    config.multi_time_h = 5;
    let mut sim = FlSimulation::from_datasets(
        data.client_data,
        data.test,
        small_mlp(32, 10, 2),
        selector,
        config,
    );
    assert_eq!(sim.selector_name(), "Dubhe");
    let history = sim.run().unwrap();
    assert_eq!(history.len(), 10);
    let first = history.rounds[0].test_accuracy.unwrap();
    let last = history.final_accuracy().unwrap();
    assert!(last > first, "accuracy should improve: {first} -> {last}");
    // Multi-time selection messages are accounted for.
    assert!(sim.ledger().rounds[0].multi_time_messages > 0);
}

#[test]
fn fedvc_uniform_and_fedavg_weighted_agree_when_sizes_are_equal() {
    // All clients hold the same number of samples, so the two aggregation rules
    // must produce identical global models.
    let data = build(DatasetFamily::CifarLike, 2.0, 0.5, 20, 19);
    let run = |aggregation: Aggregation| {
        let selector = Box::new(RandomSelector::new(20, 8));
        let mut config = quick_config(4, 23);
        config.aggregation = aggregation;
        let mut sim = FlSimulation::from_datasets(
            data.client_data.clone(),
            data.test.clone(),
            small_mlp(32, 10, 3),
            selector,
            config,
        );
        sim.run().unwrap()
    };
    let uniform = run(Aggregation::FedVcUniform);
    let weighted = run(Aggregation::FedAvgWeighted);
    assert_eq!(uniform, weighted);
}

#[test]
fn skewed_random_selection_underperforms_its_balanced_counterpart() {
    // The motivation experiment (Fig. 2a) in miniature: same client data volume,
    // same training budget, but a heavily skewed global distribution with random
    // selection produces lower accuracy on the balanced test set than the
    // balanced-global case.
    let rounds = 14;
    let balanced = build(DatasetFamily::MnistLike, 1.0, 1.0, 60, 29);
    let skewed = build(DatasetFamily::MnistLike, 10.0, 1.0, 60, 29);
    let run = |data: &dubhe::data::FederatedDataset, seed: u64| {
        let selector = Box::new(RandomSelector::new(60, 10));
        let mut sim = FlSimulation::from_datasets(
            data.client_data.clone(),
            data.test.clone(),
            small_mlp(32, 10, 4),
            selector,
            quick_config(rounds, seed),
        );
        sim.run().unwrap().average_accuracy_last(5).unwrap()
    };
    let balanced_acc = run(&balanced, 31);
    let skewed_acc = run(&skewed, 31);
    assert!(
        skewed_acc < balanced_acc + 0.02,
        "skewed global data ({skewed_acc:.3}) should not beat balanced data ({balanced_acc:.3})"
    );
}

#[test]
fn histories_are_reproducible_across_identical_runs() {
    let data = build(DatasetFamily::MnistLike, 5.0, 1.0, 40, 37);
    let dists = data.client_distributions();
    let run = || {
        let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
        let mut sim = FlSimulation::from_datasets(
            data.client_data.clone(),
            data.test.clone(),
            small_mlp(32, 10, 6),
            selector,
            quick_config(5, 41),
        );
        sim.run().unwrap()
    };
    assert_eq!(run(), run(), "same seeds must give identical histories");
}
