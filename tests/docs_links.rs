//! The documentation book must stay navigable: every relative markdown link
//! in `README.md` and `docs/*.md` has to resolve to a real file. CI runs the
//! same check as a shell step; this test keeps it enforced locally too.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts the `(target)` part of every inline markdown link in `text`,
/// with any `#fragment` stripped.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(rel_end) = text[i + 2..].find(')') {
                let target = &text[i + 2..i + 2 + rel_end];
                let target = target.split('#').next().unwrap_or("");
                if !target.is_empty() {
                    targets.push(target.to_string());
                }
                i += 2 + rel_end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

fn check_file(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let dir = path.parent().expect("doc files live in a directory");
    link_targets(&text)
        .into_iter()
        .filter(|t| !t.starts_with("http://") && !t.starts_with("https://"))
        .filter(|t| !t.starts_with("mailto:"))
        .filter(|t| !dir.join(t).exists())
        .map(|t| format!("{} -> {}", path.display(), t))
        .collect()
}

#[test]
fn every_relative_link_in_the_doc_book_resolves() {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    assert!(docs.is_dir(), "docs/ directory must exist");
    for entry in std::fs::read_dir(&docs).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(
        files.len() >= 3,
        "expected README plus at least ARCHITECTURE and THREAT_MODEL"
    );

    let broken: Vec<String> = files.iter().flat_map(|f| check_file(f)).collect();
    assert!(broken.is_empty(), "broken relative links:\n{broken:?}");
}

#[test]
fn link_extraction_understands_markdown() {
    let md = "see [a](docs/A.md), [b](B.md#frag), [web](https://x.y/z) and ![img](i.png)";
    assert_eq!(
        link_targets(md),
        vec!["docs/A.md", "B.md", "https://x.y/z", "i.png"]
    );
}
