//! Cross-crate integration tests: the full secure selection pipeline from
//! synthetic federation construction through encrypted registration to
//! probability-driven participation.

use dubhe::data::federated::{DatasetFamily, FederatedSpec};
use dubhe::select::probability::participation_probability;
use dubhe::select::registry::register_all;
use dubhe::select::secure::{secure_evaluate_try, secure_registration};
use dubhe::select::selector::{population_unbiasedness, selection_stats};
use dubhe::{ClientSelector, DubheConfig, DubheSelector, GreedySelector, Keypair, RandomSelector};
use rand::SeedableRng;

const TEST_KEY_BITS: u64 = 256;

fn build_clients(
    family: DatasetFamily,
    rho: f64,
    emd: f64,
    clients: usize,
    seed: u64,
) -> Vec<dubhe::data::ClassDistribution> {
    let spec = FederatedSpec {
        family,
        rho,
        emd_avg: emd,
        clients,
        samples_per_client: 64,
        test_samples_per_class: 1,
        seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    spec.build_partition(&mut rng).client_distributions()
}

#[test]
fn secure_and_plaintext_registration_agree_end_to_end() {
    // 200 clients so no registry category saturates (Eq. 7's sum-to-K
    // property only holds exactly when every category has >= K/|G| members).
    let clients = build_clients(DatasetFamily::MnistLike, 10.0, 1.5, 200, 1);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);

    let epoch = secure_registration(&clients, &config, TEST_KEY_BITS, &mut rng).unwrap();
    let layout = config.validate();
    let (_, plaintext) = register_all(&clients, &layout, &config.effective_thresholds());

    assert_eq!(epoch.overall_registry, plaintext);
    // Probabilities derived from the decrypted registry sum to ~K (Eq. 7).
    let expected: f64 = epoch
        .registrations
        .iter()
        .map(|r| participation_probability(&epoch.overall_registry, r.position, config.k))
        .sum();
    assert!(
        (expected - config.k as f64).abs() < 1.5,
        "expected participation {expected}"
    );
}

#[test]
fn full_pipeline_dubhe_beats_random_on_unbiasedness() {
    // The paper's headline selection result at ICPP-scale parameters
    // (N = 1000, K = 20, rho = 10, EMD = 1.5), selection-only.
    let clients = build_clients(DatasetFamily::MnistLike, 10.0, 1.5, 1000, 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);

    let mut random = RandomSelector::new(clients.len(), 20);
    let mut dubhe = DubheSelector::new(&clients, DubheConfig::group1());
    let r = selection_stats(&mut random, &clients, 40, &mut rng).unwrap();
    let d = selection_stats(&mut dubhe, &clients, 40, &mut rng).unwrap();

    assert!(
        d.mean < r.mean * 0.85,
        "Dubhe mean {:.3} should be well below random mean {:.3}",
        d.mean,
        r.mean
    );
}

#[test]
fn greedy_baseline_requires_plaintext_but_is_most_balanced() {
    let clients = build_clients(DatasetFamily::MnistLike, 10.0, 1.5, 400, 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut greedy = GreedySelector::new(&clients, 20);
    let mut dubhe = DubheSelector::new(&clients, DubheConfig::group1());
    let g = selection_stats(&mut greedy, &clients, 15, &mut rng).unwrap();
    let d = selection_stats(&mut dubhe, &clients, 15, &mut rng).unwrap();
    assert!(
        g.mean <= d.mean + 0.05,
        "greedy {:.3} vs dubhe {:.3}",
        g.mean,
        d.mean
    );
}

#[test]
fn secure_tentative_try_is_consistent_with_plaintext_population() {
    let clients = build_clients(DatasetFamily::FemnistLike, 13.64, 0.554, 120, 7);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let keypair = Keypair::generate(TEST_KEY_BITS, &mut rng);
    let (pk, sk) = keypair.split();

    let mut selector = DubheSelector::new(&clients, DubheConfig::group2());
    let selected = selector.select(&mut rng);
    let secure = secure_evaluate_try(&selected, &clients, &pk, &sk, &mut rng).unwrap();
    let plaintext = population_unbiasedness(&selected, &clients).unwrap();
    assert!(
        (secure.distance_to_uniform - plaintext).abs() < 1e-3,
        "secure {:.5} vs plaintext {:.5}",
        secure.distance_to_uniform,
        plaintext
    );
}

#[test]
fn group2_femnist_scale_registration_stays_fast_and_correct() {
    // 2000 clients over 52 classes: registration, aggregation and probability
    // calculation are all linear-time and must handle this comfortably.
    let clients = build_clients(DatasetFamily::FemnistLike, 13.64, 0.554, 2000, 9);
    let config = DubheConfig::group2();
    let mut dubhe = DubheSelector::new(&clients, config.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let selected = dubhe.select(&mut rng);
    assert_eq!(selected.len(), config.k);
    let layout = config.validate();
    assert_eq!(dubhe.overall_registry().len(), layout.len());
    assert_eq!(dubhe.overall_registry().iter().sum::<u64>(), 2000);
}
