//! # Dubhe — data-unbiased, privacy-preserving client selection for federated learning
//!
//! A Rust reproduction of *"Dubhe: Towards Data Unbiasedness with Homomorphic
//! Encryption in Federated Learning Client Selection"* (Zhang et al., ICPP '21).
//!
//! This facade crate re-exports the workspace so downstream users need a single
//! dependency:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`he`] | `dubhe-he` | Paillier additively homomorphic encryption, encrypted vectors, packing |
//! | [`ml`] | `dubhe-ml` | dense/conv layers, softmax cross-entropy, SGD/Adam, flat-weight models |
//! | [`data`] | `dubhe-data` | label distributions, ρ/EMD generators, synthetic federated datasets |
//! | [`select`] | `dubhe-select` | the paper's contribution: registry, probabilities, Dubhe/greedy/random selectors, multi-time selection, parameter search, the secure protocol |
//! | [`fl`] | `dubhe-fl` | the federated-learning simulator (FedVC aggregation, parallel local training, communication accounting) |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use dubhe::data::federated::{DatasetFamily, FederatedSpec};
//! use dubhe::select::selector::{population_unbiasedness, ClientSelector, RandomSelector};
//! use dubhe::{DubheConfig, DubheSelector};
//! use rand::SeedableRng;
//!
//! // 1. A skewed federation (global imbalance 10x, strongly non-IID clients).
//! let spec = FederatedSpec {
//!     family: DatasetFamily::CifarLike,
//!     rho: 10.0,
//!     emd_avg: 1.5,
//!     clients: 300,
//!     samples_per_client: 64,
//!     test_samples_per_class: 1,
//!     seed: 11,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(11);
//! let clients = spec.build_partition(&mut rng).client_distributions();
//!
//! // 2. Dubhe selection keeps the participated data close to uniform.
//! let mut dubhe = DubheSelector::new(&clients, DubheConfig::group1());
//! let mut random = RandomSelector::new(clients.len(), 20);
//! let dubhe_gap = population_unbiasedness(&dubhe.select(&mut rng), &clients).unwrap();
//! let random_gap = population_unbiasedness(&random.select(&mut rng), &clients).unwrap();
//! assert!(dubhe_gap < random_gap);
//! ```
//!
//! See the `examples/` directory for full scenarios (secure registration with
//! real Paillier ciphertexts, FEMNIST-scale selection, an end-to-end federated
//! training comparison, and the parameter search), and the repo's
//! `docs/ARCHITECTURE.md` / `docs/THREAT_MODEL.md` for the system map — the
//! protocol layer, the sharded coordinator, the framed TCP transport, and
//! why the coordinator structurally cannot decrypt what it aggregates.

/// Homomorphic-encryption substrate (re-export of `dubhe-he`).
pub use dubhe_he as he;

/// Neural-network training substrate (re-export of `dubhe-ml`).
pub use dubhe_ml as ml;

/// Datasets, distributions and skew generators (re-export of `dubhe-data`).
pub use dubhe_data as data;

/// The Dubhe client-selection system (re-export of `dubhe-select`).
pub use dubhe_select as select;

/// The federated-learning simulator (re-export of `dubhe-fl`).
pub use dubhe_fl as fl;

pub use dubhe_data::federated::{DatasetFamily, FederatedSpec};
pub use dubhe_fl::{FlSimulation, SimulationConfig};
pub use dubhe_he::Keypair;
pub use dubhe_select::{
    ClientSelector, DubheConfig, DubheSelector, GreedySelector, RandomSelector,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_wired() {
        // Compile-time check that the main types are reachable from the root.
        let _ = crate::DubheConfig::group1();
        let _ = crate::DatasetFamily::MnistLike;
    }
}
