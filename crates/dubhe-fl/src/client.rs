//! A federated client: a fixed local dataset plus the local-training step.

use dubhe_data::{ClassDistribution, Dataset};
use dubhe_he::{EncryptedVector, Encryptor, FixedPointCodec};
use dubhe_ml::{Adam, Optimizer, Sequential, Sgd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::FlError;

/// Which local optimizer clients use. The paper's clients run Adam with
/// lr = 1e-4; SGD is provided for fast laptop-scale runs and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LocalOptimizer {
    /// Adam with the given learning rate.
    Adam {
        /// Learning rate.
        lr: f32,
    },
    /// Plain SGD with the given learning rate.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
}

impl LocalOptimizer {
    /// The paper's configuration: Adam, lr = 1e-4, no weight decay.
    pub fn paper_default() -> Self {
        LocalOptimizer::Adam { lr: 1e-4 }
    }

    /// Instantiates a fresh optimizer (clients do not share optimizer state).
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            LocalOptimizer::Adam { lr } => Box::new(Adam::new(lr)),
            LocalOptimizer::Sgd { lr } => Box::new(Sgd::new(lr)),
        }
    }
}

/// Hyper-parameters of one local-training invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainingConfig {
    /// Local epochs `E`.
    pub epochs: usize,
    /// Mini-batch size `B`.
    pub batch_size: usize,
    /// Local optimizer.
    pub optimizer: LocalOptimizer,
}

impl LocalTrainingConfig {
    /// The paper's group-1 settings (`B = 8`, `E = 1`).
    pub fn group1() -> Self {
        LocalTrainingConfig {
            epochs: 1,
            batch_size: 8,
            optimizer: LocalOptimizer::paper_default(),
        }
    }

    /// The paper's group-2 settings (`B = 8`, `E = 5`).
    pub fn group2() -> Self {
        LocalTrainingConfig {
            epochs: 5,
            batch_size: 8,
            optimizer: LocalOptimizer::paper_default(),
        }
    }

    /// Checks the hyper-parameters are usable: at least one local epoch and
    /// a non-zero batch size. Training entry points call this so a bad
    /// configuration surfaces as a typed [`FlError`] instead of a panic —
    /// the same no-panic policy the protocol layer follows.
    pub fn validate(&self) -> Result<(), FlError> {
        if self.epochs == 0 {
            return Err(FlError::InvalidLocalConfig {
                detail: "need at least one local epoch",
            });
        }
        if self.batch_size == 0 {
            return Err(FlError::InvalidLocalConfig {
                detail: "batch size must be at least 1",
            });
        }
        Ok(())
    }
}

/// The result of one client's local training.
#[derive(Debug, Clone)]
pub struct LocalUpdate {
    /// The client that produced the update.
    pub client_id: usize,
    /// The updated flat weight vector.
    pub weights: Vec<f32>,
    /// Number of samples used (equals the virtual-client size under FedVC).
    pub samples: usize,
    /// Mean training loss over the local batches.
    pub mean_loss: f32,
}

/// One federated client.
#[derive(Debug, Clone)]
pub struct FlClient {
    /// Dense client identifier.
    pub id: usize,
    /// The client's local dataset.
    pub dataset: Dataset,
}

impl FlClient {
    /// Creates a client. A client without data cannot train or register, so
    /// an empty dataset is a typed [`FlError::EmptyClientDataset`] — never a
    /// panic inside federation assembly.
    pub fn new(id: usize, dataset: Dataset) -> Result<Self, FlError> {
        if dataset.is_empty() {
            return Err(FlError::EmptyClientDataset { client: id });
        }
        Ok(FlClient { id, dataset })
    }

    /// The client's label distribution (`p_l` in the paper).
    pub fn distribution(&self) -> ClassDistribution {
        self.dataset.class_distribution()
    }

    /// Encrypts the client's scaled label distribution under the epoch key —
    /// what a tentatively selected client sends the server during secure
    /// multi-time selection (§5.3.1).
    ///
    /// Takes the epoch's shared [`Encryptor`] so all `≈ H·K` encryptions of
    /// a round reuse one fixed-base table — the CRT-split
    /// [`CrtEncryptor`](dubhe_he::CrtEncryptor) when the keypair is in hand,
    /// the [`PrecomputedEncryptor`](dubhe_he::PrecomputedEncryptor)
    /// otherwise.
    pub fn encrypt_distribution<E: Encryptor + ?Sized, R: Rng + ?Sized>(
        &self,
        codec: &FixedPointCodec,
        encryptor: &E,
        rng: &mut R,
    ) -> EncryptedVector {
        let scaled = codec.encode_vec(&self.distribution().proportions());
        EncryptedVector::encrypt_u64_with(encryptor, &scaled, rng)
    }

    /// Runs local training starting from the broadcast global weights.
    ///
    /// `round_seed` makes batching deterministic per (round, client) pair so
    /// parallel execution yields bit-identical results to sequential
    /// execution. An unusable configuration (zero epochs or batch size)
    /// returns [`FlError::InvalidLocalConfig`].
    pub fn local_train(
        &self,
        global_model: &Sequential,
        config: &LocalTrainingConfig,
        round_seed: u64,
    ) -> Result<LocalUpdate, FlError> {
        config.validate()?;
        let mut model = global_model.clone();
        let mut optimizer = config.optimizer.build();
        let mut rng = StdRng::seed_from_u64(
            round_seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut total_loss = 0.0f32;
        let mut batches_seen = 0usize;
        for _ in 0..config.epochs {
            for (x, y) in self.dataset.batches(config.batch_size, &mut rng) {
                total_loss += model.train_batch(&x, &y, optimizer.as_mut());
                batches_seen += 1;
            }
        }
        Ok(LocalUpdate {
            client_id: self.id,
            weights: model.get_weights(),
            samples: self.dataset.len(),
            mean_loss: if batches_seen == 0 {
                0.0
            } else {
                total_loss / batches_seen as f32
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_he::Keypair;

    #[test]
    fn encrypted_distribution_decrypts_to_the_scaled_proportions() {
        let client = client_with(vec![12, 4, 4, 0, 0, 0, 0, 0, 0, 0], 0);
        let mut rng = StdRng::seed_from_u64(41);
        let (pk, sk) = Keypair::generate(256, &mut rng).split();
        let encryptor = dubhe_he::PrecomputedEncryptor::new(&pk, &mut rng);
        let codec = FixedPointCodec::default();
        let encrypted = client.encrypt_distribution(&codec, &encryptor, &mut rng);
        let decrypted = codec.decode_vec(&encrypted.decrypt_u64(&sk).unwrap());
        for (d, p) in decrypted.iter().zip(client.distribution().proportions()) {
            assert!(
                (d - p).abs() <= codec.max_error(),
                "decrypted {d} vs plaintext {p}"
            );
        }
    }
    use dubhe_data::{generate_dataset, ClassDistribution as CD, SyntheticConfig};
    use dubhe_ml::prelude::*;

    fn client_with(counts: Vec<u64>, id: usize) -> FlClient {
        let cfg = SyntheticConfig::mnist_like();
        let mut rng = StdRng::seed_from_u64(id as u64 + 1);
        FlClient::new(
            id,
            generate_dataset(&cfg, &CD::from_counts(counts), &mut rng),
        )
        .expect("non-empty dataset")
    }

    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        Sequential::new(vec![
            Dense::new(32, 16, &mut rng).boxed(),
            ReLU::new().boxed(),
            Dense::new(16, 10, &mut rng).boxed(),
        ])
    }

    #[test]
    fn local_training_changes_weights_and_reports_loss() {
        let client = client_with(vec![10, 10, 0, 0, 0, 0, 0, 0, 0, 0], 0);
        let global = model();
        let cfg = LocalTrainingConfig {
            epochs: 2,
            batch_size: 8,
            optimizer: LocalOptimizer::Sgd { lr: 0.05 },
        };
        let update = client.local_train(&global, &cfg, 1).unwrap();
        assert_eq!(update.client_id, 0);
        assert_eq!(update.samples, 20);
        assert_ne!(update.weights, global.get_weights());
        assert!(update.mean_loss.is_finite() && update.mean_loss > 0.0);
    }

    #[test]
    fn local_training_is_deterministic_for_a_seed() {
        let client = client_with(vec![5, 5, 5, 0, 0, 0, 0, 0, 0, 0], 3);
        let global = model();
        let cfg = LocalTrainingConfig::group1();
        let a = client.local_train(&global, &cfg, 42).unwrap();
        let b = client.local_train(&global, &cfg, 42).unwrap();
        assert_eq!(a.weights, b.weights);
        let c = client.local_train(&global, &cfg, 43).unwrap();
        assert_ne!(
            a.weights, c.weights,
            "different round seeds shuffle differently"
        );
    }

    #[test]
    fn distribution_reflects_local_data() {
        let client = client_with(vec![3, 0, 7, 0, 0, 0, 0, 0, 0, 0], 5);
        assert_eq!(
            client.distribution().counts(),
            &[3, 0, 7, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn paper_configs_expose_expected_hyperparameters() {
        assert_eq!(LocalTrainingConfig::group1().epochs, 1);
        assert_eq!(LocalTrainingConfig::group2().epochs, 5);
        assert_eq!(LocalTrainingConfig::group1().batch_size, 8);
        match LocalOptimizer::paper_default() {
            LocalOptimizer::Adam { lr } => assert!((lr - 1e-4).abs() < 1e-9),
            _ => panic!("paper default must be Adam"),
        }
    }

    #[test]
    fn empty_client_is_a_typed_error() {
        assert_eq!(
            FlClient::new(7, Dataset::empty(4, 2)).unwrap_err(),
            FlError::EmptyClientDataset { client: 7 }
        );
    }

    #[test]
    fn invalid_local_configs_are_typed_errors() {
        let client = client_with(vec![5, 0, 0, 0, 0, 0, 0, 0, 0, 0], 9);
        for (epochs, batch_size) in [(0, 8), (1, 0)] {
            let cfg = LocalTrainingConfig {
                epochs,
                batch_size,
                optimizer: LocalOptimizer::Sgd { lr: 0.1 },
            };
            let err = client.local_train(&model(), &cfg, 0).unwrap_err();
            assert!(
                matches!(err, FlError::InvalidLocalConfig { .. }),
                "E={epochs} B={batch_size}: {err}"
            );
            assert_eq!(cfg.validate().unwrap_err(), err);
        }
        assert!(LocalTrainingConfig::group1().validate().is_ok());
    }
}
