//! Weight divergence instrumentation (§4.2, Eq. 2).
//!
//! The paper bounds `‖ω_f − ω*‖` — the distance between the federated weights
//! and the weights of centralized training on uniformly distributed data — by
//! terms proportional to the per-client EMD (term ①) and to `‖p_o − p_u‖₁`
//! (term ②). This module provides the centralized reference trainer and a
//! divergence tracker so experiments can measure the empirical counterpart of
//! the bound.

use dubhe_data::Dataset;
use dubhe_ml::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::client::{LocalTrainingConfig, LocalUpdate};

/// Trains a copy of `model` centrally on `data` for `rounds × epochs` passes —
/// the `ω*` reference of Eq. (2) when `data` is the balanced pool.
pub fn centralized_reference(
    model: &Sequential,
    data: &Dataset,
    config: &LocalTrainingConfig,
    rounds: usize,
    seed: u64,
) -> Vec<Vec<f32>> {
    assert!(rounds > 0, "need at least one round");
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut reference = model.clone();
    let mut optimizer = config.optimizer.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_round = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for _ in 0..config.epochs {
            for (x, y) in data.batches(config.batch_size, &mut rng) {
                reference.train_batch(&x, &y, optimizer.as_mut());
            }
        }
        per_round.push(reference.get_weights());
    }
    per_round
}

/// L2 distance between two flat weight vectors.
pub fn weight_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "weight vectors must have the same length");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Average pairwise L2 distance between client updates in one round — the
/// empirical counterpart of the client-drift term ① of Eq. (2).
pub fn update_dispersion(updates: &[LocalUpdate]) -> f64 {
    if updates.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..updates.len() {
        for j in (i + 1)..updates.len() {
            total += weight_distance(&updates[i].weights, &updates[j].weights);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// A per-round divergence trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DivergenceTrace {
    /// `‖ω_f − ω*‖` per round.
    pub divergence: Vec<f64>,
}

impl DivergenceTrace {
    /// Records one round's divergence.
    pub fn record(&mut self, federated_weights: &[f32], reference_weights: &[f32]) {
        self.divergence
            .push(weight_distance(federated_weights, reference_weights));
    }

    /// The final divergence value.
    pub fn last(&self) -> Option<f64> {
        self.divergence.last().copied()
    }

    /// The mean divergence over all recorded rounds.
    pub fn mean(&self) -> f64 {
        if self.divergence.is_empty() {
            return 0.0;
        }
        self.divergence.iter().sum::<f64>() / self.divergence.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LocalOptimizer;
    use crate::models::small_mlp;
    use dubhe_data::{generate_balanced_test_set, SyntheticConfig};

    fn quick_config() -> LocalTrainingConfig {
        LocalTrainingConfig {
            epochs: 1,
            batch_size: 8,
            optimizer: LocalOptimizer::Sgd { lr: 0.05 },
        }
    }

    #[test]
    fn weight_distance_basics() {
        assert_eq!(weight_distance(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((weight_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_weight_vectors_panic() {
        let _ = weight_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn centralized_reference_trains_and_returns_per_round_weights() {
        let cfg = SyntheticConfig::mnist_like();
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate_balanced_test_set(&cfg, 10, &mut rng);
        let model = small_mlp(32, 10, 0);
        let per_round = centralized_reference(&model, &data, &quick_config(), 3, 2);
        assert_eq!(per_round.len(), 3);
        // Weights keep moving between rounds.
        assert_ne!(per_round[0], per_round[1]);
        assert_ne!(per_round[1], per_round[2]);
        // And they moved away from the initial model.
        assert!(weight_distance(&model.get_weights(), &per_round[0]) > 0.0);
    }

    #[test]
    fn dispersion_is_zero_for_identical_updates_and_positive_otherwise() {
        let a = LocalUpdate {
            client_id: 0,
            weights: vec![1.0, 1.0],
            samples: 1,
            mean_loss: 0.0,
        };
        let b = LocalUpdate {
            client_id: 1,
            weights: vec![1.0, 1.0],
            samples: 1,
            mean_loss: 0.0,
        };
        assert_eq!(update_dispersion(&[a.clone(), b.clone()]), 0.0);
        let c = LocalUpdate {
            client_id: 2,
            weights: vec![2.0, 1.0],
            samples: 1,
            mean_loss: 0.0,
        };
        assert!(update_dispersion(&[a.clone(), c]) > 0.0);
        assert_eq!(
            update_dispersion(&[a]),
            0.0,
            "fewer than two updates has no dispersion"
        );
    }

    #[test]
    fn trace_records_and_summarises() {
        let mut trace = DivergenceTrace::default();
        trace.record(&[0.0, 0.0], &[3.0, 4.0]);
        trace.record(&[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(trace.divergence.len(), 2);
        assert_eq!(trace.last(), Some(0.0));
        assert!((trace.mean() - 2.5).abs() < 1e-9);
        assert_eq!(DivergenceTrace::default().mean(), 0.0);
    }
}
