//! Server-side aggregation of local updates.
//!
//! The paper adopts FedVC, under which every participating (virtual) client
//! holds exactly `N_VC` samples and the global model is the *uniform* average
//! of the local models (Eq. 1). Classic sample-weighted FedAvg is also provided
//! for ablations.

use dubhe_ml::model::{average_weights, weighted_average_weights};
use serde::{Deserialize, Serialize};

use crate::client::LocalUpdate;

/// Which aggregation rule the server applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Uniform average over participants (FedVC, Eq. 1) — the paper's setting.
    FedVcUniform,
    /// Sample-count-weighted average (original FedAvg).
    FedAvgWeighted,
}

/// Aggregates local updates into the next global weight vector.
///
/// # Panics
/// Panics if `updates` is empty or the weight vectors disagree in length.
pub fn aggregate(updates: &[LocalUpdate], rule: Aggregation) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let weight_sets: Vec<Vec<f32>> = updates.iter().map(|u| u.weights.clone()).collect();
    match rule {
        Aggregation::FedVcUniform => average_weights(&weight_sets),
        Aggregation::FedAvgWeighted => {
            let counts: Vec<usize> = updates.iter().map(|u| u.samples).collect();
            weighted_average_weights(&weight_sets, &counts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(id: usize, weights: Vec<f32>, samples: usize) -> LocalUpdate {
        LocalUpdate {
            client_id: id,
            weights,
            samples,
            mean_loss: 0.0,
        }
    }

    #[test]
    fn uniform_aggregation_ignores_sample_counts() {
        let updates = vec![
            update(0, vec![0.0, 0.0], 1000),
            update(1, vec![2.0, 4.0], 1),
        ];
        assert_eq!(
            aggregate(&updates, Aggregation::FedVcUniform),
            vec![1.0, 2.0]
        );
    }

    #[test]
    fn weighted_aggregation_respects_sample_counts() {
        let updates = vec![update(0, vec![0.0, 0.0], 3), update(1, vec![4.0, 4.0], 1)];
        assert_eq!(
            aggregate(&updates, Aggregation::FedAvgWeighted),
            vec![1.0, 1.0]
        );
    }

    #[test]
    fn single_update_is_identity() {
        let updates = vec![update(0, vec![1.5, -2.5], 10)];
        assert_eq!(
            aggregate(&updates, Aggregation::FedVcUniform),
            vec![1.5, -2.5]
        );
        assert_eq!(
            aggregate(&updates, Aggregation::FedAvgWeighted),
            vec![1.5, -2.5]
        );
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero updates")]
    fn empty_aggregation_panics() {
        let _ = aggregate(&[], Aggregation::FedVcUniform);
    }
}
