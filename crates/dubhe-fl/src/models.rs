//! Reference model architectures for the experiments.
//!
//! The paper uses the CNN of Reddi et al. for MNIST/FEMNIST and a ResNet-18 for
//! CIFAR10. Our synthetic substitutes are feature vectors rather than images,
//! so the standard model is a two-hidden-layer MLP; a small convolutional
//! variant is provided for experiments that want to exercise the Conv2d path
//! (treating the feature vector as a 1×H×W patch).

use dubhe_ml::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A two-hidden-layer MLP: `features → hidden → hidden/2 → classes`.
pub fn mlp(features: usize, hidden: usize, classes: usize, seed: u64) -> Sequential {
    assert!(
        features > 0 && hidden >= 2 && classes > 0,
        "invalid MLP dimensions"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Dense::new(features, hidden, &mut rng).boxed(),
        ReLU::new().boxed(),
        Dense::new(hidden, hidden / 2, &mut rng).boxed(),
        ReLU::new().boxed(),
        Dense::new(hidden / 2, classes, &mut rng).boxed(),
    ])
}

/// A compact single-hidden-layer MLP for fast laptop-scale federated runs.
pub fn small_mlp(features: usize, classes: usize, seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Dense::new(features, 64, &mut rng).boxed(),
        ReLU::new().boxed(),
        Dense::new(64, classes, &mut rng).boxed(),
    ])
}

/// A small convolutional network treating the `height × width` feature vector
/// as a one-channel image — the stand-in for the paper's CNN models.
pub fn small_cnn(height: usize, width: usize, classes: usize, seed: u64) -> Sequential {
    assert!(
        height >= 3 && width >= 3,
        "input too small for a 3x3 convolution"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let conv = Conv2d::new(1, 4, 3, height, width, 1, &mut rng);
    let conv_out = conv.output_len();
    Sequential::new(vec![
        conv.boxed(),
        ReLU::new().boxed(),
        Flatten::new().boxed(),
        Dense::new(conv_out, 32, &mut rng).boxed(),
        ReLU::new().boxed(),
        Dense::new(32, classes, &mut rng).boxed(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_ml::Matrix;

    #[test]
    fn mlp_shapes_and_determinism() {
        let a = mlp(32, 64, 10, 7);
        let b = mlp(32, 64, 10, 7);
        assert_eq!(a.get_weights(), b.get_weights(), "same seed, same init");
        assert_eq!(a.param_count(), 32 * 64 + 64 + 64 * 32 + 32 + 32 * 10 + 10);
        let c = mlp(32, 64, 10, 8);
        assert_ne!(a.get_weights(), c.get_weights());
    }

    #[test]
    fn small_mlp_forward_produces_class_logits() {
        let mut m = small_mlp(16, 5, 1);
        let x = Matrix::zeros(3, 16);
        let logits = m.forward(&x);
        assert_eq!(logits.shape(), (3, 5));
    }

    #[test]
    fn small_cnn_accepts_flattened_patches() {
        let mut m = small_cnn(6, 8, 10, 2);
        let x = Matrix::zeros(2, 48);
        let logits = m.forward(&x);
        assert_eq!(logits.shape(), (2, 10));
        assert!(m.param_count() > 0);
    }

    #[test]
    #[should_panic(expected = "invalid MLP dimensions")]
    fn zero_feature_mlp_panics() {
        let _ = mlp(0, 64, 10, 0);
    }
}
