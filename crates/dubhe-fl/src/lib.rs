//! # dubhe-fl — the federated-learning simulator
//!
//! A deterministic, in-process FL substrate that reproduces the training side
//! of the Dubhe paper's evaluation: FedVC virtual clients with uniform
//! aggregation (Eq. 1), Adam/SGD local training, pluggable client selection,
//! per-round accuracy / population-distribution tracking, communication
//! accounting (§6.4) and weight-divergence instrumentation (§4.2).
//!
//! Selected clients train in parallel with rayon; the round seed is derived per
//! `(round, client)` so parallel and sequential runs produce identical results.
//!
//! The secure selection protocol runs in one of three
//! [`SecureMode`]s — `Modeled` (plaintext decisions,
//! modeled byte accounting), `Encrypted` (the real actor exchange in
//! process), and `EncryptedTcp` (the same exchange over loopback TCP
//! against a sharded coordinator, with measured frame bytes in the ledger).
//! All three produce identical selections, histories and canonical byte
//! totals on the same seed; the equivalence tests pin it.
//!
//! ## Example: Dubhe selection driving a federated run
//!
//! ```
//! use dubhe_data::federated::{DatasetFamily, FederatedSpec};
//! use dubhe_fl::models::small_mlp;
//! use dubhe_fl::{FlSimulation, SimulationConfig};
//! use dubhe_select::{DubheConfig, DubheSelector};
//! use rand::SeedableRng;
//!
//! let spec = FederatedSpec {
//!     family: DatasetFamily::MnistLike,
//!     rho: 10.0,
//!     emd_avg: 1.5,
//!     clients: 40,
//!     samples_per_client: 32,
//!     test_samples_per_class: 10,
//!     seed: 3,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let data = spec.build_dataset(&mut rng);
//! let selector = Box::new(DubheSelector::new(&data.client_distributions(), DubheConfig::group1()));
//! let model = small_mlp(32, 10, 0);
//! let mut sim = FlSimulation::from_datasets(
//!     data.client_data,
//!     data.test,
//!     model,
//!     selector,
//!     SimulationConfig::quick(2, 7),
//! );
//! let history = sim.run().expect("selector produced valid rounds");
//! assert_eq!(history.len(), 2);
//! ```
//!
//! With [`sim::SecureMode::Encrypted`] in the [`SimulationConfig`], the
//! registration epoch and every multi-time round run through the real
//! actor/transport exchange of `dubhe_select::protocol` — ciphertexts, agent
//! decryptions and a ledger charged from the metered transport.

pub mod aggregate;
pub mod client;
pub mod comm;
pub mod divergence;
pub mod error;
pub mod history;
pub mod models;
pub mod sim;

pub use aggregate::{aggregate, Aggregation};
pub use client::{FlClient, LocalOptimizer, LocalTrainingConfig, LocalUpdate};
pub use comm::{CommLedger, RoundComm};
pub use divergence::{centralized_reference, update_dispersion, weight_distance, DivergenceTrace};
pub use error::FlError;
pub use history::{History, RoundRecord};
pub use sim::{ClientDropout, FlSimulation, ListenerKind, SecureMode, SimulationConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::small_mlp;
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use dubhe_select::{DubheConfig, DubheSelector, GreedySelector, RandomSelector};
    use rand::SeedableRng;

    /// A miniature Fig. 6: on a skewed federation, Dubhe's participated data is
    /// strictly more balanced than random selection's, and the balanced
    /// selectors do not lose accuracy.
    #[test]
    fn miniature_fig6_shape() {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: 60,
            samples_per_client: 32,
            test_samples_per_class: 15,
            seed: 21,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let data = spec.build_dataset(&mut rng);
        let dists = data.client_distributions();

        let run = |selector: Box<dyn dubhe_select::ClientSelector>| {
            let model = small_mlp(32, 10, 9);
            let mut config = SimulationConfig::quick(6, 33);
            config.local.optimizer = LocalOptimizer::Sgd { lr: 0.1 };
            let mut sim = FlSimulation::from_datasets(
                data.client_data.clone(),
                data.test.clone(),
                model,
                selector,
                config,
            );
            let history = sim.run().unwrap();
            (
                history.final_accuracy().unwrap(),
                history.mean_unbiasedness(),
            )
        };

        let (random_acc, random_unb) = run(Box::new(RandomSelector::new(60, 20)));
        let (dubhe_acc, dubhe_unb) =
            run(Box::new(DubheSelector::new(&dists, DubheConfig::group1())));
        let (greedy_acc, greedy_unb) = run(Box::new(GreedySelector::new(&dists, 20)));

        assert!(
            dubhe_unb < random_unb,
            "Dubhe ({dubhe_unb:.3}) vs random ({random_unb:.3})"
        );
        assert!(greedy_unb <= dubhe_unb + 0.05);
        // Accuracy ordering is noisy at this scale; only require that the
        // balanced selectors are not substantially worse than random.
        assert!(
            dubhe_acc > random_acc - 0.1,
            "dubhe {dubhe_acc} vs random {random_acc}"
        );
        assert!(greedy_acc > random_acc - 0.1);
    }
}
