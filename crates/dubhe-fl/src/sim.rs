//! The federated-learning simulator: select → broadcast → local train (in
//! parallel) → aggregate → evaluate, round after round.

use dubhe_data::{l1_distance, ClassDistribution, Dataset};
use dubhe_ml::Sequential;
use dubhe_select::multi_time_select;
use dubhe_select::selector::{population_distribution, ClientSelector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::aggregate::{aggregate, Aggregation};
use crate::client::{FlClient, LocalTrainingConfig};
use crate::comm::{encrypted_vector_bytes, model_update_bytes, CommLedger, RoundComm};
use crate::history::{History, RoundRecord};

/// Run-level configuration of a federated simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of federated rounds.
    pub rounds: usize,
    /// Evaluate the global model on the test set every `eval_every` rounds
    /// (the final round is always evaluated).
    pub eval_every: usize,
    /// Local-training hyper-parameters (E, B, optimizer).
    pub local: LocalTrainingConfig,
    /// Aggregation rule (the paper uses FedVC's uniform average).
    pub aggregation: Aggregation,
    /// Number of tentative tries `H` of the multi-time selection (1 = one-off).
    pub multi_time_h: usize,
    /// Master seed; every round derives its own sub-seed from it.
    pub seed: u64,
    /// Train the selected clients in parallel with rayon.
    pub parallel: bool,
}

impl SimulationConfig {
    /// A sensible default for laptop-scale experiments.
    pub fn quick(rounds: usize, seed: u64) -> Self {
        SimulationConfig {
            rounds,
            eval_every: 1,
            local: LocalTrainingConfig {
                epochs: 1,
                batch_size: 8,
                optimizer: crate::client::LocalOptimizer::Sgd { lr: 0.05 },
            },
            aggregation: Aggregation::FedVcUniform,
            multi_time_h: 1,
            seed,
            parallel: true,
        }
    }
}

/// A complete federated system: clients, test set, global model and a selector.
pub struct FlSimulation {
    clients: Vec<FlClient>,
    client_distributions: Vec<ClassDistribution>,
    test: Dataset,
    global_model: Sequential,
    selector: Box<dyn ClientSelector>,
    config: SimulationConfig,
    ledger: CommLedger,
}

impl FlSimulation {
    /// Assembles a simulation.
    ///
    /// # Panics
    /// Panics if there are no clients, the test set is empty, or the selector's
    /// population disagrees with the number of clients.
    pub fn new(
        clients: Vec<FlClient>,
        test: Dataset,
        global_model: Sequential,
        selector: Box<dyn ClientSelector>,
        config: SimulationConfig,
    ) -> Self {
        assert!(
            !clients.is_empty(),
            "a federation needs at least one client"
        );
        assert!(!test.is_empty(), "the test set must not be empty");
        assert_eq!(
            selector.population(),
            clients.len(),
            "selector population ({}) must match the number of clients ({})",
            selector.population(),
            clients.len()
        );
        assert!(config.rounds > 0, "need at least one round");
        assert!(config.eval_every > 0, "eval_every must be positive");
        assert!(config.multi_time_h >= 1, "H must be at least 1");
        let client_distributions = clients.iter().map(FlClient::distribution).collect();
        FlSimulation {
            clients,
            client_distributions,
            test,
            global_model,
            selector,
            config,
            ledger: CommLedger::new(),
        }
    }

    /// Convenience constructor from per-client datasets.
    pub fn from_datasets(
        datasets: Vec<Dataset>,
        test: Dataset,
        global_model: Sequential,
        selector: Box<dyn ClientSelector>,
        config: SimulationConfig,
    ) -> Self {
        let clients = datasets
            .into_iter()
            .enumerate()
            .map(|(id, ds)| FlClient::new(id, ds))
            .collect();
        FlSimulation::new(clients, test, global_model, selector, config)
    }

    /// The per-client label distributions.
    pub fn client_distributions(&self) -> &[ClassDistribution] {
        &self.client_distributions
    }

    /// The current global model.
    pub fn global_model(&self) -> &Sequential {
        &self.global_model
    }

    /// The communication ledger accumulated so far.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// The name of the selector in use.
    pub fn selector_name(&self) -> &'static str {
        self.selector.name()
    }

    /// Runs one round and returns its record.
    pub fn run_round(&mut self, round: usize) -> RoundRecord {
        let mut rng =
            StdRng::seed_from_u64(self.config.seed.wrapping_add(round as u64 * 0x5851_F42D));

        // 1. Client selection (optionally multi-time, §5.3.1).
        let selected = if self.config.multi_time_h > 1 {
            multi_time_select(
                self.selector.as_mut(),
                &self.client_distributions,
                self.config.multi_time_h,
                &mut rng,
            )
            .selected
        } else {
            self.selector.select(&mut rng)
        };
        assert!(
            !selected.is_empty(),
            "selector returned an empty participant set"
        );

        // 2. Broadcast + local training (parallel across clients).
        let round_seed = self.config.seed ^ (round as u64);
        let global = &self.global_model;
        let local_cfg = &self.config.local;
        let updates: Vec<_> = if self.config.parallel {
            selected
                .par_iter()
                .map(|&id| self.clients[id].local_train(global, local_cfg, round_seed))
                .collect()
        } else {
            selected
                .iter()
                .map(|&id| self.clients[id].local_train(global, local_cfg, round_seed))
                .collect()
        };

        // 3. Aggregation (Eq. 1).
        let new_weights = aggregate(&updates, self.config.aggregation);
        self.global_model.set_weights(&new_weights);

        // 4. Evaluation and bookkeeping.
        let evaluate =
            round.is_multiple_of(self.config.eval_every) || round + 1 == self.config.rounds;
        let test_accuracy = if evaluate {
            Some(
                self.global_model
                    .accuracy(self.test.features(), self.test.labels()),
            )
        } else {
            None
        };
        let p_o = population_distribution(&selected, &self.client_distributions);
        let p_u = vec![1.0 / p_o.len() as f64; p_o.len()];
        let unbiasedness = l1_distance(&p_o, &p_u);
        let mean_local_loss =
            updates.iter().map(|u| u.mean_loss).sum::<f32>() / updates.len() as f32;

        let k = selected.len();
        // Registration happens once (round 0) for selectors with a registry
        // epoch; its ciphertext cost is N encrypted registries under the
        // paper's 2048-bit keys. Multi-time selection moves ≈ H·K encrypted
        // class distributions per round.
        let registry_len = self.selector.registry_len();
        let registration_round = round == 0 && registry_len.is_some();
        let registry_ct_bytes = registry_len
            .map(|len| encrypted_vector_bytes(len, dubhe_he::PAPER_KEY_BITS))
            .unwrap_or(0);
        let classes = p_o.len();
        let multi_time_messages = if self.config.multi_time_h > 1 {
            self.config.multi_time_h * k
        } else {
            0
        };
        let multi_time_ct_bytes = if registry_len.is_some() {
            multi_time_messages * encrypted_vector_bytes(classes, dubhe_he::PAPER_KEY_BITS)
        } else {
            0
        };
        self.ledger.record(RoundComm {
            check_in_messages: k,
            registration_messages: if registration_round {
                self.clients.len()
            } else {
                0
            },
            multi_time_messages,
            ciphertext_bytes: if registration_round {
                self.clients.len() * registry_ct_bytes + multi_time_ct_bytes
            } else {
                multi_time_ct_bytes
            },
            model_bytes: 2 * k * model_update_bytes(self.global_model.param_count()),
        });

        RoundRecord {
            round,
            test_accuracy,
            mean_local_loss,
            population_unbiasedness: unbiasedness,
            population_distribution: p_o,
            selected_clients: selected,
        }
    }

    /// Runs the configured number of rounds and returns the history.
    pub fn run(&mut self) -> History {
        let mut history = History::new();
        for round in 0..self.config.rounds {
            history.push(self.run_round(round));
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::small_mlp;
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use dubhe_select::{DubheConfig, DubheSelector, RandomSelector};

    fn build_federation(
        clients: usize,
        rho: f64,
        emd: f64,
        seed: u64,
    ) -> (Vec<Dataset>, Dataset, Vec<ClassDistribution>) {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho,
            emd_avg: emd,
            clients,
            samples_per_client: 32,
            test_samples_per_class: 20,
            seed,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = spec.build_dataset(&mut rng);
        let dists = ds.client_distributions();
        (ds.client_data, ds.test, dists)
    }

    #[test]
    fn a_short_run_produces_history_and_learns_something() {
        let (client_data, test, _) = build_federation(30, 2.0, 0.5, 1);
        let selector = Box::new(RandomSelector::new(30, 10));
        let model = small_mlp(32, 10, 0);
        let mut config = SimulationConfig::quick(8, 7);
        config.local.optimizer = crate::client::LocalOptimizer::Sgd { lr: 0.1 };
        let mut sim = FlSimulation::from_datasets(client_data, test, model, selector, config);
        let history = sim.run();
        assert_eq!(history.len(), 8);
        let first = history.rounds[0].test_accuracy.unwrap();
        let last = history.final_accuracy().unwrap();
        assert!(last > first, "accuracy should improve: {first} -> {last}");
        assert_eq!(sim.ledger().rounds.len(), 8);
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        let (client_data, test, _) = build_federation(20, 2.0, 1.0, 2);
        let build = |parallel: bool| {
            let selector = Box::new(RandomSelector::new(20, 5));
            let model = small_mlp(32, 10, 3);
            let mut config = SimulationConfig::quick(3, 11);
            config.parallel = parallel;
            FlSimulation::from_datasets(client_data.clone(), test.clone(), model, selector, config)
        };
        let hist_par = build(true).run();
        let hist_seq = build(false).run();
        assert_eq!(hist_par, hist_seq, "parallelism must not change results");
    }

    #[test]
    fn dubhe_selector_plugs_into_the_simulator() {
        let (client_data, test, dists) = build_federation(60, 10.0, 1.5, 3);
        let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
        let model = small_mlp(32, 10, 4);
        let config = SimulationConfig::quick(3, 13);
        let mut sim = FlSimulation::from_datasets(client_data, test, model, selector, config);
        assert_eq!(sim.selector_name(), "Dubhe");
        let history = sim.run();
        assert_eq!(history.len(), 3);
        // Registration messages are charged once (round 0).
        assert_eq!(sim.ledger().rounds[0].registration_messages, 60);
        assert_eq!(sim.ledger().rounds[1].registration_messages, 0);
        for r in &history.rounds {
            assert_eq!(r.selected_clients.len(), 20);
            assert!(r.population_unbiasedness >= 0.0 && r.population_unbiasedness <= 2.0);
        }
    }

    #[test]
    fn multi_time_h_selects_more_balanced_rounds() {
        let (client_data, test, dists) = build_federation(80, 10.0, 1.5, 4);
        let run_with_h = |h: usize| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 5);
            let mut config = SimulationConfig::quick(4, 17);
            config.multi_time_h = h;
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            sim.run().mean_unbiasedness()
        };
        let one_off = run_with_h(1);
        let multi = run_with_h(10);
        assert!(
            multi <= one_off + 0.05,
            "H=10 ({multi:.3}) should not be less balanced than H=1 ({one_off:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "must match the number of clients")]
    fn mismatched_selector_population_panics() {
        let (client_data, test, _) = build_federation(10, 1.0, 0.0, 5);
        let selector = Box::new(RandomSelector::new(99, 5));
        let model = small_mlp(32, 10, 6);
        let config = SimulationConfig::quick(1, 1);
        let _ = FlSimulation::from_datasets(client_data, test, model, selector, config);
    }
}
