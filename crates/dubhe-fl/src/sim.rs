//! The federated-learning simulator: select → broadcast → local train (in
//! parallel) → aggregate → evaluate, round after round.
//!
//! Selection can run in three modes ([`SecureMode`]):
//!
//! * **Modeled** — the plaintext decision model picks participants and the
//!   ledger charges the *modeled* ciphertext sizes of the secure exchanges
//!   (fast; the default for large-scale experiments).
//! * **Encrypted** — registration and multi-time selection actually run
//!   through the role-separated actor/transport API of
//!   [`dubhe_select::protocol`]: real Paillier ciphertexts, real agent
//!   decryptions, and a ledger charged from the metered transport.
//! * **EncryptedTcp** — the same exchange, but the coordinator is a
//!   [`ShardedCoordinator`] behind a loopback TCP listener: every
//!   server-bound message crosses a real socket as a length-prefixed frame,
//!   and the ledger additionally records the measured frame bytes.
//!
//! Because every transport prices ciphertexts at their canonical width, all
//! modes produce identical selections, histories and canonical ledger byte
//! totals for the same key size — which the tests pin.

use dubhe_data::{l1_distance, ClassDistribution, Dataset};
use dubhe_ml::Sequential;
use dubhe_net::{ReactorConfig, ReactorListener};
use dubhe_select::multi_time_select;
use dubhe_select::protocol::stats::ListenerStats;
use dubhe_select::protocol::{
    pump, run_registration_with, run_registration_with_packing, run_try, run_try_with_dropouts,
    ChannelPolicy, CodecKind, Coordinator, CoordinatorListener, CoordinatorServer, Envelope,
    InMemoryTransport, ListenerConfig, PackingPolicy, RegistrationRun, ShardedCoordinator,
    TcpConfig, TcpTransport, Transport,
};
use dubhe_select::selector::{population_distribution, ClientSelector};
use dubhe_select::{ProtocolError, SelectError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::aggregate::{aggregate, Aggregation};
use crate::client::{FlClient, LocalTrainingConfig, LocalUpdate};
use crate::comm::{encrypted_vector_bytes, model_update_bytes, CommLedger, RoundComm};
use crate::error::FlError;
use crate::history::{History, RoundRecord};

/// Which server shape a [`SecureMode::EncryptedTcp`] run listens with.
///
/// Both listeners speak the identical wire protocol against the identical
/// sharded coordinator; only the concurrency model differs, so ledgers and
/// selections are bit-identical across the two (which the tests pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ListenerKind {
    /// One blocking thread per connection
    /// ([`CoordinatorListener`]) — simple, fine for small cohorts.
    Threaded,
    /// One event-loop thread multiplexing every connection through a
    /// readiness poller ([`dubhe_net::ReactorListener`]) — the shape that
    /// scales to 10⁴–10⁵ mostly idle persistent clients.
    Reactor,
}

/// How the simulator treats the secure selection protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecureMode {
    /// Plaintext decision model; the ledger charges modeled ciphertext sizes
    /// under a `key_bits`-bit Paillier key.
    Modeled {
        /// Key size the modeled ciphertext accounting assumes.
        key_bits: u64,
    },
    /// Registration and multi-time selection run end-to-end through the
    /// actor/transport API with real `key_bits`-bit Paillier ciphertexts.
    Encrypted {
        /// Key size of the real epoch keypair the agent generates.
        key_bits: u64,
        /// BatchCrypt-style slot packing: `Some(slot_bits)` packs that many
        /// bits per counter lane, many lanes per Paillier plaintext, so the
        /// ciphertext-bearing messages shrink by the lane count. The policy's
        /// [`HeadroomModel`](dubhe_he::HeadroomModel) proves the cohort can
        /// never overflow a lane before any ciphertext exists; a slot width
        /// whose lanes cannot hold the fixed-scale try distributions packs
        /// the registration epoch only, and one that cannot even hold the
        /// registration counters is refused with a typed error. Decrypted
        /// totals — and therefore selections and histories — are identical
        /// to the unpacked run on the same seed.
        packing: Option<u32>,
    },
    /// Like [`Encrypted`](Self::Encrypted), but the coordinator runs behind
    /// a loopback TCP listener: every server-bound message crosses a real
    /// socket as a length-prefixed frame in the selected payload `codec`
    /// (`DBH1` JSON or `DBH2` canonical binary — negotiated from the frame
    /// magic by the listener), the coordinator state is sharded across
    /// `shards` rayon-parallel folds, and the ledger additionally records
    /// the measured frame bytes per codec
    /// ([`RoundComm::wire_frame_bytes`](crate::comm::RoundComm::wire_frame_bytes)
    /// / [`RoundComm::wire_codec`](crate::comm::RoundComm::wire_codec)).
    /// Selections, training history and canonical byte totals are identical
    /// to the other two modes (and across codecs) on the same seed; only the
    /// measured framing differs.
    EncryptedTcp {
        /// Key size of the real epoch keypair the agent generates.
        key_bits: u64,
        /// Shard count of the remote coordinator (≥ 1).
        shards: usize,
        /// The wire payload codec the connector frames requests in.
        codec: CodecKind,
        /// Which server shape accepts the connection: a thread per
        /// connection, or the event-loop reactor.
        listener: ListenerKind,
        /// Slot packing, exactly as in [`Encrypted`](Self::Encrypted) — the
        /// packed frames cross the socket like any other, so the measured
        /// wire bytes shrink along with the canonical ciphertext accounting.
        packing: Option<u32>,
        /// Whether the loopback connection runs the authenticated channel:
        /// under [`ChannelPolicy::Required`] the listener and connector run
        /// the handshake at round 0 (the connector pins the listener's
        /// public identity) and every protocol frame crosses the socket
        /// AEAD-sealed. Selections, histories and canonical byte ledgers
        /// are bit-identical to a `Plaintext` run on the same seed — the
        /// channel pays only handshake + per-frame sealing bytes, metered
        /// separately in the connector's [`WireStats`].
        ///
        /// [`WireStats`]: dubhe_select::protocol::WireStats
        channel: ChannelPolicy,
    },
}

impl SecureMode {
    /// The key size this mode accounts (or encrypts) with.
    pub fn key_bits(&self) -> u64 {
        match *self {
            SecureMode::Modeled { key_bits }
            | SecureMode::Encrypted { key_bits, .. }
            | SecureMode::EncryptedTcp { key_bits, .. } => key_bits,
        }
    }

    /// True for the end-to-end encrypted modes (in-process or socket-backed).
    pub fn is_encrypted(&self) -> bool {
        matches!(
            self,
            SecureMode::Encrypted { .. } | SecureMode::EncryptedTcp { .. }
        )
    }

    /// The wire payload codec of a socket-backed mode (`None` otherwise).
    pub fn wire_codec(&self) -> Option<CodecKind> {
        match *self {
            SecureMode::EncryptedTcp { codec, .. } => Some(codec),
            _ => None,
        }
    }

    /// The server shape of a socket-backed mode (`None` otherwise).
    pub fn listener_kind(&self) -> Option<ListenerKind> {
        match *self {
            SecureMode::EncryptedTcp { listener, .. } => Some(listener),
            _ => None,
        }
    }

    /// The slot width of an encrypted mode's ciphertext packing (`None` when
    /// the mode is modeled or uploads one counter per plaintext).
    pub fn packing_slot_bits(&self) -> Option<u32> {
        match *self {
            SecureMode::Encrypted { packing, .. } | SecureMode::EncryptedTcp { packing, .. } => {
                packing
            }
            SecureMode::Modeled { .. } => None,
        }
    }
}

/// The coordinator slot of an encrypted simulation: in-process, or a framed
/// TCP connection to the loopback [`CoordinatorListener`].
// One `SimCoordinator` exists per simulation and lives on the stack for its
// whole run — the variant size gap buys nothing to box away.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SimCoordinator {
    Local(CoordinatorServer),
    Remote(TcpTransport),
}

impl SimCoordinator {
    /// Measured socket bytes so far (both directions; zero for local).
    fn wire_bytes(&self) -> usize {
        match self {
            SimCoordinator::Local(_) => 0,
            SimCoordinator::Remote(t) => t.wire_stats().total_bytes(),
        }
    }
}

impl Coordinator for SimCoordinator {
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError> {
        match self {
            SimCoordinator::Local(s) => s.deliver(envelope),
            SimCoordinator::Remote(t) => t.deliver(envelope),
        }
    }

    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[usize],
    ) -> Result<(), ProtocolError> {
        match self {
            SimCoordinator::Local(s) => Coordinator::announce_try(s, try_index, participants),
            SimCoordinator::Remote(t) => t.announce_try(try_index, participants),
        }
    }

    fn begin_epoch(
        &mut self,
        epoch: u64,
        expected_registrations: usize,
    ) -> Result<(), ProtocolError> {
        match self {
            SimCoordinator::Local(s) => Coordinator::begin_epoch(s, epoch, expected_registrations),
            SimCoordinator::Remote(t) => t.begin_epoch(epoch, expected_registrations),
        }
    }

    fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        match self {
            SimCoordinator::Local(s) => Coordinator::close_registration(s),
            SimCoordinator::Remote(t) => t.close_registration(),
        }
    }

    fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        match self {
            SimCoordinator::Local(s) => Coordinator::close_try(s, try_index),
            SimCoordinator::Remote(t) => t.close_try(try_index),
        }
    }
}

/// The listener slot of a [`SecureMode::EncryptedTcp`] simulation: the
/// thread-per-connection listener or the event-loop reactor, chosen by
/// [`ListenerKind`]. Threads stop on drop either way.
#[derive(Debug)]
enum SimListener {
    Threaded(CoordinatorListener),
    Reactor(ReactorListener<ShardedCoordinator>),
}

impl SimListener {
    /// The bound loopback address clients connect to.
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            SimListener::Threaded(l) => l.addr(),
            SimListener::Reactor(l) => l.addr(),
        }
    }

    /// A point-in-time snapshot of the listener's connection metrics.
    fn stats(&self) -> ListenerStats {
        match self {
            SimListener::Threaded(l) => l.stats(),
            SimListener::Reactor(l) => l.stats(),
        }
    }

    /// The listener's public channel identity (`None` under `Plaintext`).
    fn public_identity(&self) -> Option<[u8; 32]> {
        match self {
            SimListener::Threaded(l) => l.public_identity(),
            SimListener::Reactor(l) => l.public_identity(),
        }
    }
}

/// One injected mid-round churn event: `client` silently stops uploading in
/// round `round` (see [`SimulationConfig::dropout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientDropout {
    /// The round the client vanishes in.
    pub round: usize,
    /// The client that vanishes.
    pub client: usize,
}

/// Run-level configuration of a federated simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of federated rounds.
    pub rounds: usize,
    /// Evaluate the global model on the test set every `eval_every` rounds
    /// (the final round is always evaluated).
    pub eval_every: usize,
    /// Local-training hyper-parameters (E, B, optimizer).
    pub local: LocalTrainingConfig,
    /// Aggregation rule (the paper uses FedVC's uniform average).
    pub aggregation: Aggregation,
    /// Number of tentative tries `H` of the multi-time selection (1 = one-off).
    pub multi_time_h: usize,
    /// Master seed; every round derives its own sub-seed from it.
    pub seed: u64,
    /// Train the selected clients in parallel with rayon.
    pub parallel: bool,
    /// Secure-protocol mode: modeled accounting or the real encrypted
    /// exchange (see [`SecureMode`]).
    pub secure: SecureMode,
    /// Rotate the epoch keypair every this many rounds (0 = never). A
    /// rotation replays the registration epoch under a fresh key: the agent
    /// generates a new keypair, every client re-registers, and the
    /// coordinator starts a new fold — all of it real traffic in the
    /// encrypted modes, and a registration-sized ledger charge in the
    /// modeled mode, so the modes stay byte-equivalent under rotation.
    pub rotate_epoch_every: usize,
    /// Injected mid-round churn, honored by the encrypted multi-time
    /// exchange: the named client is announced as a tentative participant
    /// but never uploads, and the coordinator explicitly closes the
    /// partial-cohort fold. Ignored by the modeled mode and by one-off
    /// (`multi_time_h == 1`) rounds, which have no per-try uploads to drop.
    pub dropout: Option<ClientDropout>,
}

impl SimulationConfig {
    /// A sensible default for laptop-scale experiments.
    pub fn quick(rounds: usize, seed: u64) -> Self {
        SimulationConfig {
            rounds,
            eval_every: 1,
            local: LocalTrainingConfig {
                epochs: 1,
                batch_size: 8,
                optimizer: crate::client::LocalOptimizer::Sgd { lr: 0.05 },
            },
            aggregation: Aggregation::FedVcUniform,
            multi_time_h: 1,
            seed,
            parallel: true,
            secure: SecureMode::Modeled {
                key_bits: dubhe_he::PAPER_KEY_BITS,
            },
            rotate_epoch_every: 0,
            dropout: None,
        }
    }
}

/// A complete federated system: clients, test set, global model and a selector.
pub struct FlSimulation {
    clients: Vec<FlClient>,
    client_distributions: Vec<ClassDistribution>,
    test: Dataset,
    global_model: Sequential,
    selector: Box<dyn ClientSelector>,
    config: SimulationConfig,
    ledger: CommLedger,
    /// The live actors of an encrypted epoch, kept across rounds: the agent
    /// holds the epoch keypair, clients their key material and
    /// registrations, the coordinator slot its public key — in-process or a
    /// socket to the loopback listener.
    ///
    /// Declared before `listener` on purpose: fields drop in declaration
    /// order, so the endpoint's connection closes first and the listener's
    /// connection thread exits before the listener joins it.
    protocol: Option<RegistrationRun<SimCoordinator>>,
    /// The loopback coordinator listener of a [`SecureMode::EncryptedTcp`]
    /// run — threaded or reactor per [`ListenerKind`] (threads stop on
    /// drop).
    listener: Option<SimListener>,
}

impl FlSimulation {
    /// Assembles a simulation.
    ///
    /// # Panics
    /// Panics if there are no clients, the test set is empty, or the selector's
    /// population disagrees with the number of clients.
    pub fn new(
        clients: Vec<FlClient>,
        test: Dataset,
        global_model: Sequential,
        selector: Box<dyn ClientSelector>,
        config: SimulationConfig,
    ) -> Self {
        assert!(
            !clients.is_empty(),
            "a federation needs at least one client"
        );
        assert!(!test.is_empty(), "the test set must not be empty");
        assert_eq!(
            selector.population(),
            clients.len(),
            "selector population ({}) must match the number of clients ({})",
            selector.population(),
            clients.len()
        );
        assert!(config.rounds > 0, "need at least one round");
        assert!(config.eval_every > 0, "eval_every must be positive");
        assert!(config.multi_time_h >= 1, "H must be at least 1");
        if let SecureMode::EncryptedTcp { shards, .. } = config.secure {
            assert!(shards >= 1, "EncryptedTcp needs at least one shard");
        }
        let client_distributions = clients.iter().map(FlClient::distribution).collect();
        FlSimulation {
            clients,
            client_distributions,
            test,
            global_model,
            selector,
            config,
            ledger: CommLedger::new(),
            protocol: None,
            listener: None,
        }
    }

    /// Convenience constructor from per-client datasets.
    pub fn from_datasets(
        datasets: Vec<Dataset>,
        test: Dataset,
        global_model: Sequential,
        selector: Box<dyn ClientSelector>,
        config: SimulationConfig,
    ) -> Self {
        let clients = datasets
            .into_iter()
            .enumerate()
            .map(|(id, ds)| FlClient::new(id, ds).expect("every client dataset must be non-empty"))
            .collect();
        FlSimulation::new(clients, test, global_model, selector, config)
    }

    /// The per-client label distributions.
    pub fn client_distributions(&self) -> &[ClassDistribution] {
        &self.client_distributions
    }

    /// The current global model.
    pub fn global_model(&self) -> &Sequential {
        &self.global_model
    }

    /// The communication ledger accumulated so far.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// The name of the selector in use.
    pub fn selector_name(&self) -> &'static str {
        self.selector.name()
    }

    /// True once the encrypted epoch ran and the actors are live.
    pub fn protocol_active(&self) -> bool {
        self.protocol.is_some()
    }

    /// Connection metrics of the live loopback listener of an
    /// [`EncryptedTcp`](SecureMode::EncryptedTcp) run — `None` in the other
    /// modes (or before round 0 spawns the listener).
    pub fn listener_stats(&self) -> Option<ListenerStats> {
        self.listener.as_ref().map(SimListener::stats)
    }

    /// Resolves the configured slot width into a [`PackingPolicy`] for this
    /// cohort, or `None` when the mode does not pack.
    ///
    /// A width whose lanes hold both the registration counters and the
    /// fixed-scale try distributions packs everything; one that only fits
    /// the registration counters (e.g. 16-bit lanes against the 10⁶ fixed
    /// scale) packs the registration epoch alone; one whose headroom proof
    /// fails even for binary counters surfaces as a typed
    /// [`ProtocolError`] — the simulation refuses to start an epoch a lane
    /// could overflow.
    fn packing_policy(&self, key_bits: u64) -> Result<Option<PackingPolicy>, ProtocolError> {
        let Some(slot_bits) = self.config.secure.packing_slot_bits() else {
            return Ok(None);
        };
        let n = self.client_distributions.len() as u64;
        let policy = PackingPolicy::new(slot_bits, key_bits, n)
            .or_else(|_| PackingPolicy::registry_only(slot_bits, key_bits, n))?;
        Ok(Some(policy))
    }

    /// The RNG stream feeding the cryptographic side of the encrypted mode.
    /// It is independent of the round's selection stream so that modeled and
    /// encrypted runs draw identical tentative selections.
    fn crypto_rng(&self, round: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(round as u64)
                ^ 0xD3C0_DE00_5EC0_DE5A,
        )
    }

    /// Runs one round and returns its record.
    ///
    /// Fails with a typed [`FlError`] instead of panicking when the selector
    /// produces an empty or out-of-range participant set, when the encrypted
    /// exchange is violated, or when the local-training configuration is
    /// unusable — a misconfigured run cannot abort a long simulation from
    /// inside.
    pub fn run_round(&mut self, round: usize) -> Result<RoundRecord, FlError> {
        let mut rng =
            StdRng::seed_from_u64(self.config.seed.wrapping_add(round as u64 * 0x5851_F42D));
        let mut crypto_rng = self.crypto_rng(round);
        let mut transport = InMemoryTransport::new();
        let key_bits = self.config.secure.key_bits();

        // 0. Encrypted mode: the registration epoch (Fig. 4) runs once, at
        //    round 0, through the real actor exchange — against an
        //    in-process coordinator, or over loopback TCP to a sharded one.
        let registry_len = self.selector.registry_len();
        let registration_round = round == 0 && registry_len.is_some();
        let wire_before = self.protocol.as_ref().map_or(0, |r| r.server.wire_bytes());
        if self.config.secure.is_encrypted() && registration_round {
            if let Some(config) = self.selector.secure_config().cloned() {
                let n = self.client_distributions.len();
                let packing = self.packing_policy(key_bits)?;
                let server = match self.config.secure {
                    SecureMode::EncryptedTcp {
                        shards,
                        codec,
                        listener,
                        channel,
                        ..
                    } => {
                        let mut coordinator = ShardedCoordinator::new(n, shards);
                        if let Some(policy) = packing {
                            coordinator = coordinator.with_packing(policy);
                        }
                        let listener = match listener {
                            ListenerKind::Threaded => {
                                SimListener::Threaded(CoordinatorListener::spawn_with(
                                    coordinator,
                                    ListenerConfig::default().with_channel(channel),
                                )?)
                            }
                            ListenerKind::Reactor => {
                                SimListener::Reactor(ReactorListener::spawn_with(
                                    coordinator,
                                    ReactorConfig::default().with_channel(channel),
                                )?)
                            }
                        };
                        // Under Required the connector pins the identity the
                        // listener just minted — trust is established at
                        // spawn, not on first use.
                        let mut tcp_config =
                            TcpConfig::default().with_codec(codec).with_channel(channel);
                        if let Some(pin) = listener.public_identity() {
                            tcp_config = tcp_config.with_expected_server(pin);
                        }
                        let endpoint =
                            TcpTransport::connect_with_config(listener.addr(), tcp_config)?;
                        self.listener = Some(listener);
                        SimCoordinator::Remote(endpoint)
                    }
                    _ => {
                        let mut coordinator = CoordinatorServer::new(n);
                        if let Some(policy) = packing {
                            coordinator = coordinator.with_packing(policy);
                        }
                        SimCoordinator::Local(coordinator)
                    }
                };
                let run = match packing {
                    Some(policy) => run_registration_with_packing(
                        &self.client_distributions,
                        &config,
                        key_bits,
                        policy,
                        server,
                        &mut transport,
                        &mut crypto_rng,
                    )?,
                    None => run_registration_with(
                        &self.client_distributions,
                        &config,
                        key_bits,
                        server,
                        &mut transport,
                        &mut crypto_rng,
                    )?,
                };
                // The decrypted overall registry must agree bit-for-bit with
                // the plaintext decision model the selector runs on.
                if let Some(expected) = self.selector.overall_registry() {
                    if run.overall_registry() != expected {
                        return Err(dubhe_select::ProtocolError::RegistryDivergence.into());
                    }
                }
                self.protocol = Some(run);
            }
        }

        // 0b. Key rotation: every `rotate_epoch_every` rounds the agent
        //     generates a fresh keypair and the whole cohort re-registers
        //     under it — a full registration epoch replay, driven by the
        //     same per-round crypto stream so selections stay untouched.
        let rotate_every = self.config.rotate_epoch_every;
        let rotation_round = rotate_every > 0
            && round > 0
            && round.is_multiple_of(rotate_every)
            && registry_len.is_some();
        if self.config.secure.is_encrypted() && rotation_round {
            if let Some(run) = self.protocol.as_mut() {
                let n = run.clients.len();
                for e in run.agent.rotate_epoch(n, &mut crypto_rng) {
                    transport.send(e);
                }
                pump(
                    &mut transport,
                    &mut run.agent,
                    &mut run.clients,
                    &mut run.server,
                    &mut crypto_rng,
                )?;
                // The re-decrypted overall registry must still agree with
                // the plaintext decision model — rotation changes the key,
                // never the data.
                if let Some(expected) = self.selector.overall_registry() {
                    if run.overall_registry() != expected {
                        return Err(dubhe_select::ProtocolError::RegistryDivergence.into());
                    }
                }
            }
        }

        // Which clients (if any) silently drop out of this round's tries.
        let drop_ids: Vec<usize> = match self.config.dropout {
            Some(d) if d.round == round => vec![d.client],
            _ => Vec::new(),
        };
        let mut dropped_clients: Vec<usize> = Vec::new();
        let mut partial_cohort = false;

        // 1. Client selection (optionally multi-time, §5.3.1).
        let mut selected = if self.config.multi_time_h > 1 {
            let h = self.config.multi_time_h;
            if let (true, Some(run)) = (self.config.secure.is_encrypted(), self.protocol.as_mut()) {
                // The real §5.3.1 exchange: tentative clients encrypt, the
                // server folds, the agent decrypts and issues the verdict.
                run.agent.expect_tries(h);
                let mut tries = Vec::with_capacity(h);
                for try_index in 0..h {
                    let tentative = self.selector.select(&mut rng);
                    let dropped: Vec<usize> = drop_ids
                        .iter()
                        .copied()
                        .filter(|c| tentative.contains(c))
                        .collect();
                    if dropped.is_empty() {
                        run_try(
                            try_index,
                            &tentative,
                            &mut run.agent,
                            &mut run.clients,
                            &mut run.server,
                            &mut transport,
                            &mut crypto_rng,
                        )?;
                    } else {
                        // The announced cohort loses its dropouts mid-try:
                        // the coordinator explicitly closes the partial fold
                        // and the agent scores the try over the survivors.
                        partial_cohort = true;
                        for &c in &dropped {
                            if !dropped_clients.contains(&c) {
                                dropped_clients.push(c);
                            }
                        }
                        run_try_with_dropouts(
                            try_index,
                            &tentative,
                            &dropped,
                            &mut run.agent,
                            &mut run.clients,
                            &mut run.server,
                            &mut transport,
                            &mut crypto_rng,
                        )?;
                    }
                    tries.push(tentative);
                }
                let (best_try, _) = run.agent.verdict().expect("all tries evaluated");
                tries.swap_remove(best_try)
            } else {
                multi_time_select(
                    self.selector.as_mut(),
                    &self.client_distributions,
                    h,
                    &mut rng,
                )?
                .selected
            }
        } else {
            self.selector.select(&mut rng)
        };
        // A client that dropped mid-round does not come back to train in it.
        if !dropped_clients.is_empty() {
            selected.retain(|id| !dropped_clients.contains(id));
        }
        if selected.is_empty() {
            return Err(SelectError::EmptySelection.into());
        }

        // 2. Broadcast + local training (parallel across clients). An
        //    unusable training configuration surfaces as one typed error.
        let round_seed = self.config.seed ^ (round as u64);
        let global = &self.global_model;
        let local_cfg = &self.config.local;
        let results: Vec<Result<LocalUpdate, FlError>> = if self.config.parallel {
            selected
                .par_iter()
                .map(|&id| self.clients[id].local_train(global, local_cfg, round_seed))
                .collect()
        } else {
            selected
                .iter()
                .map(|&id| self.clients[id].local_train(global, local_cfg, round_seed))
                .collect()
        };
        let updates: Vec<LocalUpdate> = results.into_iter().collect::<Result<_, _>>()?;

        // 3. Aggregation (Eq. 1).
        let new_weights = aggregate(&updates, self.config.aggregation);
        self.global_model.set_weights(&new_weights);

        // 4. Evaluation and bookkeeping.
        let evaluate =
            round.is_multiple_of(self.config.eval_every) || round + 1 == self.config.rounds;
        let test_accuracy = if evaluate {
            Some(
                self.global_model
                    .accuracy(self.test.features(), self.test.labels()),
            )
        } else {
            None
        };
        let p_o = population_distribution(&selected, &self.client_distributions)?;
        let p_u = vec![1.0 / p_o.len() as f64; p_o.len()];
        let unbiasedness = l1_distance(&p_o, &p_u);
        let mean_local_loss =
            updates.iter().map(|u| u.mean_loss).sum::<f32>() / updates.len() as f32;

        let k = selected.len();
        let model_bytes = 2 * k * model_update_bytes(self.global_model.param_count());
        let comm = if self.config.secure.is_encrypted() && self.protocol.is_some() {
            // Measured accounting from the metered transport. Canonical
            // ciphertext widths make these totals identical to the modeled
            // branch below for the same key size. Socket-backed rounds also
            // record the real framed bytes that crossed the loopback wire.
            let base = RoundComm::from_transport(transport.stats(), k, model_bytes);
            match self.config.secure.wire_codec() {
                Some(codec) => {
                    let wire_delta = self
                        .protocol
                        .as_ref()
                        .map_or(0, |r| r.server.wire_bytes() - wire_before);
                    base.with_wire_frames(wire_delta, codec)
                }
                None => base,
            }
        } else {
            // Modeled accounting: registration happens once (round 0) for
            // selectors with a registry epoch; its ciphertext cost is N
            // encrypted registries. Multi-time selection moves ≈ H·K
            // encrypted class distributions per round.
            let registry_ct_bytes = registry_len
                .map(|len| encrypted_vector_bytes(len, key_bits))
                .unwrap_or(0);
            let classes = p_o.len();
            let multi_time_messages = if self.config.multi_time_h > 1 {
                self.config.multi_time_h * k
            } else {
                0
            };
            let multi_time_ct_bytes = if registry_len.is_some() {
                multi_time_messages * encrypted_vector_bytes(classes, key_bits)
            } else {
                0
            };
            // A rotation round replays the registration epoch, so it is
            // charged exactly like one on top of its multi-time traffic.
            let registering = registration_round || rotation_round;
            RoundComm {
                check_in_messages: k,
                registration_messages: if registering { self.clients.len() } else { 0 },
                multi_time_messages,
                ciphertext_bytes: if registering {
                    self.clients.len() * registry_ct_bytes + multi_time_ct_bytes
                } else {
                    multi_time_ct_bytes
                },
                model_bytes,
                wire_frame_bytes: 0,
                wire_codec: None,
            }
        };
        self.ledger.record(comm);

        // The epoch the round ran under: the agent's live counter in
        // encrypted mode, the rotation arithmetic in modeled mode — the
        // same number by construction, which the equivalence tests pin.
        let epoch = match self.protocol.as_ref() {
            Some(run) => run.agent.epoch(),
            None if rotate_every > 0 && registry_len.is_some() => (round / rotate_every) as u64,
            None => 0,
        };

        Ok(RoundRecord {
            round,
            test_accuracy,
            mean_local_loss,
            population_unbiasedness: unbiasedness,
            population_distribution: p_o,
            selected_clients: selected,
            epoch,
            dropped_clients,
            partial_cohort,
        })
    }

    /// Runs the configured number of rounds and returns the history.
    pub fn run(&mut self) -> Result<History, FlError> {
        let mut history = History::new();
        for round in 0..self.config.rounds {
            history.push(self.run_round(round)?);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::small_mlp;
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use dubhe_select::{DubheConfig, DubheSelector, RandomSelector};

    fn build_federation(
        clients: usize,
        rho: f64,
        emd: f64,
        seed: u64,
    ) -> (Vec<Dataset>, Dataset, Vec<ClassDistribution>) {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho,
            emd_avg: emd,
            clients,
            samples_per_client: 32,
            test_samples_per_class: 20,
            seed,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = spec.build_dataset(&mut rng);
        let dists = ds.client_distributions();
        (ds.client_data, ds.test, dists)
    }

    #[test]
    fn a_short_run_produces_history_and_learns_something() {
        let (client_data, test, _) = build_federation(30, 2.0, 0.5, 1);
        let selector = Box::new(RandomSelector::new(30, 10));
        let model = small_mlp(32, 10, 0);
        let mut config = SimulationConfig::quick(8, 7);
        config.local.optimizer = crate::client::LocalOptimizer::Sgd { lr: 0.1 };
        let mut sim = FlSimulation::from_datasets(client_data, test, model, selector, config);
        let history = sim.run().unwrap();
        assert_eq!(history.len(), 8);
        let first = history.rounds[0].test_accuracy.unwrap();
        let last = history.final_accuracy().unwrap();
        assert!(last > first, "accuracy should improve: {first} -> {last}");
        assert_eq!(sim.ledger().rounds.len(), 8);
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        let (client_data, test, _) = build_federation(20, 2.0, 1.0, 2);
        let build = |parallel: bool| {
            let selector = Box::new(RandomSelector::new(20, 5));
            let model = small_mlp(32, 10, 3);
            let mut config = SimulationConfig::quick(3, 11);
            config.parallel = parallel;
            FlSimulation::from_datasets(client_data.clone(), test.clone(), model, selector, config)
        };
        let hist_par = build(true).run().unwrap();
        let hist_seq = build(false).run().unwrap();
        assert_eq!(hist_par, hist_seq, "parallelism must not change results");
    }

    #[test]
    fn dubhe_selector_plugs_into_the_simulator() {
        let (client_data, test, dists) = build_federation(60, 10.0, 1.5, 3);
        let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
        let model = small_mlp(32, 10, 4);
        let config = SimulationConfig::quick(3, 13);
        let mut sim = FlSimulation::from_datasets(client_data, test, model, selector, config);
        assert_eq!(sim.selector_name(), "Dubhe");
        let history = sim.run().unwrap();
        assert_eq!(history.len(), 3);
        // Registration messages are charged once (round 0).
        assert_eq!(sim.ledger().rounds[0].registration_messages, 60);
        assert_eq!(sim.ledger().rounds[1].registration_messages, 0);
        for r in &history.rounds {
            assert_eq!(r.selected_clients.len(), 20);
            assert!(r.population_unbiasedness >= 0.0 && r.population_unbiasedness <= 2.0);
        }
    }

    #[test]
    fn multi_time_h_selects_more_balanced_rounds() {
        let (client_data, test, dists) = build_federation(80, 10.0, 1.5, 4);
        let run_with_h = |h: usize| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 5);
            let mut config = SimulationConfig::quick(4, 17);
            config.multi_time_h = h;
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            sim.run().unwrap().mean_unbiasedness()
        };
        let one_off = run_with_h(1);
        let multi = run_with_h(10);
        assert!(
            multi <= one_off + 0.05,
            "H=10 ({multi:.3}) should not be less balanced than H=1 ({one_off:.3})"
        );
    }

    #[test]
    fn encrypted_mode_matches_modeled_mode_end_to_end() {
        // The acceptance test of the encrypted wiring: same seeds, same
        // selector, one run modeled and one driven through the real
        // actor/transport exchange. Selections, training history and ledger
        // byte totals must all agree.
        let (client_data, test, dists) = build_federation(24, 10.0, 1.5, 6);
        let run_mode = |secure: SecureMode| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 6);
            let mut config = SimulationConfig::quick(3, 19);
            config.multi_time_h = 3;
            config.secure = secure;
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            let history = sim.run().unwrap();
            (history, sim.ledger().clone(), sim.protocol_active())
        };

        let (modeled_hist, modeled_ledger, modeled_proto) =
            run_mode(SecureMode::Modeled { key_bits: 256 });
        let (encrypted_hist, encrypted_ledger, encrypted_proto) = run_mode(SecureMode::Encrypted {
            key_bits: 256,
            packing: None,
        });

        assert!(!modeled_proto, "modeled mode must not build actors");
        assert!(encrypted_proto, "encrypted mode must run the real epoch");
        assert_eq!(
            modeled_hist, encrypted_hist,
            "the encrypted exchange must reproduce the plaintext decisions"
        );
        assert_eq!(
            modeled_ledger.total_ciphertext_bytes(),
            encrypted_ledger.total_ciphertext_bytes(),
            "measured uplink bytes must equal the modeled accounting"
        );
        assert_eq!(
            modeled_ledger.dubhe_overhead_messages(),
            encrypted_ledger.dubhe_overhead_messages()
        );
        assert!(encrypted_ledger.total_ciphertext_bytes() > 0);
    }

    #[test]
    fn key_rotation_preserves_mode_equivalence_and_advances_the_epoch() {
        // Rotation replays the registration epoch under a fresh key every
        // other round. The decisions, history and canonical ledger totals
        // must stay identical between the modeled and the real encrypted
        // run — and both must report the same advancing epoch counter.
        let (client_data, test, dists) = build_federation(24, 10.0, 1.5, 6);
        let run_mode = |secure: SecureMode| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 6);
            let mut config = SimulationConfig::quick(5, 19);
            config.multi_time_h = 3;
            config.rotate_epoch_every = 2;
            config.secure = secure;
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            let history = sim.run().unwrap();
            (history, sim.ledger().clone())
        };

        let (modeled_hist, modeled_ledger) = run_mode(SecureMode::Modeled { key_bits: 256 });
        let (encrypted_hist, encrypted_ledger) = run_mode(SecureMode::Encrypted {
            key_bits: 256,
            packing: None,
        });

        assert_eq!(
            modeled_hist, encrypted_hist,
            "rotation must not perturb any decision"
        );
        let epochs: Vec<u64> = encrypted_hist.rounds.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 0, 1, 1, 2], "epoch advances every 2 rounds");
        assert_eq!(
            modeled_ledger.total_ciphertext_bytes(),
            encrypted_ledger.total_ciphertext_bytes(),
            "re-registration bytes must match the modeled registration charge"
        );
        assert_eq!(
            modeled_ledger.dubhe_overhead_messages(),
            encrypted_ledger.dubhe_overhead_messages()
        );
        // Rotation rounds (2 and 4) pay a full registration on top of the
        // multi-time traffic; the rounds in between pay none.
        assert_eq!(encrypted_ledger.rounds[2].registration_messages, 24);
        assert_eq!(encrypted_ledger.rounds[3].registration_messages, 0);
        assert_eq!(encrypted_ledger.rounds[4].registration_messages, 24);
    }

    #[test]
    fn injected_dropout_closes_a_partial_cohort_and_records_it() {
        // One client silently vanishes in round 1: every try it was
        // tentatively selected for is explicitly closed on the partial
        // cohort, the round completes (no hang, no error), and the record
        // names the dropout.
        let (client_data, test, dists) = build_federation(24, 10.0, 1.5, 12);
        let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
        let model = small_mlp(32, 10, 8);
        let mut config = SimulationConfig::quick(3, 29);
        config.multi_time_h = 3;
        config.secure = SecureMode::Encrypted {
            key_bits: 256,
            packing: None,
        };
        config.dropout = Some(ClientDropout {
            round: 1,
            client: 0,
        });
        let mut sim = FlSimulation::from_datasets(client_data, test, model, selector, config);
        let history = sim.run().unwrap();
        assert_eq!(history.len(), 3);

        let hit = &history.rounds[1];
        assert_eq!(hit.dropped_clients, vec![0], "the dropout is recorded");
        assert!(hit.partial_cohort, "at least one fold closed partial");
        assert!(
            !hit.selected_clients.contains(&0),
            "a vanished client cannot train in the round it dropped"
        );
        for untouched in [&history.rounds[0], &history.rounds[2]] {
            assert!(untouched.dropped_clients.is_empty());
            assert!(!untouched.partial_cohort);
        }
    }

    #[test]
    fn tcp_encrypted_mode_matches_the_in_memory_modes_end_to_end() {
        // The acceptance pin of the socket-backed mode: same seeds, same
        // selector — one run modeled, one through in-process actors, and one
        // over loopback TCP against a 4-shard coordinator *per codec and per
        // listener shape*. Training history and canonical ledger totals must
        // be identical across all of them; only the measured frame bytes
        // differ by codec (never by listener).
        let (client_data, test, dists) = build_federation(24, 10.0, 1.5, 9);
        let run_mode = |secure: SecureMode| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 6);
            let mut config = SimulationConfig::quick(3, 19);
            config.multi_time_h = 3;
            config.secure = secure;
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            let history = sim.run().unwrap();
            let stats = sim.listener_stats();
            (history, sim.ledger().clone(), stats)
        };

        let (modeled_hist, modeled_ledger, modeled_stats) =
            run_mode(SecureMode::Modeled { key_bits: 256 });
        let (encrypted_hist, encrypted_ledger, _) = run_mode(SecureMode::Encrypted {
            key_bits: 256,
            packing: None,
        });
        let (json_hist, json_ledger, json_stats) = run_mode(SecureMode::EncryptedTcp {
            key_bits: 256,
            shards: 4,
            codec: CodecKind::Json,
            listener: ListenerKind::Threaded,
            packing: None,
            channel: ChannelPolicy::Plaintext,
        });
        let (binary_hist, binary_ledger, _) = run_mode(SecureMode::EncryptedTcp {
            key_bits: 256,
            shards: 4,
            codec: CodecKind::Binary,
            listener: ListenerKind::Threaded,
            packing: None,
            channel: ChannelPolicy::Plaintext,
        });
        let (reactor_hist, reactor_ledger, reactor_stats) = run_mode(SecureMode::EncryptedTcp {
            key_bits: 256,
            shards: 4,
            codec: CodecKind::Binary,
            listener: ListenerKind::Reactor,
            packing: None,
            channel: ChannelPolicy::Plaintext,
        });

        assert_eq!(json_hist, modeled_hist, "TCP must reproduce the decisions");
        assert_eq!(json_hist, encrypted_hist);
        assert_eq!(
            binary_hist, json_hist,
            "codec choice must not change any decision"
        );
        assert_eq!(
            reactor_hist, binary_hist,
            "the event-loop reactor must reproduce the threaded listener's decisions"
        );
        assert_eq!(
            reactor_ledger, binary_ledger,
            "listener shape must not change a single ledger byte"
        );
        // Both listener shapes expose the same metrics surface, and both saw
        // the single persistent connector connection plus real frames.
        assert!(modeled_stats.is_none(), "no listener in the modeled mode");
        for stats in [&json_stats, &reactor_stats] {
            let stats = stats.as_ref().expect("socket-backed runs have stats");
            assert_eq!(stats.connections_accepted, 1);
            assert!(stats.frames_received > 0);
            assert_eq!(stats.frames_sent, stats.frames_received);
            assert!(stats.bytes_received > 0);
            assert_eq!(stats.decode_errors, 0);
            assert_eq!(stats.backpressure_disconnects, 0);
            assert_eq!(stats.latency.count, stats.frames_sent as u64);
        }
        for tcp_ledger in [&json_ledger, &binary_ledger] {
            assert_eq!(
                tcp_ledger.total_ciphertext_bytes(),
                modeled_ledger.total_ciphertext_bytes(),
                "canonical accounting is transport- and codec-independent"
            );
            assert_eq!(
                tcp_ledger.dubhe_overhead_messages(),
                modeled_ledger.dubhe_overhead_messages()
            );
            // Framed traffic includes headers and encoding on top of the
            // uplink ciphertexts, whichever codec frames it.
            assert!(tcp_ledger.total_wire_frame_bytes() > tcp_ledger.total_ciphertext_bytes());
            // Every round with protocol traffic shows measured frames.
            assert!(tcp_ledger.rounds[0].wire_frame_bytes > 0);
            assert!(
                tcp_ledger.rounds[1].wire_frame_bytes > 0,
                "multi-time rounds cross the wire too"
            );
        }
        // Only the socket-backed runs pay (and measure, per codec) framing.
        assert_eq!(modeled_ledger.total_wire_frame_bytes(), 0);
        assert_eq!(encrypted_ledger.total_wire_frame_bytes(), 0);
        assert_eq!(
            json_ledger.wire_frame_bytes_for(CodecKind::Json),
            json_ledger.total_wire_frame_bytes()
        );
        assert_eq!(json_ledger.wire_frame_bytes_for(CodecKind::Binary), 0);
        assert!(
            binary_ledger.total_wire_frame_bytes() < json_ledger.total_wire_frame_bytes(),
            "DBH2 ({}) must frame the identical session in fewer bytes than DBH1 ({})",
            binary_ledger.total_wire_frame_bytes(),
            json_ledger.total_wire_frame_bytes()
        );
    }

    #[test]
    fn authenticated_channel_leaves_every_ledger_byte_identical() {
        // The acceptance pin of the channel satellite: the same socket-backed
        // simulation with the AEAD channel Required vs Plaintext — on both
        // listener shapes — must produce bit-identical histories *and*
        // bit-identical ledgers (canonical ciphertext bytes AND measured
        // wire-frame bytes, which meter the inner protocol frames, not the
        // seals). Authentication is pure armor: it changes what crosses the
        // socket, never what the protocol decides or accounts.
        let (client_data, test, dists) = build_federation(24, 10.0, 1.5, 9);
        let run_mode = |secure: SecureMode| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 6);
            let mut config = SimulationConfig::quick(3, 19);
            config.multi_time_h = 3;
            config.secure = secure;
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            let history = sim.run().unwrap();
            let stats = sim.listener_stats();
            (history, sim.ledger().clone(), stats)
        };
        let tcp_mode = |listener, channel| SecureMode::EncryptedTcp {
            key_bits: 256,
            shards: 4,
            codec: CodecKind::Binary,
            listener,
            packing: None,
            channel,
        };

        for listener in [ListenerKind::Threaded, ListenerKind::Reactor] {
            let (plain_hist, plain_ledger, _) =
                run_mode(tcp_mode(listener, ChannelPolicy::Plaintext));
            let (sealed_hist, sealed_ledger, sealed_stats) =
                run_mode(tcp_mode(listener, ChannelPolicy::Required));
            assert_eq!(
                sealed_hist, plain_hist,
                "{listener:?}: the channel must not change a single decision"
            );
            assert_eq!(
                sealed_ledger, plain_ledger,
                "{listener:?}: the channel must not change a single ledger byte"
            );
            let stats = sealed_stats.expect("socket-backed runs have stats");
            assert_eq!(stats.handshakes_completed, 1, "{listener:?}");
            assert_eq!(stats.handshakes_failed, 0, "{listener:?}");
            assert_eq!(stats.aead_rejections, 0, "{listener:?}");
            assert_eq!(stats.downgrades_refused, 0, "{listener:?}");
        }
    }

    #[test]
    fn packed_modes_match_unpacked_decisions_with_at_least_4x_fewer_ciphertext_bytes() {
        // The acceptance pin of the packed protocol: same seeds, same
        // selector — element-wise runs against 32-bit slot-packed runs,
        // in-process and over loopback TCP under both listener shapes.
        // Every decision (selections, histories, epochs) must be identical;
        // only the ciphertext representation — and with it the canonical
        // uplink bytes and the measured frame bytes — shrinks, by at least
        // the 4x the packing exists to deliver (length-56 registries at 7
        // lanes per 256-bit plaintext actually shrink 7x).
        let (client_data, test, dists) = build_federation(24, 10.0, 1.5, 9);
        let run_mode = |secure: SecureMode| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 6);
            let mut config = SimulationConfig::quick(3, 19);
            config.multi_time_h = 3;
            config.secure = secure;
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            let history = sim.run().unwrap();
            let stats = sim.listener_stats();
            (history, sim.ledger().clone(), stats)
        };

        let (unpacked_hist, unpacked_ledger, _) = run_mode(SecureMode::Encrypted {
            key_bits: 256,
            packing: None,
        });
        let (packed_hist, packed_ledger, _) = run_mode(SecureMode::Encrypted {
            key_bits: 256,
            packing: Some(32),
        });
        let (tcp_unpacked_hist, tcp_unpacked_ledger, _) = run_mode(SecureMode::EncryptedTcp {
            key_bits: 256,
            shards: 4,
            codec: CodecKind::Binary,
            listener: ListenerKind::Threaded,
            packing: None,
            channel: ChannelPolicy::Plaintext,
        });
        let (tcp_packed_hist, tcp_packed_ledger, _) = run_mode(SecureMode::EncryptedTcp {
            key_bits: 256,
            shards: 4,
            codec: CodecKind::Binary,
            listener: ListenerKind::Threaded,
            packing: Some(32),
            channel: ChannelPolicy::Plaintext,
        });
        let (reactor_hist, reactor_ledger, reactor_stats) = run_mode(SecureMode::EncryptedTcp {
            key_bits: 256,
            shards: 4,
            codec: CodecKind::Binary,
            listener: ListenerKind::Reactor,
            packing: Some(32),
            channel: ChannelPolicy::Plaintext,
        });

        assert_eq!(
            packed_hist, unpacked_hist,
            "packing must not change a single decision"
        );
        assert_eq!(tcp_packed_hist, packed_hist, "nor over a real socket");
        assert_eq!(tcp_unpacked_hist, packed_hist);
        assert_eq!(
            reactor_hist, packed_hist,
            "the reactor passes packed frames through untouched"
        );
        assert_eq!(
            reactor_ledger, tcp_packed_ledger,
            "listener shape must not change a single packed ledger byte"
        );

        // The canonical uplink accounting shrinks at least 4x, identically
        // in-process and across the socket.
        let unpacked_bytes = unpacked_ledger.total_ciphertext_bytes();
        let packed_bytes = packed_ledger.total_ciphertext_bytes();
        assert!(packed_bytes > 0);
        assert!(
            packed_bytes * 4 <= unpacked_bytes,
            "32-bit slots must shrink uplink ciphertext bytes >= 4x \
             (packed {packed_bytes} vs element-wise {unpacked_bytes})"
        );
        assert_eq!(packed_bytes, tcp_packed_ledger.total_ciphertext_bytes());

        // The measured frame traffic shrinks with it — packing is not an
        // accounting trick, the socket really carries fewer bytes.
        assert!(
            tcp_packed_ledger.total_wire_frame_bytes() * 2
                < tcp_unpacked_ledger.total_wire_frame_bytes(),
            "packed frames must at least halve the measured wire traffic \
             (packed {} vs element-wise {})",
            tcp_packed_ledger.total_wire_frame_bytes(),
            tcp_unpacked_ledger.total_wire_frame_bytes()
        );

        // The reactor really served the packed session: one persistent
        // connection, real frames, zero decode errors.
        let stats = reactor_stats.expect("socket-backed runs have stats");
        assert_eq!(stats.connections_accepted, 1);
        assert!(stats.frames_received > 0);
        assert_eq!(stats.frames_sent, stats.frames_received);
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn sixteen_bit_slots_pack_the_registration_epoch_only() {
        // 16-bit lanes cannot hold the 10^6 fixed-scale try distributions,
        // so the policy resolution falls back to registry-only packing: the
        // registration epoch shrinks (56 counters -> 4 ciphertexts at 15
        // lanes per 256-bit plaintext), the per-try traffic stays
        // element-wise, and every decision still matches the unpacked run.
        let (client_data, test, dists) = build_federation(24, 10.0, 1.5, 9);
        let run_mode = |packing: Option<u32>| {
            let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
            let model = small_mlp(32, 10, 6);
            let mut config = SimulationConfig::quick(2, 19);
            config.multi_time_h = 3;
            config.secure = SecureMode::Encrypted {
                key_bits: 256,
                packing,
            };
            let mut sim = FlSimulation::from_datasets(
                client_data.clone(),
                test.clone(),
                model,
                selector,
                config,
            );
            let history = sim.run().unwrap();
            (history, sim.ledger().clone())
        };

        let (unpacked_hist, unpacked_ledger) = run_mode(None);
        let (packed_hist, packed_ledger) = run_mode(Some(16));

        assert_eq!(packed_hist, unpacked_hist);
        // Round 0 carries the registration epoch: its bytes shrink. The
        // pure multi-time round 1 stays element-wise, byte-for-byte.
        assert!(
            packed_ledger.rounds[0].ciphertext_bytes < unpacked_ledger.rounds[0].ciphertext_bytes
        );
        assert_eq!(
            packed_ledger.rounds[1].ciphertext_bytes,
            unpacked_ledger.rounds[1].ciphertext_bytes
        );
    }

    #[test]
    fn encrypted_mode_without_registry_selector_falls_back_to_modeled() {
        let (client_data, test, _) = build_federation(15, 2.0, 0.5, 8);
        let selector = Box::new(RandomSelector::new(15, 5));
        let model = small_mlp(32, 10, 7);
        let mut config = SimulationConfig::quick(2, 23);
        config.secure = SecureMode::Encrypted {
            key_bits: 256,
            packing: None,
        };
        let mut sim = FlSimulation::from_datasets(client_data, test, model, selector, config);
        let history = sim.run().unwrap();
        assert_eq!(history.len(), 2);
        assert!(!sim.protocol_active());
        assert_eq!(sim.ledger().total_ciphertext_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "must match the number of clients")]
    fn mismatched_selector_population_panics() {
        let (client_data, test, _) = build_federation(10, 1.0, 0.0, 5);
        let selector = Box::new(RandomSelector::new(99, 5));
        let model = small_mlp(32, 10, 6);
        let config = SimulationConfig::quick(1, 1);
        let _ = FlSimulation::from_datasets(client_data, test, model, selector, config);
    }
}
