//! Error type of the federated-learning simulator.
//!
//! The FL layer follows the same no-panic policy as the protocol layer in
//! `dubhe-select`: misconfiguration and invalid inputs surface as typed,
//! recoverable errors at the API boundary instead of aborting a long
//! simulation. [`FlError`] wraps the selection/protocol errors from below so
//! drivers handle a single error type.

use dubhe_select::{ProtocolError, SelectError};

/// Errors returned by the FL client and simulation entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// A client was constructed over an empty dataset.
    EmptyClientDataset {
        /// The offending client id.
        client: usize,
    },
    /// A [`LocalTrainingConfig`](crate::client::LocalTrainingConfig) failed
    /// validation (zero epochs or a zero batch size).
    InvalidLocalConfig {
        /// Which constraint was violated.
        detail: &'static str,
    },
    /// The selection layer (or the secure protocol under it) failed.
    Select(SelectError),
}

impl std::fmt::Display for FlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlError::EmptyClientDataset { client } => {
                write!(f, "client {client} has no data")
            }
            FlError::InvalidLocalConfig { detail } => {
                write!(f, "invalid local-training configuration: {detail}")
            }
            FlError::Select(e) => write!(f, "selection failed: {e}"),
        }
    }
}

impl std::error::Error for FlError {}

impl From<SelectError> for FlError {
    fn from(e: SelectError) -> Self {
        FlError::Select(e)
    }
}

impl From<ProtocolError> for FlError {
    fn from(e: ProtocolError) -> Self {
        FlError::Select(SelectError::Protocol(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        let e = FlError::EmptyClientDataset { client: 4 };
        assert!(e.to_string().contains("client 4"));
        let e = FlError::InvalidLocalConfig {
            detail: "need at least one local epoch",
        };
        assert!(e.to_string().contains("local epoch"));
        let e: FlError = SelectError::EmptySelection.into();
        assert!(matches!(e, FlError::Select(_)));
        let e: FlError = ProtocolError::Disconnected.into();
        assert!(e.to_string().contains("disconnected"));
    }
}
