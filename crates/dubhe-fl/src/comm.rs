//! Communication accounting for the §6.4 overhead study.
//!
//! The paper measures overhead in *times of communication*: a classic FL round
//! needs `K` check-ins; Dubhe adds `N` registry transfers whenever a
//! registration epoch happens and ≈ `H·K` encrypted-distribution transfers per
//! round when multi-time selection is used for client determination.

use dubhe_select::protocol::CodecKind;
use dubhe_select::TransportStats;
use serde::{Deserialize, Serialize};

/// Cumulative communication ledger of a federated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommLedger {
    /// Per-round entries.
    pub rounds: Vec<RoundComm>,
}

/// Communication of a single round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundComm {
    /// Check-in messages (always `K`).
    pub check_in_messages: usize,
    /// Registry transfers (N on registration rounds, 0 otherwise).
    pub registration_messages: usize,
    /// Multi-time selection transfers (≈ `H·K` when enabled).
    pub multi_time_messages: usize,
    /// Ciphertext bytes moved this round (registries + encrypted distributions).
    pub ciphertext_bytes: usize,
    /// Model-update bytes moved this round (the dominant cost in real FL).
    pub model_bytes: usize,
    /// Real framed bytes observed on the wire this round (headers + encoded
    /// payloads, both directions) when the exchange ran over a socket-backed
    /// transport; zero for modeled and in-memory rounds. Unlike
    /// [`ciphertext_bytes`](Self::ciphertext_bytes) this is *measured*, not
    /// canonical — it includes framing and encoding overhead.
    pub wire_frame_bytes: usize,
    /// Which payload codec produced [`wire_frame_bytes`](Self::wire_frame_bytes)
    /// (`None` for modeled and in-memory rounds). Recording the codec next
    /// to the measured bytes is what lets the overhead study compare `DBH1`
    /// and `DBH2` framing against the same canonical accounting.
    pub wire_codec: Option<CodecKind>,
}

impl RoundComm {
    /// Total messages of the round.
    pub fn total_messages(&self) -> usize {
        self.check_in_messages + self.registration_messages + self.multi_time_messages
    }

    /// Builds a round entry from *measured* protocol-transport statistics:
    /// registration and multi-time message counts come from the per-kind
    /// meters, ciphertext bytes from the client → server uplink. Because the
    /// transport prices ciphertexts at their canonical fixed width, these
    /// figures coincide with the modeled [`encrypted_vector_bytes`]
    /// accounting for the same key size — modeled and driven runs produce
    /// identical ledgers.
    pub fn from_transport(stats: &TransportStats, check_in: usize, model_bytes: usize) -> Self {
        RoundComm {
            check_in_messages: check_in,
            registration_messages: stats.registries.messages,
            multi_time_messages: stats.distributions.messages,
            ciphertext_bytes: stats.uplink_ciphertext_bytes(),
            model_bytes,
            wire_frame_bytes: 0,
            wire_codec: None,
        }
    }

    /// Attaches the measured socket traffic of the round and the codec that
    /// framed it (see [`wire_frame_bytes`](Self::wire_frame_bytes)).
    pub fn with_wire_frames(mut self, wire_frame_bytes: usize, codec: CodecKind) -> Self {
        self.wire_frame_bytes = wire_frame_bytes;
        self.wire_codec = Some(codec);
        self
    }
}

impl CommLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CommLedger::default()
    }

    /// Records one round.
    pub fn record(&mut self, round: RoundComm) {
        self.rounds.push(round);
    }

    /// Total messages over the whole run.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(RoundComm::total_messages).sum()
    }

    /// Total Dubhe-specific messages (registration + multi-time).
    pub fn dubhe_overhead_messages(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.registration_messages + r.multi_time_messages)
            .sum()
    }

    /// Total ciphertext bytes (Dubhe-specific payloads).
    pub fn total_ciphertext_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.ciphertext_bytes).sum()
    }

    /// Total model bytes (payloads any FL system must move).
    pub fn total_model_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.model_bytes).sum()
    }

    /// Total measured socket bytes across the run (zero unless rounds ran
    /// over a socket-backed transport).
    pub fn total_wire_frame_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.wire_frame_bytes).sum()
    }

    /// Measured socket bytes framed by a specific codec — the per-codec view
    /// the DBH1-vs-DBH2 overhead comparison reads.
    pub fn wire_frame_bytes_for(&self, codec: CodecKind) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.wire_codec == Some(codec))
            .map(|r| r.wire_frame_bytes)
            .sum()
    }

    /// Fraction of transferred bytes attributable to Dubhe (ciphertext /
    /// (ciphertext + model)). The paper argues this is negligible because
    /// registries are KBs while models are MBs–GBs.
    pub fn ciphertext_byte_fraction(&self) -> f64 {
        let total = self.total_ciphertext_bytes() + self.total_model_bytes();
        if total == 0 {
            return 0.0;
        }
        self.total_ciphertext_bytes() as f64 / total as f64
    }
}

/// Bytes needed to ship one flat model update (4 bytes per `f32` parameter).
pub fn model_update_bytes(param_count: usize) -> usize {
    param_count * std::mem::size_of::<f32>()
}

/// Ciphertext bytes of one element-wise encrypted vector of `len` slots under
/// a `key_bits` Paillier key (each slot is one raw ciphertext, sized by
/// `dubhe-he`'s transport model).
///
/// Used to charge registry transfers (length = registry size) and multi-time
/// distribution transfers (length = class count) to the ledger without
/// materialising the ciphertexts inside the simulator.
pub fn encrypted_vector_bytes(len: usize, key_bits: u64) -> usize {
    len * dubhe_he::transport::ciphertext_size_bytes_for(key_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(reg: usize, mt: usize, ct: usize, model: usize) -> RoundComm {
        RoundComm {
            check_in_messages: 20,
            registration_messages: reg,
            multi_time_messages: mt,
            ciphertext_bytes: ct,
            model_bytes: model,
            wire_frame_bytes: 0,
            wire_codec: None,
        }
    }

    #[test]
    fn totals_accumulate_across_rounds() {
        let mut ledger = CommLedger::new();
        ledger.record(round(1000, 0, 30_000, 1_000_000));
        ledger.record(round(0, 200, 6_000, 1_000_000));
        assert_eq!(ledger.total_messages(), 20 + 1000 + 20 + 200);
        assert_eq!(ledger.dubhe_overhead_messages(), 1200);
        assert_eq!(ledger.total_ciphertext_bytes(), 36_000);
        assert_eq!(ledger.total_model_bytes(), 2_000_000);
    }

    #[test]
    fn ciphertext_fraction_is_small_when_models_dominate() {
        let mut ledger = CommLedger::new();
        ledger.record(round(1000, 0, 31_000, 50_000_000));
        assert!(ledger.ciphertext_byte_fraction() < 0.001);
        let empty = CommLedger::new();
        assert_eq!(empty.ciphertext_byte_fraction(), 0.0);
    }

    #[test]
    fn model_bytes_scale_with_parameters() {
        assert_eq!(model_update_bytes(1_000), 4_000);
        assert_eq!(model_update_bytes(0), 0);
    }

    #[test]
    fn encrypted_vector_bytes_match_the_paper_scale() {
        // A length-56 registry under 2048-bit keys: 56 x 512 B = 28.7 KB,
        // the right ballpark for the paper's reported 29.6-31.3 KB.
        let bytes = encrypted_vector_bytes(56, 2048);
        assert_eq!(bytes, 56 * 512);
        assert!(bytes > 28_000 && bytes < 32_000);
    }

    #[test]
    fn transport_stats_translate_into_a_round_entry() {
        let mut stats = TransportStats::default();
        stats.registries.messages = 30;
        stats.registries.bytes = 30 * (8 + 56 * 64);
        stats.uplink_registry_ciphertext_bytes = 30 * 56 * 64;
        stats.distributions.messages = 60;
        stats.uplink_distribution_ciphertext_bytes = 60 * 10 * 64;
        let round = RoundComm::from_transport(&stats, 20, 1_000);
        assert_eq!(round.check_in_messages, 20);
        assert_eq!(round.registration_messages, 30);
        assert_eq!(round.multi_time_messages, 60);
        assert_eq!(round.ciphertext_bytes, 30 * 56 * 64 + 60 * 10 * 64);
        assert_eq!(round.model_bytes, 1_000);
        assert_eq!(round.total_messages(), 110);
    }

    #[test]
    fn wire_frame_bytes_accumulate_separately_from_canonical_bytes() {
        let mut ledger = CommLedger::new();
        ledger.record(round(10, 0, 100, 0).with_wire_frames(12_345, CodecKind::Json));
        ledger.record(round(0, 5, 50, 0).with_wire_frames(5_000, CodecKind::Binary));
        ledger.record(round(0, 5, 50, 0));
        assert_eq!(ledger.total_wire_frame_bytes(), 17_345);
        assert_eq!(ledger.wire_frame_bytes_for(CodecKind::Json), 12_345);
        assert_eq!(ledger.wire_frame_bytes_for(CodecKind::Binary), 5_000);
        assert_eq!(ledger.total_ciphertext_bytes(), 200);
        assert_eq!(ledger.rounds[0].wire_codec, Some(CodecKind::Json));
        assert_eq!(ledger.rounds[2].wire_codec, None);
    }

    #[test]
    fn per_round_message_model_matches_paper() {
        // Plain round: K = 20 check-ins only.
        assert_eq!(round(0, 0, 0, 0).total_messages(), 20);
        // Registration round with N = 1000 clients.
        assert_eq!(round(1000, 0, 0, 0).total_messages(), 1020);
        // Multi-time round with H = 10, K = 20.
        assert_eq!(round(0, 200, 0, 0).total_messages(), 220);
    }
}
