//! Per-round metrics collected by the simulator.

use serde::{Deserialize, Serialize};

/// Everything recorded about one federated round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index starting at 0.
    pub round: usize,
    /// Test accuracy of the global model after aggregation (None on rounds
    /// where evaluation was skipped).
    pub test_accuracy: Option<f64>,
    /// Mean local training loss over the participants.
    pub mean_local_loss: f32,
    /// ‖p_o − p_u‖₁ of the participated data this round.
    pub population_unbiasedness: f64,
    /// The population (participated-data) label distribution `p_o`.
    pub population_distribution: Vec<f64>,
    /// The clients that participated.
    pub selected_clients: Vec<usize>,
    /// The key-rotation epoch the round ran under (0 until the first
    /// rotation; see `SimulationConfig::rotate_epoch_every`).
    pub epoch: u64,
    /// Clients that silently dropped out of the round's selection exchange
    /// (empty unless churn was injected).
    pub dropped_clients: Vec<usize>,
    /// True when at least one fold of the round was explicitly closed on a
    /// partial cohort instead of completing naturally.
    pub partial_cohort: bool,
}

/// The full trace of a federated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// One record per round, in order.
    pub rounds: Vec<RoundRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { rounds: Vec::new() }
    }

    /// Appends a round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The accuracy curve: `(round, accuracy)` for rounds that were evaluated.
    pub fn accuracy_curve(&self) -> Vec<(usize, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.test_accuracy.map(|a| (r.round, a)))
            .collect()
    }

    /// The final evaluated accuracy, if any round was evaluated.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.rounds.iter().rev().find_map(|r| r.test_accuracy)
    }

    /// The paper's Fig. 7 metric: average accuracy over the last `n` *evaluated*
    /// rounds.
    pub fn average_accuracy_last(&self, n: usize) -> Option<f64> {
        assert!(n > 0, "need at least one round to average");
        let evaluated: Vec<f64> = self.rounds.iter().filter_map(|r| r.test_accuracy).collect();
        if evaluated.is_empty() {
            return None;
        }
        let tail = &evaluated[evaluated.len().saturating_sub(n)..];
        Some(tail.iter().sum::<f64>() / tail.len() as f64)
    }

    /// Mean ‖p_o − p_u‖₁ over all rounds.
    pub fn mean_unbiasedness(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds
            .iter()
            .map(|r| r.population_unbiasedness)
            .sum::<f64>()
            / self.rounds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: Option<f64>, unb: f64) -> RoundRecord {
        RoundRecord {
            round,
            test_accuracy: acc,
            mean_local_loss: 1.0,
            population_unbiasedness: unb,
            population_distribution: vec![0.5, 0.5],
            selected_clients: vec![0, 1],
            epoch: 0,
            dropped_clients: Vec::new(),
            partial_cohort: false,
        }
    }

    #[test]
    fn accuracy_curve_skips_unevaluated_rounds() {
        let mut h = History::new();
        h.push(record(0, Some(0.1), 1.0));
        h.push(record(1, None, 0.9));
        h.push(record(2, Some(0.3), 0.8));
        assert_eq!(h.accuracy_curve(), vec![(0, 0.1), (2, 0.3)]);
        assert_eq!(h.final_accuracy(), Some(0.3));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn last_n_average_uses_evaluated_rounds_only() {
        let mut h = History::new();
        for i in 0..10 {
            let acc = if i % 2 == 0 {
                Some(i as f64 / 10.0)
            } else {
                None
            };
            h.push(record(i, acc, 1.0));
        }
        // Evaluated accuracies: 0.0, 0.2, 0.4, 0.6, 0.8; last 2 -> 0.7.
        assert!((h.average_accuracy_last(2).unwrap() - 0.7).abs() < 1e-12);
        // Asking for more rounds than evaluated falls back to all of them.
        assert!((h.average_accuracy_last(50).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_history_reports_none_and_zero() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.final_accuracy(), None);
        assert_eq!(h.average_accuracy_last(5), None);
        assert_eq!(h.mean_unbiasedness(), 0.0);
    }

    #[test]
    fn mean_unbiasedness_averages_rounds() {
        let mut h = History::new();
        h.push(record(0, None, 1.0));
        h.push(record(1, None, 0.5));
        assert!((h.mean_unbiasedness() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_window_panics() {
        let mut h = History::new();
        h.push(record(0, Some(0.5), 1.0));
        let _ = h.average_accuracy_last(0);
    }
}
