//! Property-based tests of the data substrate: distribution metrics, skew
//! generation and client partitioning.

use dubhe_data::partition::{max_achievable_emd, partition_clients, PartitionConfig};
use dubhe_data::{
    global_distribution, half_normal_proportions, kl_divergence, l1_distance,
    proportions_to_counts, ClassDistribution,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn counts_vec() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1000, 2..30)
        .prop_filter("not all zero", |v| v.iter().sum::<u64>() > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emd_is_a_metric_on_distributions(a in counts_vec(), b in counts_vec()) {
        let len = a.len().min(b.len());
        let da = ClassDistribution::from_counts(a[..len].to_vec());
        let db = ClassDistribution::from_counts(b[..len].to_vec());
        if da.total() == 0 || db.total() == 0 {
            return Ok(());
        }
        // Symmetry, identity, range [0, 2].
        prop_assert!((da.emd(&db) - db.emd(&da)).abs() < 1e-12);
        prop_assert!(da.emd(&da).abs() < 1e-12);
        prop_assert!(da.emd(&db) >= 0.0 && da.emd(&db) <= 2.0 + 1e-12);
    }

    #[test]
    fn l1_distance_triangle_inequality(
        a in prop::collection::vec(0.0f64..1.0, 5),
        b in prop::collection::vec(0.0f64..1.0, 5),
        c in prop::collection::vec(0.0f64..1.0, 5),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-12);
            v.iter().map(|x| x / s).collect()
        };
        let (a, b, c) = (norm(&a), norm(&b), norm(&c));
        prop_assert!(l1_distance(&a, &c) <= l1_distance(&a, &b) + l1_distance(&b, &c) + 1e-9);
    }

    #[test]
    fn kl_divergence_is_nonnegative_and_zero_iff_equal(p in counts_vec()) {
        let d = ClassDistribution::from_counts(p);
        if d.total() == 0 {
            return Ok(());
        }
        let props = d.proportions();
        prop_assert!(kl_divergence(&props, &props).abs() < 1e-12);
        prop_assert!(d.kl_to_uniform() >= -1e-12);
    }

    #[test]
    fn half_normal_hits_requested_ratio(classes in 2usize..60, rho in 1.0f64..50.0) {
        let p = half_normal_proportions(classes, rho);
        prop_assert_eq!(p.len(), classes);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let max = p.iter().cloned().fold(f64::MIN, f64::max);
        let min = p.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!((max / min - rho).abs() < 1e-6 * rho.max(1.0));
        // Monotone non-increasing profile.
        prop_assert!(p.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn counts_rounding_preserves_total(classes in 1usize..60, rho in 1.0f64..30.0, scale in 1u64..100) {
        let total = classes as u64 * 100 * scale;
        let p = half_normal_proportions(classes, rho);
        let counts = proportions_to_counts(&p, total);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        prop_assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn partition_respects_sample_counts_and_emd_bounds(
        rho in 1.0f64..12.0,
        emd_frac in 0.0f64..0.95,
        clients in 10usize..120,
        seed in any::<u64>(),
    ) {
        let global = global_distribution(10, rho, 100_000);
        let target = emd_frac * max_achievable_emd(&global);
        let cfg = PartitionConfig { clients, samples_per_client: 64, target_emd: target };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let partition = partition_clients(&global, &cfg, &mut rng);
        prop_assert_eq!(partition.clients.len(), clients);
        for c in &partition.clients {
            prop_assert_eq!(c.distribution.total(), 64);
            prop_assert!(c.anchor_class < 10);
            // A client's distance to the global distribution never exceeds 2.
            prop_assert!(c.distribution.emd(&global) <= 2.0 + 1e-9);
        }
        prop_assert!(partition.achieved_emd <= 2.0);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&partition.alpha));
    }

    #[test]
    fn proportions_always_sum_to_one(counts in counts_vec()) {
        let d = ClassDistribution::from_counts(counts);
        if d.total() > 0 {
            prop_assert!((d.proportions().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
