//! Label (class) distributions and the distances the paper is built on.
//!
//! Three quantities drive every experiment:
//!
//! * the **imbalance ratio** ρ — most frequent class count divided by least
//!   frequent class count of the *global* data (Table 1, Fig. 2a);
//! * the **Earth Mover's Distance** between two label distributions, which for
//!   categorical distributions over the same support reduces to the 1-norm
//!   distance ‖p − q‖₁ used throughout the paper (EMD_avg, ‖p_o − p_u‖₁);
//! * the **KL divergence** to the uniform distribution, which the greedy
//!   baseline (Astraea) minimises when picking clients.

use serde::{Deserialize, Serialize};

/// A distribution over `C` classes stored as raw sample counts.
///
/// Proportions are derived lazily so the same type serves both "how many
/// samples of each class does this client hold" and "what fraction of the
/// participated data belongs to each class".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDistribution {
    counts: Vec<u64>,
}

impl ClassDistribution {
    /// A distribution with zero samples in each of `classes` classes.
    pub fn empty(classes: usize) -> Self {
        assert!(classes > 0, "a distribution needs at least one class");
        ClassDistribution {
            counts: vec![0; classes],
        }
    }

    /// Builds a distribution from per-class counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert!(
            !counts.is_empty(),
            "a distribution needs at least one class"
        );
        ClassDistribution { counts }
    }

    /// Builds a distribution by counting integer labels.
    pub fn from_labels(labels: &[usize], classes: usize) -> Self {
        let mut counts = vec![0u64; classes];
        for &l in labels {
            assert!(l < classes, "label {l} out of range for {classes} classes");
            counts[l] += 1;
        }
        ClassDistribution { counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Per-class sample counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` if no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Adds one sample of class `label`.
    pub fn record(&mut self, label: usize) {
        assert!(label < self.counts.len(), "label out of range");
        self.counts[label] += 1;
    }

    /// Element-wise sum of two distributions (e.g. aggregating clients).
    pub fn add(&self, other: &ClassDistribution) -> ClassDistribution {
        assert_eq!(self.classes(), other.classes(), "class count mismatch");
        ClassDistribution {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Per-class proportions. An empty distribution yields all zeros.
    pub fn proportions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.classes()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// The uniform proportion vector `p_u` with `1/C` per class.
    pub fn uniform_proportions(classes: usize) -> Vec<f64> {
        assert!(classes > 0);
        vec![1.0 / classes as f64; classes]
    }

    /// Class imbalance ratio ρ = max count / min count.
    ///
    /// Returns `f64::INFINITY` when some class has zero samples but others do
    /// not, and 1.0 for an empty distribution (no skew measurable).
    pub fn imbalance_ratio(&self) -> f64 {
        let max = *self.counts.iter().max().expect("at least one class") as f64;
        let min = *self.counts.iter().min().expect("at least one class") as f64;
        if max == 0.0 {
            return 1.0;
        }
        if min == 0.0 {
            return f64::INFINITY;
        }
        max / min
    }

    /// EMD (1-norm distance) between this distribution and another.
    pub fn emd(&self, other: &ClassDistribution) -> f64 {
        l1_distance(&self.proportions(), &other.proportions())
    }

    /// EMD between this distribution's proportions and the uniform distribution.
    pub fn emd_to_uniform(&self) -> f64 {
        l1_distance(
            &self.proportions(),
            &Self::uniform_proportions(self.classes()),
        )
    }

    /// KL divergence `KL(self ‖ uniform)`, the quantity the greedy baseline
    /// minimises. Zero-probability classes contribute zero.
    pub fn kl_to_uniform(&self) -> f64 {
        let p = self.proportions();
        let u = 1.0 / self.classes() as f64;
        p.iter()
            .filter(|&&pi| pi > 0.0)
            .map(|&pi| pi * (pi / u).ln())
            .sum()
    }

    /// The index of the most frequent class (ties broken toward lower index).
    pub fn dominant_class(&self) -> usize {
        let mut best = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }

    /// Class indices ordered by decreasing count (ties toward lower index).
    pub fn classes_by_frequency(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.classes()).collect();
        idx.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]).then(a.cmp(&b)));
        idx
    }
}

/// 1-norm distance between two proportion vectors: `Σ |p_i − q_i|`.
///
/// This is the "EMD" of the paper (and of Zhao et al. 2018): for categorical
/// distributions over identical supports the Earth Mover's Distance with 0/1
/// ground metric equals half the L1 distance, but the paper (like its
/// references) reports the plain 1-norm, which ranges from 0 to 2.
pub fn l1_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have the same support");
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum()
}

/// KL divergence `KL(p ‖ q)` for proportion vectors; `q_i = 0` with `p_i > 0`
/// yields infinity.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have the same support");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return f64::INFINITY;
        }
        acc += pi * (pi / qi).ln();
    }
    acc
}

/// Mean of several proportion vectors — the population distribution `p_o` of a
/// selected client set (all clients weigh equally because FedVC equalises their
/// sample counts).
pub fn mean_proportions(distributions: &[Vec<f64>]) -> Vec<f64> {
    assert!(
        !distributions.is_empty(),
        "cannot average zero distributions"
    );
    let len = distributions[0].len();
    let mut out = vec![0.0; len];
    for d in distributions {
        assert_eq!(d.len(), len, "all distributions must have the same support");
        for (o, v) in out.iter_mut().zip(d) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= distributions.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_proportions() {
        let d = ClassDistribution::from_labels(&[0, 0, 1, 2, 2, 2], 4);
        assert_eq!(d.counts(), &[2, 1, 3, 0]);
        assert_eq!(d.total(), 6);
        let p = d.proportions();
        assert!((p[0] - 2.0 / 6.0).abs() < 1e-12);
        assert!((p[3] - 0.0).abs() < 1e-12);
        assert_eq!(d.dominant_class(), 2);
        assert_eq!(d.classes_by_frequency()[..2], [2, 0]);
    }

    #[test]
    fn record_and_add() {
        let mut d = ClassDistribution::empty(3);
        assert!(d.is_empty());
        d.record(1);
        d.record(1);
        d.record(2);
        let e = ClassDistribution::from_counts(vec![5, 0, 1]);
        assert_eq!(d.add(&e).counts(), &[5, 2, 2]);
    }

    #[test]
    fn imbalance_ratio_cases() {
        assert_eq!(
            ClassDistribution::from_counts(vec![10, 10]).imbalance_ratio(),
            1.0
        );
        assert_eq!(
            ClassDistribution::from_counts(vec![100, 10]).imbalance_ratio(),
            10.0
        );
        assert!(ClassDistribution::from_counts(vec![5, 0])
            .imbalance_ratio()
            .is_infinite());
        assert_eq!(ClassDistribution::empty(3).imbalance_ratio(), 1.0);
    }

    #[test]
    fn emd_bounds_and_symmetry() {
        let a = ClassDistribution::from_counts(vec![10, 0]);
        let b = ClassDistribution::from_counts(vec![0, 10]);
        assert!(
            (a.emd(&b) - 2.0).abs() < 1e-12,
            "disjoint distributions have EMD 2"
        );
        assert_eq!(a.emd(&a), 0.0);
        assert_eq!(a.emd(&b), b.emd(&a));
    }

    #[test]
    fn emd_to_uniform_of_single_class() {
        let d = ClassDistribution::from_counts(vec![10, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        // |1 - 0.1| + 9 * |0 - 0.1| = 0.9 + 0.9 = 1.8
        assert!((d.emd_to_uniform() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn kl_to_uniform_zero_for_uniform() {
        let d = ClassDistribution::from_counts(vec![7, 7, 7, 7]);
        assert!(d.kl_to_uniform().abs() < 1e-12);
        let skew = ClassDistribution::from_counts(vec![97, 1, 1, 1]);
        assert!(skew.kl_to_uniform() > 0.5);
    }

    #[test]
    fn kl_divergence_edge_cases() {
        let p = vec![0.5, 0.5, 0.0];
        let q = vec![0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let q_zero = vec![1.0, 0.0, 0.0];
        assert!(kl_divergence(&p, &q_zero).is_infinite());
    }

    #[test]
    fn l1_distance_basic() {
        assert_eq!(l1_distance(&[1.0, 0.0], &[0.0, 1.0]), 2.0);
        assert_eq!(l1_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "same support")]
    fn l1_distance_mismatched_supports_panics() {
        let _ = l1_distance(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn mean_proportions_averages() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert_eq!(mean_proportions(&[a, b]), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn out_of_range_label_panics() {
        let _ = ClassDistribution::from_labels(&[3], 3);
    }

    #[test]
    fn uniform_proportions_sum_to_one() {
        let u = ClassDistribution::uniform_proportions(52);
        assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
