//! Synthetic class-conditional Gaussian datasets standing in for MNIST,
//! CIFAR10 and FEMNIST.
//!
//! The paper's experiments use image datasets; the phenomenon it studies,
//! however, is *label-distribution bias of the participating data*. What the
//! substitute datasets must therefore preserve is (a) the number of classes,
//! (b) a tunable difficulty ordering (MNIST easy, CIFAR10 hard, FEMNIST in
//! between with 52 classes) and (c) the property that classes missing from the
//! participated data are learnt poorly. Class-conditional Gaussians with
//! controllable separation-to-noise ratio provide exactly that and keep full
//! federated runs tractable on a laptop.

use dubhe_ml::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal, StandardNormal};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::distribution::ClassDistribution;

/// Parameters of a synthetic class-conditional Gaussian task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of classes `C`.
    pub classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Distance of every class mean from the origin (per-dimension spread of
    /// the class-mean constellation).
    pub separation: f64,
    /// Standard deviation of the per-sample Gaussian noise.
    pub noise_std: f64,
    /// Seed used to draw the fixed class means (shared by train and test data
    /// so that clients and the server see the same task).
    pub mean_seed: u64,
}

impl SyntheticConfig {
    /// MNIST-like preset: 10 well-separated classes (the paper reaches ≈ 0.97
    /// test accuracy, so the substitute must be easy).
    pub fn mnist_like() -> Self {
        SyntheticConfig {
            classes: 10,
            feature_dim: 32,
            separation: 4.0,
            noise_std: 1.0,
            mean_seed: 101,
        }
    }

    /// CIFAR10-like preset: 10 heavily overlapping classes (the paper plateaus
    /// around 0.5–0.6 accuracy, so the substitute must be genuinely hard).
    pub fn cifar_like() -> Self {
        SyntheticConfig {
            classes: 10,
            feature_dim: 32,
            separation: 1.1,
            noise_std: 1.0,
            mean_seed: 202,
        }
    }

    /// FEMNIST-like preset: 52 letter classes of moderate difficulty
    /// (the paper reports 0.31–0.37 accuracy).
    pub fn femnist_like() -> Self {
        SyntheticConfig {
            classes: 52,
            feature_dim: 48,
            separation: 1.3,
            noise_std: 1.0,
            mean_seed: 303,
        }
    }

    /// The fixed class-mean matrix (`classes × feature_dim`), deterministic in
    /// `mean_seed`.
    pub fn class_means(&self) -> Matrix {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.mean_seed);
        let mut means = Matrix::zeros(self.classes, self.feature_dim);
        for c in 0..self.classes {
            // Draw a direction and scale it to `separation`.
            let mut dir: Vec<f64> = (0..self.feature_dim)
                .map(|_| <StandardNormal as Distribution<f64>>::sample(&StandardNormal, &mut rng))
                .collect();
            let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
            for v in &mut dir {
                *v = *v / norm * self.separation;
            }
            for (j, v) in dir.iter().enumerate() {
                means.set(c, j, *v as f32);
            }
        }
        means
    }
}

/// Generates a dataset whose per-class sample counts follow `distribution`.
pub fn generate_dataset<R: Rng + ?Sized>(
    config: &SyntheticConfig,
    distribution: &ClassDistribution,
    rng: &mut R,
) -> Dataset {
    assert_eq!(
        distribution.classes(),
        config.classes,
        "distribution is over {} classes but the task has {}",
        distribution.classes(),
        config.classes
    );
    let means = config.class_means();
    let noise = Normal::new(0.0, config.noise_std).expect("noise std must be positive/finite");
    let total = distribution.total() as usize;
    let mut rows = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for (class, &count) in distribution.counts().iter().enumerate() {
        for _ in 0..count {
            let row: Vec<f32> = (0..config.feature_dim)
                .map(|j| means.get(class, j) + noise.sample(rng) as f32)
                .collect();
            rows.push(row);
            labels.push(class);
        }
    }
    let features = if rows.is_empty() {
        Matrix::zeros(0, config.feature_dim)
    } else {
        Matrix::from_rows(&rows)
    };
    Dataset::new(features, labels, config.classes)
}

/// Generates the balanced test set the paper evaluates on ("the distribution of
/// the test dataset is uniform among categories").
pub fn generate_balanced_test_set<R: Rng + ?Sized>(
    config: &SyntheticConfig,
    samples_per_class: u64,
    rng: &mut R,
) -> Dataset {
    let dist = ClassDistribution::from_counts(vec![samples_per_class; config.classes]);
    generate_dataset(config, &dist, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_ml::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn generated_counts_follow_distribution() {
        let cfg = SyntheticConfig::mnist_like();
        let dist = ClassDistribution::from_counts(vec![5, 0, 3, 0, 0, 0, 0, 0, 0, 2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ds = generate_dataset(&cfg, &dist, &mut rng);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.class_distribution().counts(), dist.counts());
        assert_eq!(ds.feature_dim(), 32);
    }

    #[test]
    fn class_means_are_deterministic_and_separated() {
        let cfg = SyntheticConfig::mnist_like();
        let a = cfg.class_means();
        let b = cfg.class_means();
        assert_eq!(a, b, "means must be reproducible from the seed");
        // Norm of each mean ≈ separation.
        for c in 0..cfg.classes {
            let norm: f32 = a.row(c).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - cfg.separation as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn balanced_test_set_is_uniform() {
        let cfg = SyntheticConfig::cifar_like();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let test = generate_balanced_test_set(&cfg, 20, &mut rng);
        assert_eq!(test.len(), 200);
        assert!(test.class_distribution().counts().iter().all(|&c| c == 20));
        assert!((test.class_distribution().imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "classes but the task has")]
    fn mismatched_class_count_panics() {
        let cfg = SyntheticConfig::mnist_like();
        let dist = ClassDistribution::from_counts(vec![1; 5]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let _ = generate_dataset(&cfg, &dist, &mut rng);
    }

    #[test]
    fn mnist_like_is_learnable_and_harder_than_cifar_like() {
        // A tiny centralized sanity check: an MLP should separate the
        // mnist-like task much better than the cifar-like task after the same
        // small training budget, mirroring the paper's difficulty ordering.
        let train_and_eval = |cfg: SyntheticConfig, seed: u64| -> f64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let train_dist = ClassDistribution::from_counts(vec![80; cfg.classes]);
            let train = generate_dataset(&cfg, &train_dist, &mut rng);
            let test = generate_balanced_test_set(&cfg, 20, &mut rng);
            let mut model_rng = rand::rngs::StdRng::seed_from_u64(99);
            let mut model = Sequential::new(vec![
                Dense::new(cfg.feature_dim, 64, &mut model_rng).boxed(),
                ReLU::new().boxed(),
                Dense::new(64, cfg.classes, &mut model_rng).boxed(),
            ]);
            let mut opt = Adam::new(0.01);
            for _ in 0..50 {
                for (x, y) in train.batches(32, &mut rng) {
                    model.train_batch(&x, &y, &mut opt);
                }
            }
            model.accuracy(test.features(), test.labels())
        };
        let mnist_acc = train_and_eval(SyntheticConfig::mnist_like(), 1);
        let cifar_acc = train_and_eval(SyntheticConfig::cifar_like(), 1);
        assert!(
            mnist_acc > 0.85,
            "mnist-like should be easy, got {mnist_acc}"
        );
        assert!(
            cifar_acc < mnist_acc,
            "cifar-like ({cifar_acc}) must be harder than mnist-like ({mnist_acc})"
        );
    }

    #[test]
    fn femnist_like_has_52_classes() {
        let cfg = SyntheticConfig::femnist_like();
        assert_eq!(cfg.classes, 52);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let test = generate_balanced_test_set(&cfg, 2, &mut rng);
        assert_eq!(test.classes(), 52);
        assert_eq!(test.len(), 104);
    }
}
