//! # dubhe-data — federated datasets, label distributions and skew generators
//!
//! Everything in the Dubhe paper is driven by *label distributions*: the global
//! imbalance ratio ρ, the client discrepancy EMD_avg, the population
//! distribution `p_o` of a selected client set, and the uniform target `p_u`.
//! This crate provides those primitives plus the synthetic federated datasets
//! that stand in for MNIST, CIFAR10 and FEMNIST (see `docs/ARCHITECTURE.md`
//! at the repo root for the substitution rationale):
//!
//! * [`ClassDistribution`], [`l1_distance`], [`kl_divergence`] — the metric
//!   layer (EMD, KL, ρ).
//! * [`skew`] — half-normal global class-proportion generation for a target ρ.
//! * [`partition`] — splitting the global pool into `N` clients with a target
//!   EMD_avg.
//! * [`synthetic`] — class-conditional Gaussian feature generation with
//!   MNIST-like / CIFAR-like / FEMNIST-like presets.
//! * [`virtual_clients`] — FedVC virtualisation to a fixed per-client size.
//! * [`federated`] — one-call construction of a named dataset such as
//!   `CIFAR10-10/1.5`.
//!
//! ## Example
//!
//! ```
//! use dubhe_data::federated::{DatasetFamily, FederatedSpec};
//! use rand::SeedableRng;
//!
//! let spec = FederatedSpec {
//!     family: DatasetFamily::CifarLike,
//!     rho: 10.0,
//!     emd_avg: 1.5,
//!     clients: 100,
//!     samples_per_client: 64,
//!     test_samples_per_class: 10,
//!     seed: 7,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
//! let partition = spec.build_partition(&mut rng);
//! assert_eq!(partition.num_clients(), 100);
//! // The global distribution honours the requested imbalance ratio.
//! assert!((partition.global.imbalance_ratio() - 10.0).abs() < 0.5);
//! ```

pub mod dataset;
pub mod distribution;
pub mod federated;
pub mod partition;
pub mod skew;
pub mod synthetic;
pub mod virtual_clients;

pub use dataset::Dataset;
pub use distribution::{kl_divergence, l1_distance, mean_proportions, ClassDistribution};
pub use federated::{DatasetFamily, FederatedDataset, FederatedPartition, FederatedSpec};
pub use partition::{partition_clients, ClientPartition, Partition, PartitionConfig};
pub use skew::{global_distribution, half_normal_proportions, proportions_to_counts};
pub use synthetic::{generate_balanced_test_set, generate_dataset, SyntheticConfig};
pub use virtual_clients::{virtualize, VirtualClient};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table1_datasets_are_constructible() {
        // Table 1: MNIST/CIFAR10 with rho in {10,5,2,1} x EMD in {0,0.5,1.0,1.5},
        // N = 1000; FEMNIST with rho = 13.64, EMD = 0.554, N = 8962.
        // Down-scaled client counts keep the test fast; ratios are what matter.
        for &rho in &[1.0, 2.0, 5.0, 10.0] {
            for &emd in &[0.0, 0.5, 1.0, 1.5] {
                let spec = FederatedSpec {
                    family: DatasetFamily::MnistLike,
                    rho,
                    emd_avg: emd,
                    clients: 50,
                    samples_per_client: 100,
                    test_samples_per_class: 5,
                    seed: 11,
                };
                let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
                let fp = spec.build_partition(&mut rng);
                assert_eq!(fp.num_clients(), 50, "{}", spec.name());
            }
        }
    }
}
