//! End-to-end construction of federated datasets in the paper's nomenclature.
//!
//! Datasets are named `"<Family>-<ρ>/<EMD_avg>"`, e.g. `CIFAR10-10/1.5`
//! (Table 1). A [`FederatedSpec`] captures the family (which synthetic preset
//! stands in for which image dataset), the global imbalance ratio ρ, the target
//! client discrepancy EMD_avg and the client population, and can be *realised*
//! at two levels:
//!
//! * [`FederatedSpec::build_partition`] — label distributions only. This is all
//!   the client-selection experiments (Fig. 9, Fig. 10, Table 2's EMD* column)
//!   need, and it scales to the paper's full 1000/8962-client populations.
//! * [`FederatedSpec::build_dataset`] — additionally materialises synthetic
//!   feature data per client plus a balanced test set, for the training
//!   experiments (Fig. 2, 6, 7, 8).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::distribution::ClassDistribution;
use crate::partition::{partition_clients, ClientPartition, Partition, PartitionConfig};
use crate::skew::global_distribution;
use crate::synthetic::{generate_balanced_test_set, generate_dataset, SyntheticConfig};

/// Which image dataset a synthetic task stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetFamily {
    /// 10 easy classes (stands in for MNIST).
    MnistLike,
    /// 10 hard classes (stands in for CIFAR10).
    CifarLike,
    /// 52 moderately hard classes (stands in for FEMNIST letters).
    FemnistLike,
}

impl DatasetFamily {
    /// The synthetic-generator preset for this family.
    pub fn synthetic_config(&self) -> SyntheticConfig {
        match self {
            DatasetFamily::MnistLike => SyntheticConfig::mnist_like(),
            DatasetFamily::CifarLike => SyntheticConfig::cifar_like(),
            DatasetFamily::FemnistLike => SyntheticConfig::femnist_like(),
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetFamily::MnistLike => "MNIST",
            DatasetFamily::CifarLike => "CIFAR10",
            DatasetFamily::FemnistLike => "FEMNIST",
        }
    }

    /// Number of classes of this family.
    pub fn classes(&self) -> usize {
        self.synthetic_config().classes
    }
}

/// Full specification of a federated dataset in the paper's parameterisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederatedSpec {
    /// Which task family.
    pub family: DatasetFamily,
    /// Global class imbalance ratio ρ.
    pub rho: f64,
    /// Target average client-to-global EMD.
    pub emd_avg: f64,
    /// Number of (virtual) clients `N`.
    pub clients: usize,
    /// Samples per client.
    pub samples_per_client: u64,
    /// Samples per class in the balanced test set.
    pub test_samples_per_class: u64,
    /// Seed for partitioning and data generation.
    pub seed: u64,
}

impl FederatedSpec {
    /// The group-1 configuration of the paper (MNIST / CIFAR10, N = 1000).
    pub fn group1(family: DatasetFamily, rho: f64, emd_avg: f64) -> Self {
        assert!(
            family != DatasetFamily::FemnistLike,
            "group 1 is MNIST/CIFAR10"
        );
        FederatedSpec {
            family,
            rho,
            emd_avg,
            clients: 1000,
            samples_per_client: 128,
            test_samples_per_class: 50,
            seed: 42,
        }
    }

    /// The group-2 configuration of the paper (FEMNIST, N = 8962, ρ = 13.64,
    /// EMD_avg = 0.554 per Table 1).
    pub fn group2() -> Self {
        FederatedSpec {
            family: DatasetFamily::FemnistLike,
            rho: 13.64,
            emd_avg: 0.554,
            clients: 8962,
            samples_per_client: 32,
            test_samples_per_class: 20,
            seed: 42,
        }
    }

    /// The paper-style name, e.g. `CIFAR10-10/1.5`.
    pub fn name(&self) -> String {
        format!("{}-{}/{}", self.family.name(), self.rho, self.emd_avg)
    }

    /// Number of classes of the underlying task.
    pub fn classes(&self) -> usize {
        self.family.classes()
    }

    /// Builds the label-distribution level of the dataset (no features).
    pub fn build_partition<R: Rng + ?Sized>(&self, rng: &mut R) -> FederatedPartition {
        let total_samples = self.samples_per_client * self.clients as u64;
        let global = global_distribution(self.classes(), self.rho, total_samples);
        let cfg = PartitionConfig {
            clients: self.clients,
            samples_per_client: self.samples_per_client,
            target_emd: self.emd_avg,
        };
        let partition = partition_clients(&global, &cfg, rng);
        FederatedPartition {
            spec: *self,
            global,
            partition,
        }
    }

    /// Builds the full dataset: client feature data plus a balanced test set.
    pub fn build_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> FederatedDataset {
        let partition = self.build_partition(rng);
        let synth = self.family.synthetic_config();
        let client_data: Vec<Dataset> = partition
            .partition
            .clients
            .iter()
            .map(|c| generate_dataset(&synth, &c.distribution, rng))
            .collect();
        let test = generate_balanced_test_set(&synth, self.test_samples_per_class, rng);
        FederatedDataset {
            partition,
            client_data,
            test,
        }
    }
}

/// Label-distribution level realisation of a [`FederatedSpec`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederatedPartition {
    /// The generating specification.
    pub spec: FederatedSpec,
    /// The global label distribution.
    pub global: ClassDistribution,
    /// The per-client partition.
    pub partition: Partition,
}

impl FederatedPartition {
    /// Per-client label distributions in client order.
    pub fn client_distributions(&self) -> Vec<ClassDistribution> {
        self.partition
            .clients
            .iter()
            .map(|c| c.distribution.clone())
            .collect()
    }

    /// The client partitions.
    pub fn clients(&self) -> &[ClientPartition] {
        &self.partition.clients
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.partition.clients.len()
    }
}

/// Full realisation of a [`FederatedSpec`] including synthetic features.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    /// The label-distribution level.
    pub partition: FederatedPartition,
    /// One feature dataset per client (same order as `partition.clients`).
    pub client_data: Vec<Dataset>,
    /// The balanced test set.
    pub test: Dataset,
}

impl FederatedDataset {
    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.client_data.len()
    }

    /// The generating specification.
    pub fn spec(&self) -> &FederatedSpec {
        &self.partition.spec
    }

    /// Per-client label distributions.
    pub fn client_distributions(&self) -> Vec<ClassDistribution> {
        self.partition.client_distributions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_follow_the_papers_convention() {
        let spec = FederatedSpec {
            family: DatasetFamily::CifarLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: 100,
            samples_per_client: 64,
            test_samples_per_class: 10,
            seed: 1,
        };
        assert_eq!(spec.name(), "CIFAR10-10/1.5");
        assert_eq!(FederatedSpec::group2().name(), "FEMNIST-13.64/0.554");
    }

    #[test]
    fn partition_hits_rho_and_emd_targets() {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.0,
            clients: 300,
            samples_per_client: 100,
            test_samples_per_class: 10,
            seed: 2,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
        let fp = spec.build_partition(&mut rng);
        assert_eq!(fp.num_clients(), 300);
        assert!((fp.global.imbalance_ratio() - 10.0).abs() < 0.5);
        assert!((fp.partition.achieved_emd - 1.0).abs() < 0.15);
    }

    #[test]
    fn full_dataset_materialises_features_and_balanced_test() {
        let spec = FederatedSpec {
            family: DatasetFamily::CifarLike,
            rho: 5.0,
            emd_avg: 0.5,
            clients: 20,
            samples_per_client: 30,
            test_samples_per_class: 5,
            seed: 3,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
        let ds = spec.build_dataset(&mut rng);
        assert_eq!(ds.num_clients(), 20);
        for (client, plan) in ds.client_data.iter().zip(ds.partition.clients()) {
            assert_eq!(client.len() as u64, 30);
            assert_eq!(&client.class_distribution(), &plan.distribution);
        }
        assert_eq!(ds.test.class_distribution().imbalance_ratio(), 1.0);
    }

    #[test]
    fn group1_and_group2_presets_match_table1() {
        let g1 = FederatedSpec::group1(DatasetFamily::MnistLike, 2.0, 0.5);
        assert_eq!(g1.clients, 1000);
        assert_eq!(g1.classes(), 10);
        let g2 = FederatedSpec::group2();
        assert_eq!(g2.clients, 8962);
        assert_eq!(g2.classes(), 52);
        assert!((g2.rho - 13.64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "group 1 is MNIST/CIFAR10")]
    fn group1_rejects_femnist() {
        let _ = FederatedSpec::group1(DatasetFamily::FemnistLike, 2.0, 0.5);
    }

    #[test]
    fn build_is_deterministic_given_seed() {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 2.0,
            emd_avg: 0.5,
            clients: 30,
            samples_per_client: 40,
            test_samples_per_class: 4,
            seed: 9,
        };
        let a = spec.build_partition(&mut rand::rngs::StdRng::seed_from_u64(9));
        let b = spec.build_partition(&mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a.client_distributions(), b.client_distributions());
    }
}
