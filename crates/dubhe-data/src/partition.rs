//! Partitioning the global data pool into client datasets with a target
//! inter-client discrepancy EMD_avg.
//!
//! The paper characterises client heterogeneity by
//! `EMD_avg = (1/N) Σ_k ‖p_k − p_g‖₁` — the average 1-norm distance between a
//! client's label distribution and the global label distribution — and
//! evaluates on datasets with EMD_avg ∈ {0, 0.5, 1.0, 1.5}.
//!
//! We generate client label distributions as mixtures
//!
//! ```text
//! p_k = (1 − α)·p_g + α·δ_{c_k}
//! ```
//!
//! where `δ_{c_k}` is a point mass on client `k`'s *anchor class* `c_k`, drawn
//! from the global distribution so that the expectation over clients stays
//! `p_g`. Since `‖p_k − p_g‖₁ = α·‖δ_c − p_g‖₁ = 2α(1 − p_g(c))`, a single
//! mixing coefficient α hits any requested EMD_avg up to the achievable maximum
//! `2(1 − Σ_c p_g(c)²)` (α = 1 means every client holds a single class, the
//! paper's "second extreme case").

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::distribution::ClassDistribution;

/// The label-distribution plan for one client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientPartition {
    /// Client index in `[0, N)`.
    pub client_id: usize,
    /// The anchor (dominating) class of the mixture.
    pub anchor_class: usize,
    /// Per-class sample counts for this client.
    pub distribution: ClassDistribution,
}

/// Configuration for [`partition_clients`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of clients `N`.
    pub clients: usize,
    /// Samples held by each client (before FedVC virtualisation).
    pub samples_per_client: u64,
    /// Target average EMD between client distributions and the global one.
    pub target_emd: f64,
}

/// The outcome of partitioning: per-client plans plus the achieved EMD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// One entry per client.
    pub clients: Vec<ClientPartition>,
    /// Mixing coefficient α actually used.
    pub alpha: f64,
    /// The achieved average EMD (may differ slightly from the target because of
    /// integer rounding of per-class counts).
    pub achieved_emd: f64,
}

/// The maximum EMD_avg achievable for a given global distribution, reached when
/// every client holds a single class (α = 1).
pub fn max_achievable_emd(global: &ClassDistribution) -> f64 {
    let p = global.proportions();
    2.0 * (1.0 - p.iter().map(|v| v * v).sum::<f64>())
}

/// Splits the global pool into `config.clients` clients whose average distance
/// to the global distribution is `config.target_emd`.
///
/// Anchor classes are sampled from the global distribution so the *expected*
/// population distribution under full participation equals the global one.
///
/// # Panics
/// Panics if the target EMD is negative or exceeds the achievable maximum by
/// more than a small tolerance (the caller asked for more heterogeneity than
/// the global skew permits).
pub fn partition_clients<R: Rng + ?Sized>(
    global: &ClassDistribution,
    config: &PartitionConfig,
    rng: &mut R,
) -> Partition {
    assert!(config.clients > 0, "need at least one client");
    assert!(
        config.samples_per_client > 0,
        "clients need at least one sample"
    );
    assert!(config.target_emd >= 0.0, "EMD cannot be negative");
    let max_emd = max_achievable_emd(global);
    assert!(
        config.target_emd <= max_emd + 1e-9,
        "target EMD {} exceeds the achievable maximum {:.3} for this global distribution",
        config.target_emd,
        max_emd
    );

    let p_g = global.proportions();
    let classes = global.classes();
    let alpha = if max_emd == 0.0 {
        0.0
    } else {
        config.target_emd / max_emd
    };

    // Cumulative distribution for anchor-class sampling.
    let mut cumulative = Vec::with_capacity(classes);
    let mut acc = 0.0;
    for &p in &p_g {
        acc += p;
        cumulative.push(acc);
    }

    let mut clients = Vec::with_capacity(config.clients);
    let mut emd_sum = 0.0;
    for client_id in 0..config.clients {
        let u: f64 = rng.gen();
        let anchor_class = cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(classes - 1);
        // Mixture proportions for this client.
        let mix: Vec<f64> = (0..classes)
            .map(|j| {
                let point = if j == anchor_class { 1.0 } else { 0.0 };
                (1.0 - alpha) * p_g[j] + alpha * point
            })
            .collect();
        let counts = if config.samples_per_client >= classes as u64 {
            proportions_to_counts_allowing_zero(&mix, config.samples_per_client)
        } else {
            // Very small clients: just put everything on the top classes.
            top_heavy_counts(&mix, config.samples_per_client)
        };
        let distribution = ClassDistribution::from_counts(counts);
        emd_sum += distribution.emd(global);
        clients.push(ClientPartition {
            client_id,
            anchor_class,
            distribution,
        });
    }

    Partition {
        clients,
        alpha,
        achieved_emd: emd_sum / config.clients as f64,
    }
}

/// Largest-remainder rounding that allows zero-count classes (client datasets
/// legitimately miss classes; the global generator must not).
fn proportions_to_counts_allowing_zero(proportions: &[f64], total: u64) -> Vec<u64> {
    let sum: f64 = proportions.iter().sum();
    let ideal: Vec<f64> = proportions.iter().map(|p| p / sum * total as f64).collect();
    let mut counts: Vec<u64> = ideal.iter().map(|v| v.floor() as u64).collect();
    let mut assigned: u64 = counts.iter().sum();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = ideal[a] - ideal[a].floor();
        let rb = ideal[b] - ideal[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut i = 0;
    let n_classes = counts.len();
    while assigned < total {
        counts[order[i % n_classes]] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

/// For clients with fewer samples than classes: fill the largest-proportion
/// classes first, one sample each, weighted by proportion.
fn top_heavy_counts(proportions: &[f64], total: u64) -> Vec<u64> {
    let mut order: Vec<usize> = (0..proportions.len()).collect();
    order.sort_by(|&a, &b| {
        proportions[b]
            .partial_cmp(&proportions[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut counts = vec![0u64; proportions.len()];
    let mut remaining = total;
    // Give the anchor class the bulk, then spread singles.
    if let Some(&first) = order.first() {
        let bulk = ((total as f64) * proportions[first]).round() as u64;
        let bulk = bulk.min(remaining);
        counts[first] += bulk;
        remaining -= bulk;
    }
    let mut i = 0;
    while remaining > 0 {
        counts[order[i % order.len()]] += 1;
        remaining -= 1;
        i += 1;
    }
    counts
}

/// Average EMD between each client's distribution and the global distribution —
/// the `EMD_avg` column of Table 1.
pub fn average_emd(clients: &[ClientPartition], global: &ClassDistribution) -> f64 {
    if clients.is_empty() {
        return 0.0;
    }
    clients
        .iter()
        .map(|c| c.distribution.emd(global))
        .sum::<f64>()
        / clients.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skew::global_distribution;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn zero_emd_clients_match_global() {
        let global = global_distribution(10, 10.0, 100_000);
        let cfg = PartitionConfig {
            clients: 50,
            samples_per_client: 1000,
            target_emd: 0.0,
        };
        let part = partition_clients(&global, &cfg, &mut rng());
        assert_eq!(part.clients.len(), 50);
        assert!(part.achieved_emd < 0.05, "achieved {}", part.achieved_emd);
        for c in &part.clients {
            assert_eq!(c.distribution.total(), 1000);
        }
    }

    #[test]
    fn achieved_emd_tracks_target() {
        let global = global_distribution(10, 10.0, 100_000);
        for &target in &[0.5f64, 1.0, 1.5] {
            let cfg = PartitionConfig {
                clients: 200,
                samples_per_client: 500,
                target_emd: target,
            };
            let part = partition_clients(&global, &cfg, &mut rng());
            assert!(
                (part.achieved_emd - target).abs() < 0.12,
                "target {target}, achieved {}",
                part.achieved_emd
            );
        }
    }

    #[test]
    fn average_emd_helper_matches_partition_report() {
        let global = global_distribution(10, 5.0, 50_000);
        let cfg = PartitionConfig {
            clients: 100,
            samples_per_client: 200,
            target_emd: 1.0,
        };
        let part = partition_clients(&global, &cfg, &mut rng());
        let recomputed = average_emd(&part.clients, &global);
        assert!((recomputed - part.achieved_emd).abs() < 1e-9);
    }

    #[test]
    fn anchor_classes_follow_global_distribution() {
        let global = global_distribution(10, 10.0, 100_000);
        let cfg = PartitionConfig {
            clients: 5000,
            samples_per_client: 100,
            target_emd: 1.5,
        };
        let part = partition_clients(&global, &cfg, &mut rng());
        let p_g = global.proportions();
        let mut anchor_counts = [0usize; 10];
        for c in &part.clients {
            anchor_counts[c.anchor_class] += 1;
        }
        // Each class should anchor a share of clients proportional to its
        // global frequency; in particular the most frequent class must anchor
        // far more clients than the least frequent one.
        for class in 0..10 {
            let frac = anchor_counts[class] as f64 / 5000.0;
            assert!(
                (frac - p_g[class]).abs() < 0.05,
                "class {class}: {frac} vs {}",
                p_g[class]
            );
        }
        assert!(anchor_counts[0] > 3 * anchor_counts[9]);
    }

    #[test]
    fn max_achievable_emd_bounds() {
        let uniform = ClassDistribution::from_counts(vec![10; 10]);
        assert!((max_achievable_emd(&uniform) - 1.8).abs() < 1e-9);
        let single = ClassDistribution::from_counts(vec![100, 0, 0]);
        assert!(max_achievable_emd(&single) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds the achievable maximum")]
    fn unreachable_target_panics() {
        let global = ClassDistribution::from_counts(vec![100, 0, 0]);
        let cfg = PartitionConfig {
            clients: 10,
            samples_per_client: 10,
            target_emd: 1.0,
        };
        let _ = partition_clients(&global, &cfg, &mut rng());
    }

    #[test]
    fn tiny_clients_still_get_exact_sample_counts() {
        let global = global_distribution(52, 13.64, 100_000);
        let cfg = PartitionConfig {
            clients: 100,
            samples_per_client: 20,
            target_emd: 0.554,
        };
        let part = partition_clients(&global, &cfg, &mut rng());
        for c in &part.clients {
            assert_eq!(c.distribution.total(), 20);
        }
    }

    #[test]
    fn partition_is_deterministic_given_seed() {
        let global = global_distribution(10, 2.0, 10_000);
        let cfg = PartitionConfig {
            clients: 20,
            samples_per_client: 50,
            target_emd: 1.0,
        };
        let a = partition_clients(&global, &cfg, &mut rand::rngs::StdRng::seed_from_u64(7));
        let b = partition_clients(&global, &cfg, &mut rand::rngs::StdRng::seed_from_u64(7));
        assert_eq!(a.clients, b.clients);
    }
}
