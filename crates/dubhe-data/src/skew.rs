//! Global class-skew generation (half-normal profile, target imbalance ratio ρ).
//!
//! The paper "simulate\[s\] the imbalanced property of data by sampling datasets
//! with half-normal distributions" and controls the skew with the imbalance
//! ratio ρ = (size of most frequent class) / (size of least frequent class).
//!
//! We reproduce that: class proportions follow the density of a half-normal
//! distribution evaluated at equally spaced points, scaled so the ratio between
//! the largest and smallest proportion is exactly ρ. ρ = 1 degenerates to the
//! uniform distribution.

use crate::distribution::ClassDistribution;

/// Generates per-class proportions with a half-normal profile and exact
/// max/min ratio ρ.
///
/// # Panics
/// Panics if `classes == 0` or `rho < 1`.
pub fn half_normal_proportions(classes: usize, rho: f64) -> Vec<f64> {
    assert!(classes > 0, "need at least one class");
    assert!(rho >= 1.0, "imbalance ratio must be >= 1, got {rho}");
    if classes == 1 || rho == 1.0 {
        return vec![1.0 / classes as f64; classes];
    }
    // Half-normal density ∝ exp(-x²/2). Choose x_max so that
    // density(0)/density(x_max) = exp(x_max²/2) = ρ  ⇒  x_max = sqrt(2 ln ρ).
    let x_max = (2.0 * rho.ln()).sqrt();
    let raw: Vec<f64> = (0..classes)
        .map(|j| {
            let x = x_max * j as f64 / (classes - 1) as f64;
            (-x * x / 2.0).exp()
        })
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|v| v / sum).collect()
}

/// Turns target proportions into integer per-class sample counts totalling
/// `total_samples`, using largest-remainder rounding so the total is exact and
/// every class with positive proportion receives at least one sample.
pub fn proportions_to_counts(proportions: &[f64], total_samples: u64) -> Vec<u64> {
    assert!(!proportions.is_empty(), "need at least one class");
    assert!(
        total_samples as usize >= proportions.len(),
        "need at least one sample per class: {total_samples} samples for {} classes",
        proportions.len()
    );
    let sum: f64 = proportions.iter().sum();
    assert!(sum > 0.0, "proportions must not all be zero");

    let ideal: Vec<f64> = proportions
        .iter()
        .map(|p| p / sum * total_samples as f64)
        .collect();
    let mut counts: Vec<u64> = ideal.iter().map(|v| v.floor().max(1.0) as u64).collect();
    let mut assigned: u64 = counts.iter().sum();

    // Largest remainder for the leftovers; steal from the biggest classes if we
    // overshot because of the at-least-one rule.
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = ideal[a] - ideal[a].floor();
        let rb = ideal[b] - ideal[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut i = 0;
    let n_classes = counts.len();
    while assigned < total_samples {
        counts[order[i % n_classes]] += 1;
        assigned += 1;
        i += 1;
    }
    let mut by_size: Vec<usize> = (0..counts.len()).collect();
    while assigned > total_samples {
        by_size.sort_by(|&a, &b| counts[b].cmp(&counts[a]));
        let target = by_size[0];
        if counts[target] > 1 {
            counts[target] -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }
    counts
}

/// Convenience wrapper producing a [`ClassDistribution`] for a given ρ.
pub fn global_distribution(classes: usize, rho: f64, total_samples: u64) -> ClassDistribution {
    let proportions = half_normal_proportions(classes, rho);
    ClassDistribution::from_counts(proportions_to_counts(&proportions, total_samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_one_is_uniform() {
        let p = half_normal_proportions(10, 1.0);
        assert!(p.iter().all(|&v| (v - 0.1).abs() < 1e-12));
    }

    #[test]
    fn proportions_sum_to_one_and_hit_target_ratio() {
        for &rho in &[2.0, 5.0, 10.0, 13.64] {
            let p = half_normal_proportions(10, rho);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let max = p.iter().cloned().fold(f64::MIN, f64::max);
            let min = p.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                (max / min - rho).abs() < 1e-6,
                "rho {rho}: achieved ratio {}",
                max / min
            );
        }
    }

    #[test]
    fn proportions_are_monotonically_decreasing() {
        let p = half_normal_proportions(10, 10.0);
        for w in p.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn counts_total_is_exact() {
        let p = half_normal_proportions(10, 10.0);
        for &total in &[100u64, 1000, 12_345, 60_000] {
            let counts = proportions_to_counts(&p, total);
            assert_eq!(counts.iter().sum::<u64>(), total);
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn counts_ratio_close_to_rho() {
        let d = global_distribution(10, 10.0, 50_000);
        let rho = d.imbalance_ratio();
        assert!((rho - 10.0).abs() / 10.0 < 0.05, "achieved rho {rho}");
    }

    #[test]
    fn femnist_like_ratio_from_table1() {
        // Table 1 lists FEMNIST with rho = 13.64 over 52 classes.
        let d = global_distribution(52, 13.64, 80_000);
        assert!((d.imbalance_ratio() - 13.64).abs() < 1.0);
        assert_eq!(d.classes(), 52);
    }

    #[test]
    #[should_panic(expected = "imbalance ratio must be >= 1")]
    fn rho_below_one_panics() {
        let _ = half_normal_proportions(10, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one sample per class")]
    fn too_few_samples_panics() {
        let p = half_normal_proportions(10, 2.0);
        let _ = proportions_to_counts(&p, 5);
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        assert_eq!(half_normal_proportions(1, 5.0), vec![1.0]);
        assert_eq!(proportions_to_counts(&[1.0], 10), vec![10]);
    }
}
