//! In-memory datasets and mini-batch iteration.

use dubhe_ml::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::distribution::ClassDistribution;

/// A supervised dataset: one feature row per sample plus integer labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Builds a dataset, checking that labels are in range and counts agree.
    pub fn new(features: Matrix, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "one label per feature row required"
        );
        assert!(classes > 0, "need at least one class");
        assert!(
            labels.iter().all(|&l| l < classes),
            "labels must be smaller than the class count"
        );
        Dataset {
            features,
            labels,
            classes,
        }
    }

    /// An empty dataset with the given feature dimension and class count.
    pub fn empty(feature_dim: usize, classes: usize) -> Self {
        Dataset {
            features: Matrix::zeros(0, feature_dim),
            labels: Vec::new(),
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes of the classification task.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Feature dimension per sample.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// The full feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The label distribution of this dataset (the `p_l` of the paper).
    pub fn class_distribution(&self) -> ClassDistribution {
        ClassDistribution::from_labels(&self.labels, self.classes)
    }

    /// A new dataset containing the given sample indices (duplicates allowed,
    /// which is how FedVC "duplicates samples" of small clients).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        for &i in indices {
            assert!(i < self.len(), "subset index {i} out of range");
        }
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }

    /// Concatenates two datasets over the same task.
    pub fn merge(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        assert_eq!(
            self.feature_dim(),
            other.feature_dim(),
            "feature dimension mismatch"
        );
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(self.len() + other.len());
        for i in 0..self.len() {
            rows.push(self.features.row(i).to_vec());
        }
        for i in 0..other.len() {
            rows.push(other.features.row(i).to_vec());
        }
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let features = if rows.is_empty() {
            Matrix::zeros(0, self.feature_dim())
        } else {
            Matrix::from_rows(&rows)
        };
        Dataset {
            features,
            labels,
            classes: self.classes,
        }
    }

    /// Shuffled mini-batches of at most `batch_size` samples.
    ///
    /// The last batch may be smaller. Batching a dataset with fewer samples
    /// than `batch_size` yields a single batch with everything.
    pub fn batches<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<(Matrix, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        if self.is_empty() {
            return Vec::new();
        }
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices
            .chunks(batch_size)
            .map(|chunk| {
                let x = self.features.select_rows(chunk);
                let y = chunk.iter().map(|&i| self.labels[i]).collect();
                (x, y)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.0, 0.1],
            vec![1.0, 1.1],
            vec![2.0, 2.1],
            vec![3.0, 3.1],
            vec![4.0, 4.1],
        ]);
        Dataset::new(features, vec![0, 1, 2, 0, 1], 3)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 5);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.class_distribution().counts(), &[2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "one label per feature row")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(Matrix::zeros(3, 2), vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "smaller than the class count")]
    fn out_of_range_label_panics() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3);
    }

    #[test]
    fn subset_with_duplicates() {
        let d = toy();
        let s = d.subset(&[1, 1, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[1, 1, 1]);
        assert_eq!(s.features().row(0), s.features().row(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subset_out_of_range_panics() {
        let _ = toy().subset(&[99]);
    }

    #[test]
    fn merge_concatenates() {
        let d = toy();
        let m = d.merge(&d);
        assert_eq!(m.len(), 10);
        assert_eq!(m.class_distribution().counts(), &[4, 4, 2]);
    }

    #[test]
    fn batches_cover_every_sample_exactly_once() {
        let d = toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let batches = d.batches(2, &mut rng);
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 5);
        let mut seen_labels: Vec<usize> = batches.iter().flat_map(|(_, y)| y.clone()).collect();
        seen_labels.sort_unstable();
        let mut expected = d.labels().to_vec();
        expected.sort_unstable();
        assert_eq!(seen_labels, expected);
    }

    #[test]
    fn empty_dataset_has_no_batches() {
        let d = Dataset::empty(4, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert!(d.batches(8, &mut rng).is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn batching_is_deterministic_given_seed() {
        let d = toy();
        let a = d.batches(2, &mut rand::rngs::StdRng::seed_from_u64(3));
        let b = d.batches(2, &mut rand::rngs::StdRng::seed_from_u64(3));
        assert_eq!(a.len(), b.len());
        for ((xa, ya), (xb, yb)) in a.iter().zip(&b) {
            assert_eq!(xa, xb);
            assert_eq!(ya, yb);
        }
    }
}
