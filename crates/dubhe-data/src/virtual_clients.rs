//! FedVC virtual clients (Hsu et al., "Federated Visual Classification with
//! Real-World Data Distribution").
//!
//! The paper adopts FedVC as an auxiliary so that every participating client
//! contributes exactly `N_VC` samples per round and aggregation becomes a plain
//! average (Eq. 1): clients with large datasets are *split* into several
//! virtual clients, clients with small datasets *duplicate* samples until they
//! reach `N_VC`. All of Dubhe's "clients" are virtual clients.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// One virtual client: a fixed-size dataset plus provenance information.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtualClient {
    /// Identifier of the virtual client (dense, `0..V`).
    pub id: usize,
    /// Index of the physical client this virtual client was carved from.
    pub physical_id: usize,
    /// Exactly `N_VC` samples.
    pub dataset: Dataset,
}

/// Splits/duplicates physical client datasets into virtual clients of exactly
/// `n_vc` samples each.
///
/// * a physical client with `m >= n_vc` samples produces `floor(m / n_vc)`
///   virtual clients from disjoint shuffled chunks (the remainder tops up the
///   last chunk by re-using earlier samples);
/// * a physical client with `0 < m < n_vc` samples produces one virtual client
///   whose samples are repeated cyclically until `n_vc` is reached;
/// * empty physical clients produce nothing.
pub fn virtualize<R: Rng + ?Sized>(
    physical: &[Dataset],
    n_vc: usize,
    rng: &mut R,
) -> Vec<VirtualClient> {
    assert!(n_vc > 0, "virtual client size must be positive");
    let mut out = Vec::new();
    for (physical_id, ds) in physical.iter().enumerate() {
        if ds.is_empty() {
            continue;
        }
        let mut indices: Vec<usize> = (0..ds.len()).collect();
        indices.shuffle(rng);
        if ds.len() < n_vc {
            // Duplicate cyclically.
            let repeated: Vec<usize> = (0..n_vc).map(|i| indices[i % indices.len()]).collect();
            out.push(VirtualClient {
                id: out.len(),
                physical_id,
                dataset: ds.subset(&repeated),
            });
            continue;
        }
        let chunks = ds.len() / n_vc;
        for chunk in 0..chunks {
            let start = chunk * n_vc;
            let slice: Vec<usize> = indices[start..start + n_vc].to_vec();
            out.push(VirtualClient {
                id: out.len(),
                physical_id,
                dataset: ds.subset(&slice),
            });
        }
    }
    out
}

/// Summary statistics of a virtualisation (for experiment logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualizationStats {
    /// Number of physical clients that produced at least one virtual client.
    pub physical_clients: usize,
    /// Number of virtual clients produced.
    pub virtual_clients: usize,
    /// The fixed per-client sample count `N_VC`.
    pub n_vc: usize,
}

/// Computes [`VirtualizationStats`] for a set of virtual clients.
pub fn stats(virtual_clients: &[VirtualClient], n_vc: usize) -> VirtualizationStats {
    let mut physical: Vec<usize> = virtual_clients.iter().map(|v| v.physical_id).collect();
    physical.sort_unstable();
    physical.dedup();
    VirtualizationStats {
        physical_clients: physical.len(),
        virtual_clients: virtual_clients.len(),
        n_vc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::ClassDistribution;
    use crate::synthetic::{generate_dataset, SyntheticConfig};
    use rand::SeedableRng;

    fn dataset_with(counts: Vec<u64>) -> Dataset {
        let cfg = SyntheticConfig::mnist_like();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        generate_dataset(&cfg, &ClassDistribution::from_counts(counts), &mut rng)
    }

    #[test]
    fn large_client_is_split_into_chunks() {
        let ds = dataset_with(vec![30, 30, 0, 0, 0, 0, 0, 0, 0, 0]); // 60 samples
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let vcs = virtualize(&[ds], 20, &mut rng);
        assert_eq!(vcs.len(), 3);
        assert!(vcs.iter().all(|v| v.dataset.len() == 20));
        assert!(vcs.iter().all(|v| v.physical_id == 0));
    }

    #[test]
    fn small_client_duplicates_samples() {
        let ds = dataset_with(vec![3, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let vcs = virtualize(&[ds], 10, &mut rng);
        assert_eq!(vcs.len(), 1);
        assert_eq!(vcs[0].dataset.len(), 10);
        // Only class 0 present, so all labels are 0.
        assert!(vcs[0].dataset.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_clients_are_skipped_and_ids_are_dense() {
        let a = dataset_with(vec![25, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let empty = Dataset::empty(32, 10);
        let b = dataset_with(vec![0, 25, 0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let vcs = virtualize(&[a, empty, b], 20, &mut rng);
        assert_eq!(vcs.len(), 2);
        assert_eq!(vcs[0].id, 0);
        assert_eq!(vcs[1].id, 1);
        assert_eq!(vcs[0].physical_id, 0);
        assert_eq!(vcs[1].physical_id, 2);
    }

    #[test]
    fn virtualisation_preserves_label_distribution_shape() {
        // A client with 90% class 0 and 10% class 1 should produce virtual
        // clients whose pooled distribution is still roughly 90/10.
        let ds = dataset_with(vec![90, 10, 0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let vcs = virtualize(&[ds], 25, &mut rng);
        assert_eq!(vcs.len(), 4);
        let mut pooled = ClassDistribution::empty(10);
        for v in &vcs {
            pooled = pooled.add(&v.dataset.class_distribution());
        }
        let p = pooled.proportions();
        assert!((p[0] - 0.9).abs() < 1e-9);
        assert!((p[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn stats_count_physical_and_virtual() {
        let a = dataset_with(vec![40, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let b = dataset_with(vec![0, 20, 0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let vcs = virtualize(&[a, b], 20, &mut rng);
        let s = stats(&vcs, 20);
        assert_eq!(s.physical_clients, 2);
        assert_eq!(s.virtual_clients, 3);
        assert_eq!(s.n_vc, 20);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_nvc_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let _ = virtualize(&[], 0, &mut rng);
    }
}
