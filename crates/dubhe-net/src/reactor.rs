//! The event-driven coordinator listener: one event-loop thread serving
//! every connection, one router thread owning the coordinator.
//!
//! ## Topology
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!   clients ──TCP──▶ │ event-loop thread                          │
//!                    │   mini_mio::Poll (epoll / poll(2))         │
//!                    │   nonblocking accept                       │
//!                    │   per-conn FrameBuffer (read reassembly)   │
//!                    │   per-conn bounded write queue + flush     │
//!                    └───────┬───────────────────────▲────────────┘
//!                       jobs │ mpsc             mpsc │ replies + Waker
//!                    ┌───────▼───────────────────────┴────────────┐
//!                    │ router thread — sole owner of the          │
//!                    │ Coordinator (no Mutex anywhere)            │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! The event loop does I/O only: it never touches coordinator state, and the
//! router never touches a socket. Decoded requests cross to the router over
//! an mpsc channel; replies come back over a second channel, and the router
//! rings the [`Waker`] so a poll blocked on quiet sockets picks them up
//! immediately. Exactly the actor split of the thread-per-connection
//! [`CoordinatorListener`](dubhe_select::protocol::tcp::CoordinatorListener)
//! — ordering from channel FIFO, exclusivity from ownership — but with all
//! connections multiplexed onto one thread, so 10⁴+ mostly-idle persistent
//! clients cost file descriptors, not stacks.
//!
//! ## Flow control
//!
//! Replies are queued per connection and flushed as the socket accepts them
//! (`WouldBlock` simply parks the remainder until the poller reports the
//! socket writable again). The queue is *bounded*: if a peer stops reading
//! while replies accumulate past [`ReactorConfig::high_water`], the listener
//! records a [`ProtocolError::Backpressure`] disconnect and drops the
//! connection — it never buffers without bound and never blocks the event
//! loop on one slow reader. A peer that stalls *mid-frame* on the read side
//! is cut by [`ReactorConfig::read_timeout`], measured from its last byte of
//! progress — identical semantics to the blocking listener's per-read
//! timeout.
//!
//! ## Authenticated channel
//!
//! Under [`ReactorConfig::channel`] = [`ChannelPolicy::Required`] every
//! connection walks the same pre-protocol state machine as the threaded
//! listener: a `Handshake` phase accepting nothing but `DBHS` frames (fed
//! one payload at a time from readiness events, with the whole prelude
//! under the read timeout so a handshake slow-loris is swept), then an
//! `Established` phase accepting nothing but `DBHE` sealed frames.
//! Plaintext protocol frames are refused as downgrade attempts in both
//! phases, tampered or replayed seals earn typed errors sealed back before
//! the hangup, and the router binds each `ClientId` to the first
//! authenticated identity that speaks for it (session-hijack refusal, with
//! reconnects presenting the same identity sailing through).
//!
//! Because every coordinator fold is commutative (Montgomery-domain
//! ciphertext multiplication), the ledgers this listener produces are
//! bit-identical to the threaded listener's and the in-memory transport's,
//! no matter how arrival order interleaves across connections — pinned by
//! this crate's equivalence tests and `dubhe-fl`'s simulation suite.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dubhe_select::protocol::channel::{ChannelFrame, ChannelPolicy, NodeIdentity, ServerHandshake};
use dubhe_select::protocol::codec::CodecKind;
use dubhe_select::protocol::stats::{ListenerMetrics, ListenerStats};
use dubhe_select::protocol::tcp::claimed_client;
use dubhe_select::protocol::wire::{
    read_frame_lazy, write_frame_limited, LazyMsg, WireMsg, MAX_FRAME_BYTES,
};
use dubhe_select::protocol::Coordinator;
use dubhe_select::{ClientId, ProtocolError};
use mini_mio::{Backend, Events, Interest, Poll, Registry, Token, Waker};

use crate::frames::FrameBuffer;

/// Default mid-frame stall bound, matching the blocking listener.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a poll sleeps when nothing bounds it sooner. Purely a liveness
/// backstop (stop and replies both ring the waker); large enough to cost
/// nothing, small enough that a lost wakeup could never wedge the loop.
const IDLE_POLL_BACKSTOP: Duration = Duration::from_millis(500);

/// Per-readiness read budget: after this many bytes from one socket the
/// loop moves on to the next event (level-triggered polling re-reports the
/// leftover), so one firehose connection cannot starve the rest.
const READ_BUDGET: usize = 256 * 1024;

/// Knobs for the reactor listener, builder-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Mid-frame read timeout, measured from a connection's last byte of
    /// progress on an incomplete frame.
    pub read_timeout: Duration,
    /// Largest frame payload accepted or produced.
    pub max_frame_bytes: usize,
    /// Per-connection write-queue bound, in bytes: a queue past this mark
    /// means the peer stopped reading, and the connection is dropped with a
    /// [`ProtocolError::Backpressure`]. Defaults to `2 × max_frame_bytes`,
    /// so no single in-flight reply can trip it on its own.
    pub high_water: usize,
    /// Addresses to listen on. Several loopback aliases (`127.0.0.2`, …)
    /// spread very large client counts across source-port spaces; one
    /// `127.0.0.1:0` entry is the default.
    pub listen_addrs: Vec<SocketAddr>,
    /// Readiness backend; `None` picks the platform default (epoll on
    /// Linux, `poll(2)` elsewhere).
    pub backend: Option<Backend>,
    /// Events drained per poll call (level-triggered polling re-reports
    /// whatever does not fit).
    pub events_capacity: usize,
    /// Whether connections must run the authenticated-channel handshake
    /// before any protocol frame is accepted. Under
    /// [`ChannelPolicy::Required`] every connection starts in a
    /// pre-protocol phase speaking nothing but `DBHS` frames; after mutual
    /// authentication completes, nothing but `DBHE` sealed frames — the
    /// same state machine as the thread-per-connection listener.
    pub channel: ChannelPolicy,
    /// The listener's static X25519 identity secret under a `Required`
    /// policy; `None` generates a fresh identity at spawn (readable via
    /// [`ReactorListener::public_identity`] so clients can pin it).
    pub identity: Option<[u8; 32]>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_frame_bytes: MAX_FRAME_BYTES,
            high_water: 2 * MAX_FRAME_BYTES,
            listen_addrs: vec![SocketAddr::from(([127, 0, 0, 1], 0))],
            backend: None,
            events_capacity: 1024,
            channel: ChannelPolicy::Plaintext,
            identity: None,
        }
    }
}

impl ReactorConfig {
    /// Replaces the mid-frame read timeout.
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Replaces the frame-payload ceiling and scales the default high-water
    /// mark with it (call [`with_high_water`](Self::with_high_water) *after*
    /// this to pin an explicit bound).
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self.high_water = 2 * max_frame_bytes;
        self
    }

    /// Replaces the per-connection write-queue bound.
    pub fn with_high_water(mut self, high_water: usize) -> Self {
        self.high_water = high_water;
        self
    }

    /// Replaces the listen addresses.
    pub fn with_listen_addrs(mut self, listen_addrs: Vec<SocketAddr>) -> Self {
        self.listen_addrs = listen_addrs;
        self
    }

    /// Pins a specific readiness backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Replaces the channel policy.
    pub fn with_channel(mut self, channel: ChannelPolicy) -> Self {
        self.channel = channel;
        self
    }

    /// Pins the listener's static channel identity to a deterministic
    /// secret derived from `seed`.
    pub fn with_identity_seed(mut self, seed: u64) -> Self {
        self.identity = Some(dubhe_select::protocol::channel::secret_bytes_from_seed(
            seed,
        ));
        self
    }

    /// Pins the listener's static channel identity (the X25519 secret).
    pub fn with_identity_bytes(mut self, secret: [u8; 32]) -> Self {
        self.identity = Some(secret);
        self
    }
}

/// A decoded (or deferred — see [`LazyMsg`]) request crossing from the
/// event loop to the router.
struct Job {
    token: usize,
    msg: LazyMsg,
    codec: CodecKind,
    /// The authenticated channel identity of the connection this request
    /// arrived on, when it ran the handshake — what the router's
    /// session-hijack binding keys on.
    identity: Option<[u8; 32]>,
    started: Instant,
}

/// The router's answer crossing back to the event loop.
struct Reply {
    token: usize,
    msg: WireMsg,
    codec: CodecKind,
    started: Instant,
}

/// The event-driven multiplexed coordinator listener. Serves the same wire
/// protocol as the thread-per-connection listener — same frames, same codec
/// negotiation, same typed errors — from a single event-loop thread.
#[derive(Debug)]
pub struct ReactorListener<C: Coordinator + Send + 'static> {
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    metrics: Arc<ListenerMetrics>,
    event_thread: Option<JoinHandle<()>>,
    router_thread: Option<JoinHandle<C>>,
    /// The listener's public channel identity, when it requires the
    /// authenticated channel — what clients pin.
    public_identity: Option<[u8; 32]>,
}

impl<C: Coordinator + Send + 'static> ReactorListener<C> {
    /// Binds an ephemeral loopback port and starts serving `coordinator`
    /// with the [`ReactorConfig`] defaults.
    pub fn spawn(coordinator: C) -> Result<Self, ProtocolError> {
        ReactorListener::spawn_with(coordinator, ReactorConfig::default())
    }

    /// [`spawn`](Self::spawn) with every knob spelled out.
    pub fn spawn_with(coordinator: C, config: ReactorConfig) -> Result<Self, ProtocolError> {
        let io_err = |context: &'static str| {
            move |e: std::io::Error| ProtocolError::Io {
                context,
                detail: e.to_string(),
            }
        };
        let mut listeners = Vec::with_capacity(config.listen_addrs.len());
        let mut addrs = Vec::with_capacity(config.listen_addrs.len());
        for addr in &config.listen_addrs {
            let listener = TcpListener::bind(addr).map_err(io_err("bind"))?;
            listener.set_nonblocking(true).map_err(io_err("bind"))?;
            addrs.push(listener.local_addr().map_err(io_err("bind"))?);
            listeners.push(listener);
        }
        let poll = match config.backend {
            Some(backend) => Poll::with_backend(backend),
            None => Poll::new(),
        }
        .map_err(io_err("create poller"))?;
        let registry = poll.registry();
        for (i, listener) in listeners.iter().enumerate() {
            registry
                .register(listener, Token(i), Interest::READABLE)
                .map_err(io_err("register listener"))?;
        }
        let waker_token = listeners.len();
        let waker =
            Arc::new(Waker::new(&registry, Token(waker_token)).map_err(io_err("create waker"))?);

        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ListenerMetrics::new());
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();

        // Resolve the channel identity once at spawn so every connection
        // handshakes as the same server (and so clients can pin it).
        let identity = config.channel.is_required().then(|| match config.identity {
            Some(bytes) => NodeIdentity::from_secret_bytes(bytes),
            None => NodeIdentity::generate(),
        });
        let public_identity = identity.as_ref().map(|id| id.public_bytes());

        let router_waker = Arc::clone(&waker);
        let router_thread =
            std::thread::spawn(move || route_jobs(coordinator, job_rx, reply_tx, router_waker));

        let mut event_loop = EventLoop {
            poll,
            registry,
            events: Events::with_capacity(config.events_capacity),
            listeners,
            waker: Arc::clone(&waker),
            waker_token,
            conns: HashMap::new(),
            next_token: waker_token + 1,
            job_tx,
            reply_rx,
            stop: Arc::clone(&stop),
            metrics: Arc::clone(&metrics),
            identity,
            config,
        };
        let event_thread = std::thread::spawn(move || event_loop.run());

        Ok(ReactorListener {
            addrs,
            stop,
            waker,
            metrics,
            event_thread: Some(event_thread),
            router_thread: Some(router_thread),
            public_identity,
        })
    }

    /// The first (often only) address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addrs[0]
    }

    /// Every bound address, in [`ReactorConfig::listen_addrs`] order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The listener's public channel identity under
    /// [`ChannelPolicy::Required`] — what clients pin; `None` when the
    /// listener serves plaintext.
    pub fn public_identity(&self) -> Option<[u8; 32]> {
        self.public_identity
    }

    /// A point-in-time [`ListenerStats`] snapshot — the same shape the
    /// threaded listener reports, for like-for-like comparison.
    pub fn stats(&self) -> ListenerStats {
        self.metrics.snapshot()
    }

    /// Stops the event loop, drains the router and returns the final
    /// coordinator state.
    pub fn shutdown(mut self) -> Option<C> {
        self.stop_threads()
    }

    fn stop_threads(&mut self) -> Option<C> {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
        // The event thread owned the only job Sender; with it gone the
        // router drains its queue and returns the coordinator.
        self.router_thread.take().and_then(|t| t.join().ok())
    }
}

impl<C: Coordinator + Send + 'static> Drop for ReactorListener<C> {
    fn drop(&mut self) {
        if self.event_thread.is_some() {
            let _ = self.stop_threads();
        }
    }
}

/// The router thread: the sole owner of the coordinator. Identical message
/// semantics to the threaded listener's router; bursts of queued jobs are
/// answered with a single waker ring.
fn route_jobs<C: Coordinator>(
    mut coordinator: C,
    rx: mpsc::Receiver<Job>,
    tx: mpsc::Sender<Reply>,
    waker: Arc<Waker>,
) -> C {
    // Session-hijack refusal, identical to the threaded listener's router:
    // the first authenticated identity to speak as a ClientId owns that id
    // for the listener's lifetime. A different channel identity reusing the
    // id gets a typed refusal before the coordinator ever sees the message;
    // reconnects present the same identity and sail through.
    let mut bindings: HashMap<ClientId, [u8; 32]> = HashMap::new();
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        while jobs.len() < 1024 {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        for job in jobs {
            let Job {
                token,
                msg,
                codec,
                identity,
                started,
            } = job;
            let hijacked = match (claimed_client(&msg), identity) {
                (Some(id), Some(who)) => match bindings.get(&id) {
                    Some(bound) if *bound != who => Some(id),
                    _ => {
                        bindings.insert(id, who);
                        None
                    }
                },
                _ => None,
            };
            let msg = match hijacked {
                Some(id) => WireMsg::Error {
                    detail: ProtocolError::AuthFailure {
                        detail: format!(
                            "client {id} is bound to a different channel identity \
                             (session hijack refused)"
                        ),
                    }
                    .to_string(),
                },
                None => route_msg(&mut coordinator, msg),
            };
            if tx
                .send(Reply {
                    token,
                    msg,
                    codec,
                    started,
                })
                .is_err()
            {
                return coordinator;
            }
        }
        let _ = waker.wake();
    }
    coordinator
}

/// Maps one request onto the [`Coordinator`] trait — the same dispatch the
/// threaded listener performs, so both backends answer identically.
fn route_msg<C: Coordinator>(coordinator: &mut C, msg: LazyMsg) -> WireMsg {
    let batch_or_error = |r: Result<Vec<dubhe_select::protocol::Envelope>, ProtocolError>| match r {
        Ok(envelopes) => WireMsg::Batch { envelopes },
        Err(e) => WireMsg::Error {
            detail: e.to_string(),
        },
    };
    let ack_or_error = |r: Result<(), ProtocolError>| match r {
        Ok(()) => WireMsg::Ack,
        Err(e) => WireMsg::Error {
            detail: e.to_string(),
        },
    };
    let msg = match msg {
        // Registry uploads arrive undecoded: the fold reads ciphertext
        // residues straight out of the frame payload.
        LazyMsg::DeferredRegistry(frame) => {
            return batch_or_error(coordinator.deliver_registry_frame(frame));
        }
        LazyMsg::Eager(msg) => msg,
    };
    match msg {
        WireMsg::Envelope { envelope } => batch_or_error(coordinator.deliver(envelope)),
        WireMsg::AnnounceTry {
            try_index,
            participants,
        } => ack_or_error(coordinator.announce_try(try_index, &participants)),
        WireMsg::BeginEpoch {
            epoch,
            expected_registrations,
        } => ack_or_error(coordinator.begin_epoch(epoch, expected_registrations)),
        WireMsg::CloseRegistration => batch_or_error(coordinator.close_registration()),
        WireMsg::CloseTry { try_index } => batch_or_error(coordinator.close_try(try_index)),
        other => WireMsg::Error {
            detail: format!("coordinator cannot serve {other:?}"),
        },
    }
}

/// One reply frame sitting (possibly partially) in a connection's write
/// queue, tracked by its end offset in the connection's cumulative output
/// stream so completion can be detected after any number of partial writes.
struct PendingSend {
    /// Cumulative stream offset at which this frame ends.
    end: u64,
    /// Decode instant of the request this answers (`None` for listener-
    /// originated error frames, which have no request latency).
    started: Option<Instant>,
    /// Frame size on the wire.
    bytes: usize,
}

/// Which language a connection currently speaks — the pre-protocol state
/// machine of the authenticated channel. Plaintext-policy listeners never
/// leave [`ConnPhase::Plaintext`]; `Required` listeners walk
/// `Handshake → Established` and refuse everything off-phase.
enum ConnPhase {
    /// Ordinary protocol frames (`DBH1`/`DBH2`/`DBHZ`), no channel.
    Plaintext,
    /// Pre-protocol: nothing but `DBHS` handshake frames is accepted.
    Handshake(ServerHandshake),
    /// Mutually authenticated: nothing but `DBHE` sealed frames is.
    Established(dubhe_select::protocol::channel::SecureChannel),
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Channel phase; see [`ConnPhase`].
    phase: ConnPhase,
    /// The peer's authenticated identity once the handshake completes.
    peer: Option<[u8; 32]>,
    /// Encoded-but-unwritten reply bytes; `out[out_pos..]` is pending.
    out: Vec<u8>,
    out_pos: usize,
    /// Cumulative bytes ever queued / ever flushed to the socket.
    queued_total: u64,
    sent_total: u64,
    pending_sends: VecDeque<PendingSend>,
    /// Codec of the most recent decoded frame; error frames sent before any
    /// frame decoded default to DBH1.
    codec: CodecKind,
    /// Set while an incomplete frame sits in `frames`; pushed forward on
    /// every byte of progress, enforced by the sweep in the event loop.
    frame_deadline: Option<Instant>,
    /// Flush what is queued, then close (shutdown frames, decode errors).
    closing: bool,
    /// Whether the current registration includes WRITABLE.
    wants_write: bool,
}

/// Why the event loop dropped a connection — decides which failure counter
/// the close records.
enum CloseReason {
    /// Clean close or shutdown frame: no failure to count.
    Clean,
    /// Peer vanished or stalled mid-frame.
    Truncated,
    /// Write queue crossed the high-water mark.
    Backpressure,
}

struct EventLoop {
    poll: Poll,
    registry: Registry,
    events: Events,
    listeners: Vec<TcpListener>,
    waker: Arc<Waker>,
    waker_token: usize,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    job_tx: mpsc::Sender<Job>,
    reply_rx: mpsc::Receiver<Reply>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ListenerMetrics>,
    /// The resolved server identity under a `Required` channel policy;
    /// every accepted connection handshakes against a clone of it.
    identity: Option<NodeIdentity>,
    config: ReactorConfig,
}

impl EventLoop {
    fn run(&mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = self.next_timeout();
            if let Err(e) = self.poll.poll(&mut self.events, Some(timeout)) {
                eprintln!("reactor listener: poll failed, shutting down: {e}");
                break;
            }
            // Events are copied out so handlers can borrow `self` freely.
            let batch: Vec<mini_mio::Event> = self.events.iter().copied().collect();
            for event in batch {
                let token = event.token().0;
                if token < self.listeners.len() {
                    self.accept_all(token);
                } else if token == self.waker_token {
                    self.waker.drain();
                    self.drain_replies();
                } else {
                    if event.is_readable() || event.is_hup() || event.is_error() {
                        self.handle_read(token);
                    }
                    if event.is_writable() {
                        self.handle_write(token);
                    }
                }
            }
            // Replies may have landed while the loop was busy with sockets;
            // drain opportunistically rather than waiting for the next ring.
            self.drain_replies();
            self.sweep_stalled();
        }
        // Count every still-open connection as closed so a final stats
        // snapshot balances.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token, CloseReason::Clean);
        }
    }

    /// Sleep until the nearest mid-frame deadline, else the idle backstop.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        self.conns
            .values()
            .filter_map(|c| c.frame_deadline)
            .map(|d| {
                d.saturating_duration_since(now)
                    .max(Duration::from_millis(1))
            })
            .min()
            .unwrap_or(IDLE_POLL_BACKSTOP)
            .min(IDLE_POLL_BACKSTOP)
    }

    fn accept_all(&mut self, listener_idx: usize) {
        loop {
            match self.listeners[listener_idx].accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if let Err(e) =
                        self.registry
                            .register(&stream, Token(token), Interest::READABLE)
                    {
                        eprintln!("reactor listener: register failed, refusing connection: {e}");
                        continue;
                    }
                    // Under a `Required` policy the connection starts in the
                    // handshake phase with the whole prelude under the read
                    // timeout — a peer that connects and then trickles or
                    // stays silent (handshake slow-loris) is swept, never
                    // parked.
                    let (phase, frame_deadline) = match &self.identity {
                        Some(id) => (
                            ConnPhase::Handshake(ServerHandshake::new(id.clone())),
                            Some(Instant::now() + self.config.read_timeout),
                        ),
                        None => (ConnPhase::Plaintext, None),
                    };
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            frames: FrameBuffer::new(),
                            phase,
                            peer: None,
                            out: Vec::new(),
                            out_pos: 0,
                            queued_total: 0,
                            sent_total: 0,
                            pending_sends: VecDeque::new(),
                            codec: CodecKind::Json,
                            frame_deadline,
                            closing: false,
                            wants_write: false,
                        },
                    );
                    self.metrics.connection_opened();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("coordinator listener: accept failed, continuing: {e}");
                    break;
                }
            }
        }
    }

    fn handle_read(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        let mut budget = READ_BUDGET;
        let mut eof = false;
        let mut progressed = false;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.frames.extend(&chunk[..n]);
                    progressed = true;
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break; // level-triggered poll re-reports the rest
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        self.parse_frames(token, progressed);
        if eof {
            let reason = if self
                .conns
                .get(&token)
                .is_some_and(|c| c.frames.is_mid_frame())
            {
                CloseReason::Truncated
            } else {
                CloseReason::Clean
            };
            self.close_conn(token, reason);
        }
    }

    /// Pulls every complete frame out of a connection's buffer and ships it
    /// to the router; maintains the mid-frame stall deadline. Dispatches on
    /// the connection's channel phase: plaintext connections pull protocol
    /// frames directly, handshake-phase connections feed the server
    /// handshake state machine, established connections unseal `DBHE`
    /// frames first — each phase refusing the other phases' traffic with
    /// the same typed errors the threaded listener produces.
    fn parse_frames(&mut self, token: usize, progressed: bool) {
        loop {
            let again = match self.conns.get_mut(&token) {
                None => return,
                Some(conn) if conn.closing => return,
                Some(conn) => match conn.phase {
                    ConnPhase::Plaintext => self.step_plaintext(token, progressed),
                    ConnPhase::Handshake(_) => self.step_handshake(token, progressed),
                    ConnPhase::Established(_) => self.step_established(token, progressed),
                },
            };
            if !again {
                return;
            }
        }
    }

    /// One plaintext-phase pull: protocol frames straight off the buffer.
    fn step_plaintext(&mut self, token: usize, progressed: bool) -> bool {
        let max = self.config.max_frame_bytes;
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        match conn.frames.next_frame_lazy(max) {
            Ok(Some((LazyMsg::Eager(WireMsg::Shutdown), bytes, _))) => {
                self.metrics.frame_received(bytes);
                conn.closing = true;
                if conn.out.len() == conn.out_pos {
                    self.close_conn(token, CloseReason::Clean);
                }
                false
            }
            Ok(Some((msg, bytes, codec))) => {
                self.metrics.frame_received(bytes);
                conn.codec = codec;
                let identity = conn.peer;
                if self
                    .job_tx
                    .send(Job {
                        token,
                        msg,
                        codec,
                        identity,
                        started: Instant::now(),
                    })
                    .is_err()
                {
                    // Router gone: the listener is shutting down.
                    self.close_conn(token, CloseReason::Clean);
                    return false;
                }
                true
            }
            Ok(None) => {
                self.update_deadline(token, progressed);
                false
            }
            Err(e) => {
                // Framing is lost: report in the last good codec, flush,
                // hang up — the blocking listener's exact contract.
                self.metrics.decode_error();
                let codec = conn.codec;
                conn.closing = true;
                conn.frame_deadline = None;
                self.queue_frame(
                    token,
                    &WireMsg::Error {
                        detail: e.to_string(),
                    },
                    codec,
                    None,
                );
                false
            }
        }
    }

    /// One handshake-phase pull: nothing but `DBHS` frames is legal.
    /// Plaintext protocol frames are refused as downgrade attempts, sealed
    /// frames as out-of-phase; the M2 reply rides the ordinary write queue.
    fn step_handshake(&mut self, token: usize, progressed: bool) -> bool {
        let max = self.config.max_frame_bytes;
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        match conn.frames.next_channel_frame(max) {
            Ok(Some((ChannelFrame::Handshake(payload), _))) => {
                let ConnPhase::Handshake(hs) = &mut conn.phase else {
                    return false;
                };
                match hs.on_payload(&payload) {
                    Ok(step) => {
                        if let Some(channel) = step.established {
                            conn.peer = Some(channel.peer_identity());
                            conn.phase = ConnPhase::Established(channel);
                            conn.frame_deadline = None;
                            self.metrics.handshake_completed();
                        }
                        if let Some(reply) = step.reply {
                            self.queue_bytes(token, &reply);
                        }
                        true
                    }
                    Err(e) => {
                        self.fail_handshake(token, &e);
                        false
                    }
                }
            }
            Ok(Some((ChannelFrame::Plaintext { frame, .. }, _))) => {
                self.metrics.downgrade_refused();
                let e = ProtocolError::DowngradeRefused {
                    magic: frame[..4].try_into().expect("4-byte magic"),
                };
                self.fail_handshake(token, &e);
                false
            }
            Ok(Some((ChannelFrame::Sealed(_), _))) => {
                let e = ProtocolError::AuthFailure {
                    detail: "sealed frame before the handshake finished".to_string(),
                };
                self.fail_handshake(token, &e);
                false
            }
            Ok(None) => {
                self.update_deadline(token, progressed);
                false
            }
            Err(e) => {
                self.fail_handshake(token, &e);
                false
            }
        }
    }

    /// One established-phase pull: unseal a `DBHE` frame, parse exactly one
    /// inner protocol frame out of it, ship it to the router. Tampered or
    /// replayed seals, plaintext downgrades and stray handshake frames all
    /// earn typed errors sealed back to the peer (the send direction
    /// survives a receive failure), then a hangup.
    fn step_established(&mut self, token: usize, progressed: bool) -> bool {
        let max = self.config.max_frame_bytes;
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        match conn.frames.next_channel_frame(max) {
            Ok(Some((ChannelFrame::Sealed(payload), wire_bytes))) => {
                let ConnPhase::Established(channel) = &mut conn.phase else {
                    return false;
                };
                let inner = match channel.open_payload(&payload) {
                    Ok(inner) => inner,
                    Err(e) => {
                        // Tampered ciphertext or replayed/reordered
                        // sequence: the receive direction is dead, the
                        // connection with it.
                        self.metrics.aead_rejection();
                        self.fail_established(token, &e);
                        return false;
                    }
                };
                match read_frame_lazy(&mut &inner[..], max) {
                    Ok((LazyMsg::Eager(WireMsg::Shutdown), _, _)) => {
                        self.metrics.frame_received(wire_bytes);
                        conn.closing = true;
                        if conn.out.len() == conn.out_pos {
                            self.close_conn(token, CloseReason::Clean);
                        }
                        false
                    }
                    Ok((msg, _, codec)) => {
                        self.metrics.frame_received(wire_bytes);
                        conn.codec = codec;
                        let identity = conn.peer;
                        if self
                            .job_tx
                            .send(Job {
                                token,
                                msg,
                                codec,
                                identity,
                                started: Instant::now(),
                            })
                            .is_err()
                        {
                            self.close_conn(token, CloseReason::Clean);
                            return false;
                        }
                        true
                    }
                    Err(e) => {
                        self.metrics.decode_error();
                        self.fail_established(token, &e);
                        false
                    }
                }
            }
            Ok(Some((ChannelFrame::Plaintext { frame, .. }, _))) => {
                // A plaintext protocol frame mid-session is a downgrade
                // attempt (or an unauthenticated splice); refused.
                self.metrics.downgrade_refused();
                let e = ProtocolError::DowngradeRefused {
                    magic: frame[..4].try_into().expect("4-byte magic"),
                };
                self.fail_established(token, &e);
                false
            }
            Ok(Some((ChannelFrame::Handshake(_), _))) => {
                self.metrics.decode_error();
                let e = ProtocolError::AuthFailure {
                    detail: "handshake frame after the channel was established".to_string(),
                };
                self.fail_established(token, &e);
                false
            }
            Ok(None) => {
                self.update_deadline(token, progressed);
                false
            }
            Err(e) => {
                match e {
                    ProtocolError::TruncatedFrame { .. } | ProtocolError::Io { .. } => {
                        self.metrics.truncated_frame()
                    }
                    _ => self.metrics.decode_error(),
                }
                self.fail_established(token, &e);
                false
            }
        }
    }

    /// Maintains the stall deadline after a pull came up short. A
    /// handshake-phase connection keeps a deadline even with an empty
    /// buffer — the whole prelude runs under the read timeout, exactly like
    /// the threaded listener's blocking prelude.
    fn update_deadline(&mut self, token: usize, progressed: bool) {
        let read_timeout = self.config.read_timeout;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.frames.is_mid_frame() || matches!(conn.phase, ConnPhase::Handshake(_)) {
            if progressed || conn.frame_deadline.is_none() {
                conn.frame_deadline = Some(Instant::now() + read_timeout);
            }
        } else {
            conn.frame_deadline = None;
        }
    }

    /// Terminal handshake failure: count it, tell the peer in plaintext
    /// (there is no channel to seal with — refusals go back in the
    /// attempted codec when there was one, lowest-common DBH1 otherwise),
    /// hang up once the reply drains.
    fn fail_handshake(&mut self, token: usize, e: &ProtocolError) {
        self.metrics.handshake_failed();
        let reply_codec = match e {
            ProtocolError::DowngradeRefused { magic } => {
                CodecKind::from_magic(*magic).unwrap_or(CodecKind::Json)
            }
            _ => CodecKind::Json,
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Leave the handshake phase so the close does not count the failure
        // a second time.
        conn.phase = ConnPhase::Plaintext;
        conn.closing = true;
        conn.frame_deadline = None;
        conn.codec = reply_codec;
        self.queue_frame(
            token,
            &WireMsg::Error {
                detail: e.to_string(),
            },
            reply_codec,
            None,
        );
    }

    /// Terminal failure on an established channel: the typed error is
    /// sealed back (via the ordinary write queue, which seals in this
    /// phase), then the connection closes once it drains.
    fn fail_established(&mut self, token: usize, e: &ProtocolError) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.closing = true;
        conn.frame_deadline = None;
        let codec = conn.codec;
        self.queue_frame(
            token,
            &WireMsg::Error {
                detail: e.to_string(),
            },
            codec,
            None,
        );
    }

    /// Appends pre-encoded bytes (handshake replies) to a connection's
    /// write queue. They advance the cumulative offsets but carry no
    /// [`PendingSend`] entry: handshake traffic is not a protocol frame and
    /// is not counted as one — same accounting as the threaded listener.
    fn queue_bytes(&mut self, token: usize, bytes: &[u8]) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.out.extend_from_slice(bytes);
        conn.queued_total += bytes.len() as u64;
        self.flush_conn(token);
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let queued = conn.out.len() - conn.out_pos;
        self.metrics.write_queue_depth(queued);
        if queued > self.config.high_water {
            let err = ProtocolError::Backpressure {
                queued,
                high_water: self.config.high_water,
            };
            eprintln!("reactor listener: {err}");
            self.close_conn(token, CloseReason::Backpressure);
        }
    }

    /// Encodes a frame into a connection's write queue, flushes what the
    /// socket will take, and enforces the high-water mark. On an
    /// established channel the encoded frame is sealed into a `DBHE` frame
    /// first; metrics count the sealed bytes, exactly like the threaded
    /// listener's sealed reply path.
    fn queue_frame(
        &mut self,
        token: usize,
        msg: &WireMsg,
        codec: CodecKind,
        started: Option<Instant>,
    ) {
        let max = self.config.max_frame_bytes;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let written = if let ConnPhase::Established(channel) = &mut conn.phase {
            let mut inner = Vec::new();
            write_frame_limited(&mut inner, msg, codec, max).map(|_| {
                let sealed = channel.seal_frame(&inner);
                conn.out.extend_from_slice(&sealed);
                sealed.len()
            })
        } else {
            write_frame_limited(&mut conn.out, msg, codec, max)
        };
        match written {
            Ok(written) => {
                conn.queued_total += written as u64;
                conn.pending_sends.push_back(PendingSend {
                    end: conn.queued_total,
                    started,
                    bytes: written,
                });
            }
            Err(e) => {
                // An unencodable reply is a server-side bug surfaced safely:
                // drop the connection rather than desync its framing.
                eprintln!("reactor listener: failed to encode reply, closing connection: {e}");
                self.close_conn(token, CloseReason::Clean);
                return;
            }
        }
        self.flush_conn(token);
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let queued = conn.out.len() - conn.out_pos;
        self.metrics.write_queue_depth(queued);
        if queued > self.config.high_water {
            let err = ProtocolError::Backpressure {
                queued,
                high_water: self.config.high_water,
            };
            eprintln!("reactor listener: {err}");
            self.close_conn(token, CloseReason::Backpressure);
        }
    }

    fn handle_write(&mut self, token: usize) {
        self.flush_conn(token);
    }

    /// Writes as much queued output as the socket accepts, records completed
    /// frames, keeps WRITABLE interest only while bytes remain, and finishes
    /// a pending close once the queue drains.
    fn flush_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        loop {
            let pending = &conn.out[conn.out_pos..];
            if pending.is_empty() {
                break;
            }
            match conn.stream.write(pending) {
                Ok(0) => break,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.sent_total += n as u64;
                    while conn
                        .pending_sends
                        .front()
                        .is_some_and(|p| p.end <= conn.sent_total)
                    {
                        let done = conn.pending_sends.pop_front().expect("front checked");
                        self.metrics.frame_sent(done.bytes);
                        if let Some(started) = done.started {
                            self.metrics.record_latency(started.elapsed());
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token, CloseReason::Truncated);
                    return;
                }
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos > 64 * 1024 {
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        let drained = conn.out.is_empty();
        if drained && conn.closing {
            self.close_conn(token, CloseReason::Clean);
            return;
        }
        self.set_write_interest(token, !drained);
    }

    fn set_write_interest(&mut self, token: usize, want_write: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.wants_write == want_write {
            return;
        }
        let interest = if want_write {
            Interest::BOTH
        } else {
            Interest::READABLE
        };
        if self
            .registry
            .reregister(&conn.stream, Token(token), interest)
            .is_ok()
        {
            conn.wants_write = want_write;
        }
    }

    fn drain_replies(&mut self) {
        while let Ok(reply) = self.reply_rx.try_recv() {
            // The connection may have died while its request was at the
            // router; its reply is simply dropped.
            if self.conns.contains_key(&reply.token) {
                self.queue_frame(reply.token, &reply.msg, reply.codec, Some(reply.started));
            }
        }
    }

    /// Cuts connections that stalled mid-frame past the read timeout,
    /// telling the peer why first (best-effort, one nonblocking write) —
    /// the same courtesy the blocking listener extends before hanging up.
    fn sweep_stalled(&mut self) {
        let now = Instant::now();
        let stalled: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.frame_deadline.is_some_and(|d| d <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in stalled {
            if let Some(conn) = self.conns.get_mut(&token) {
                let detail = if matches!(conn.phase, ConnPhase::Handshake(_)) {
                    format!(
                        "handshake stalled past the {:?} read timeout",
                        self.config.read_timeout
                    )
                } else {
                    format!(
                        "transport I/O failed while trying to read frame: \
                         stalled mid-frame past the {:?} read timeout",
                        self.config.read_timeout
                    )
                };
                let notice = WireMsg::Error { detail };
                let mut buf = Vec::new();
                if write_frame_limited(&mut buf, &notice, conn.codec, self.config.max_frame_bytes)
                    .is_ok()
                {
                    // An established peer only accepts sealed frames; the
                    // courtesy notice must arrive in one it can open.
                    let bytes = match &mut conn.phase {
                        ConnPhase::Established(channel) => channel.seal_frame(&buf),
                        _ => buf,
                    };
                    let _ = conn.stream.write(&bytes);
                }
            }
            self.close_conn(token, CloseReason::Truncated);
        }
    }

    fn close_conn(&mut self, token: usize, reason: CloseReason) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.registry.deregister(&conn.stream);
        // A connection that dies before mutual authentication completes is
        // a failed handshake, whatever killed it — the same accounting the
        // threaded prelude's error path produces.
        if matches!(conn.phase, ConnPhase::Handshake(_)) {
            self.metrics.handshake_failed();
        }
        match reason {
            CloseReason::Clean => {}
            CloseReason::Truncated => self.metrics.truncated_frame(),
            CloseReason::Backpressure => self.metrics.backpressure_disconnect(),
        }
        self.metrics.connection_closed();
    }
}
