//! # dubhe-net — the event-driven coordinator network layer
//!
//! The thread-per-connection [`CoordinatorListener`] in `dubhe-select` is
//! honest and simple, but a selection epoch at production scale means
//! 10⁴–10⁵ *mostly idle* persistent client connections — far beyond what a
//! thread per socket can carry. This crate adds the second deployment shape
//! the roadmap calls for: one event-loop thread multiplexing every
//! connection through a readiness poller ([`mini_mio`], the vendored
//! epoll/poll(2) stand-in), with protocol work routed to the coordinator on
//! a separate router thread.
//!
//! * [`ReactorListener`] — the server: non-blocking accept, per-connection
//!   incremental DBH1/DBH2 frame reassembly, bounded write queues with
//!   `WouldBlock`-driven flow control and a typed
//!   [`Backpressure`](dubhe_select::ProtocolError::Backpressure) disconnect
//!   past the high-water mark, and a [`ListenerStats`] snapshot shared with
//!   the threaded listener so benches compare like-for-like.
//! * [`MuxClient`] — the load-generation side: many persistent client
//!   connections multiplexed through the same poller from a single thread,
//!   used by `dubhe-bench`'s `load_gen` to drive 10⁴+ concurrent clients.
//!
//! Wire format, codec negotiation, message types and coordinator semantics
//! all come from `dubhe-select`; this crate only changes *how sockets are
//! waited on*, which is why the ledgers it produces are bit-identical to the
//! threaded listener and the in-memory transport (the running folds are
//! commutative, so arrival order cannot matter).
//!
//! [`CoordinatorListener`]: dubhe_select::protocol::tcp::CoordinatorListener
//! [`ListenerStats`]: dubhe_select::protocol::stats::ListenerStats

pub mod frames;
pub mod mux;
pub mod reactor;

pub use frames::FrameBuffer;
pub use mux::{MuxClient, MuxConfig};
pub use reactor::{ReactorConfig, ReactorListener};
