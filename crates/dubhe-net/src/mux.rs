//! The load-generation side: many persistent client connections multiplexed
//! through one poller from a single thread.
//!
//! A thread-per-client load generator tops out three orders of magnitude
//! below the listener it is supposed to stress. [`MuxClient`] holds 10⁴+
//! nonblocking connections in one flat table, queues request frames onto
//! any subset of them, and drives a poll loop until every expected reply
//! has arrived — recording one end-to-end latency sample (request queued →
//! reply decoded) per exchange into a
//! [`dubhe_select::protocol::stats::LatencyHistogram`].
//!
//! The protocol invariant that makes the phase API this simple: every
//! request frame earns exactly one reply frame, and replies on one
//! connection come back in request order (the listener's router is FIFO).
//! So a phase is "send N frames, collect N frames", with per-connection
//! FIFO matching — no request ids on the wire.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dubhe_select::protocol::channel::{
    client_handshake, secret_bytes_from_seed, ChannelFrame, ChannelPolicy, NodeIdentity,
    RetrySchedule, SecureChannel,
};
use dubhe_select::protocol::codec::CodecKind;
use dubhe_select::protocol::stats::{LatencyHistogram, LatencySummary};
use dubhe_select::protocol::wire::{
    read_frame_limited, write_frame_limited, WireMsg, MAX_FRAME_BYTES,
};
use dubhe_select::ProtocolError;
use mini_mio::{Backend, Events, Interest, Poll, Registry, Token};

use crate::frames::FrameBuffer;

fn io_error(context: &'static str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Io {
        context,
        detail: e.to_string(),
    }
}

/// Knobs for the client-side multiplexer, builder-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxConfig {
    /// Payload codec requests are framed in.
    pub codec: CodecKind,
    /// Largest frame payload accepted or produced (the registration-total
    /// broadcast batch grows with the client count — size accordingly).
    pub max_frame_bytes: usize,
    /// Overall deadline for one [`MuxClient::collect`] phase; a silent or
    /// wedged server surfaces as a typed error, never a hang.
    pub exchange_timeout: Duration,
    /// Readiness backend; `None` picks the platform default.
    pub backend: Option<Backend>,
    /// Whether every connection runs the authenticated-channel handshake
    /// before its socket turns nonblocking. Under
    /// [`ChannelPolicy::Required`] all traffic travels in `DBHE` sealed
    /// frames; connection `i` handshakes with a deterministic identity
    /// derived from [`identity_seed`](Self::identity_seed)` + i`.
    pub channel: ChannelPolicy,
    /// Base seed of the per-connection client identities (connection `i`
    /// derives its X25519 secret from `identity_seed + i`), so the
    /// session-hijack binding sees synthetic client `i` speak with the
    /// same identity on every run.
    pub identity_seed: u64,
    /// Pins the server's public channel identity; `None` trusts first use.
    pub expected_server: Option<[u8; 32]>,
    /// Dial + handshake attempts per connection before giving up (≥ 1).
    /// Transient failures retry under bounded exponential backoff with
    /// deterministic jitter; exhaustion surfaces
    /// [`ProtocolError::RetriesExhausted`].
    pub connect_attempts: usize,
    /// Base delay of the retry backoff (attempt `i` sleeps
    /// `retry_base · 2^i` plus jitter).
    pub retry_base: Duration,
    /// Seed of the deterministic retry jitter (XORed with the connection
    /// index so a thundering herd still spreads out).
    pub retry_seed: u64,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            codec: CodecKind::Json,
            max_frame_bytes: MAX_FRAME_BYTES,
            exchange_timeout: Duration::from_secs(120),
            backend: None,
            channel: ChannelPolicy::Plaintext,
            identity_seed: 0,
            expected_server: None,
            connect_attempts: 1,
            retry_base: Duration::from_millis(25),
            retry_seed: 0,
        }
    }
}

impl MuxConfig {
    /// Replaces the request payload codec.
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Replaces the frame-payload ceiling.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Replaces the per-phase deadline.
    pub fn with_exchange_timeout(mut self, exchange_timeout: Duration) -> Self {
        self.exchange_timeout = exchange_timeout;
        self
    }

    /// Pins a specific readiness backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Replaces the channel policy.
    pub fn with_channel(mut self, channel: ChannelPolicy) -> Self {
        self.channel = channel;
        self
    }

    /// Replaces the base seed of the per-connection client identities.
    pub fn with_identity_seed(mut self, identity_seed: u64) -> Self {
        self.identity_seed = identity_seed;
        self
    }

    /// Pins the server's public channel identity.
    pub fn with_expected_server(mut self, public: [u8; 32]) -> Self {
        self.expected_server = Some(public);
        self
    }

    /// Enables bounded-backoff retries: `attempts` total dial+handshake
    /// tries per connection, starting from a `retry_base` initial delay.
    pub fn with_retries(mut self, attempts: usize, retry_base: Duration) -> Self {
        self.connect_attempts = attempts.max(1);
        self.retry_base = retry_base;
        self
    }

    /// Replaces the retry-jitter seed.
    pub fn with_retry_seed(mut self, retry_seed: u64) -> Self {
        self.retry_seed = retry_seed;
        self
    }
}

struct MuxConn {
    stream: TcpStream,
    frames: FrameBuffer,
    out: Vec<u8>,
    out_pos: usize,
    /// Queue instants of requests still awaiting their reply, FIFO.
    pending: VecDeque<Instant>,
    wants_write: bool,
    /// The established secure channel, when the config requires one:
    /// requests seal on queue, replies unseal on read.
    channel: Option<SecureChannel>,
}

/// One dial (+ handshake under a `Required` policy) with the config's
/// bounded-backoff retry schedule. Transient failures — socket errors,
/// disconnects, truncated handshakes — retry; deterministic refusals
/// (authentication failures, a wrong pinned key, downgrades) never do.
fn connect_conn(
    addr: SocketAddr,
    index: usize,
    config: &MuxConfig,
) -> Result<(TcpStream, Option<SecureChannel>), ProtocolError> {
    let attempts = config.connect_attempts.max(1);
    let mut schedule = RetrySchedule::new(config.retry_base, config.retry_seed ^ index as u64);
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(schedule.delay(attempt as u32 - 1));
        }
        match connect_conn_once(addr, index, config) {
            Ok(ok) => return Ok(ok),
            Err(
                e @ (ProtocolError::Io { .. }
                | ProtocolError::Disconnected
                | ProtocolError::TruncatedFrame { .. }),
            ) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    if attempts == 1 {
        Err(last.expect("one failed attempt recorded"))
    } else {
        Err(ProtocolError::RetriesExhausted { attempts })
    }
}

fn connect_conn_once(
    addr: SocketAddr,
    index: usize,
    config: &MuxConfig,
) -> Result<(TcpStream, Option<SecureChannel>), ProtocolError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| io_error("connect", e))?;
    let _ = stream.set_nodelay(true);
    if !config.channel.is_required() {
        return Ok((stream, None));
    }
    // The handshake runs while the socket is still blocking (it turns
    // nonblocking only after), bounded by the exchange timeout so a silent
    // server cannot hang the connector.
    stream
        .set_read_timeout(Some(config.exchange_timeout))
        .map_err(|e| io_error("configure socket", e))?;
    let identity = NodeIdentity::from_secret_bytes(secret_bytes_from_seed(
        config.identity_seed.wrapping_add(index as u64),
    ));
    let channel = client_handshake(
        &mut stream,
        &identity,
        config.expected_server,
        config.max_frame_bytes,
    )?;
    let _ = stream.set_read_timeout(None);
    Ok((stream, Some(channel)))
}

/// Many persistent client connections to one coordinator listener, driven
/// from a single thread. Connection `i` plays synthetic client `i`.
pub struct MuxClient {
    poll: Poll,
    registry: Registry,
    events: Events,
    conns: Vec<MuxConn>,
    config: MuxConfig,
    latency: LatencyHistogram,
}

impl MuxClient {
    /// Opens `n` persistent connections to `addr`.
    pub fn connect(addr: SocketAddr, n: usize, config: MuxConfig) -> Result<Self, ProtocolError> {
        MuxClient::connect_spread(&[addr], n, config)
    }

    /// Opens `n` persistent connections round-robin across `addrs` — pair
    /// with [`ReactorConfig::listen_addrs`](crate::ReactorConfig) to spread
    /// very large client counts over several loopback source-port spaces.
    pub fn connect_spread(
        addrs: &[SocketAddr],
        n: usize,
        config: MuxConfig,
    ) -> Result<Self, ProtocolError> {
        assert!(!addrs.is_empty(), "need at least one listener address");
        let poll = match config.backend {
            Some(backend) => Poll::with_backend(backend),
            None => Poll::new(),
        }
        .map_err(|e| io_error("create poller", e))?;
        let registry = poll.registry();
        let mut conns = Vec::with_capacity(n);
        for i in 0..n {
            // On a single core a tight connect loop starves the listener
            // process of CPU until the accept backlog (128) overflows and
            // every further SYN waits out a 1 s retransmit. Descheduling for
            // a moment every half-backlog of connects lets the acceptor
            // drain; the pause is dwarfed by the retransmits it prevents.
            let (stream, channel) = connect_conn(addrs[i % addrs.len()], i, &config)?;
            if i % 64 == 63 {
                std::thread::sleep(Duration::from_millis(2));
            } else {
                std::thread::yield_now();
            }
            stream
                .set_nonblocking(true)
                .map_err(|e| io_error("configure socket", e))?;
            registry
                .register(&stream, Token(i), Interest::READABLE)
                .map_err(|e| io_error("register socket", e))?;
            conns.push(MuxConn {
                stream,
                frames: FrameBuffer::new(),
                out: Vec::new(),
                out_pos: 0,
                pending: VecDeque::new(),
                wants_write: false,
                channel,
            });
        }
        Ok(MuxClient {
            poll,
            registry,
            events: Events::with_capacity(1024),
            conns,
            config,
            latency: LatencyHistogram::new(),
        })
    }

    /// Number of connections held.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if no connections are held.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Every latency sample recorded so far (request queued → reply
    /// decoded), across all connections and phases.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// [`latency`](Self::latency) collapsed for reporting.
    pub fn latency_summary(&self) -> LatencySummary {
        self.latency.summary()
    }

    /// Queues one request frame on connection `conn` — sealed into a `DBHE`
    /// frame when the connection runs the channel. Bytes move on the next
    /// [`collect`](Self::collect) (or [`exchange`](Self::exchange)).
    pub fn send(&mut self, conn: usize, msg: &WireMsg) -> Result<(), ProtocolError> {
        let c = &mut self.conns[conn];
        if let Some(channel) = c.channel.as_mut() {
            let mut inner = Vec::new();
            write_frame_limited(
                &mut inner,
                msg,
                self.config.codec,
                self.config.max_frame_bytes,
            )?;
            let sealed = channel.seal_frame(&inner);
            c.out.extend_from_slice(&sealed);
        } else {
            write_frame_limited(
                &mut c.out,
                msg,
                self.config.codec,
                self.config.max_frame_bytes,
            )?;
        }
        c.pending.push_back(Instant::now());
        Ok(())
    }

    /// Sends every queued frame and collects exactly `expected` reply
    /// frames, in arrival order. The phase primitive.
    pub fn collect(&mut self, expected: usize) -> Result<Vec<(usize, WireMsg)>, ProtocolError> {
        let deadline = Instant::now() + self.config.exchange_timeout;
        let mut replies = Vec::with_capacity(expected);
        // Opening flush: most frames fit the kernel send buffer outright,
        // so many phases never need WRITABLE interest at all.
        for token in 0..self.conns.len() {
            self.flush(token)?;
        }
        while replies.len() < expected {
            let now = Instant::now();
            if now >= deadline {
                return Err(ProtocolError::Io {
                    context: "collect replies",
                    detail: format!(
                        "timed out after {:?} with {} of {expected} replies",
                        self.config.exchange_timeout,
                        replies.len()
                    ),
                });
            }
            let timeout = (deadline - now).min(Duration::from_millis(500));
            self.poll
                .poll(&mut self.events, Some(timeout))
                .map_err(|e| io_error("poll", e))?;
            let batch: Vec<mini_mio::Event> = self.events.iter().copied().collect();
            for event in batch {
                let token = event.token().0;
                if event.is_writable() {
                    self.flush(token)?;
                }
                if event.is_readable() || event.is_hup() || event.is_error() {
                    self.read_replies(token, &mut replies)?;
                }
            }
        }
        Ok(replies)
    }

    /// One whole phase: queue every `(connection, request)`, move the bytes,
    /// return one reply per request in arrival order.
    pub fn exchange(
        &mut self,
        requests: &[(usize, WireMsg)],
    ) -> Result<Vec<(usize, WireMsg)>, ProtocolError> {
        for (conn, msg) in requests {
            self.send(*conn, msg)?;
        }
        self.collect(requests.len())
    }

    /// Tells every connection's listener side to hang up, best-effort.
    pub fn shutdown(mut self) {
        for token in 0..self.conns.len() {
            let c = &mut self.conns[token];
            let mut inner = Vec::new();
            if write_frame_limited(
                &mut inner,
                &WireMsg::Shutdown,
                self.config.codec,
                self.config.max_frame_bytes,
            )
            .is_ok()
            {
                match c.channel.as_mut() {
                    Some(channel) => {
                        let sealed = channel.seal_frame(&inner);
                        c.out.extend_from_slice(&sealed);
                    }
                    None => c.out.extend_from_slice(&inner),
                }
            }
            // No reply follows a shutdown frame.
            let _ = self.flush(token);
        }
    }

    fn flush(&mut self, token: usize) -> Result<(), ProtocolError> {
        let c = &mut self.conns[token];
        loop {
            let pending = &c.out[c.out_pos..];
            if pending.is_empty() {
                break;
            }
            match c.stream.write(pending) {
                Ok(0) => break,
                Ok(n) => c.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_error("write frame", e)),
            }
        }
        if c.out_pos == c.out.len() {
            c.out.clear();
            c.out_pos = 0;
        }
        let want_write = !c.out.is_empty();
        if c.wants_write != want_write {
            let interest = if want_write {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            self.registry
                .reregister(&c.stream, Token(token), interest)
                .map_err(|e| io_error("register socket", e))?;
            c.wants_write = want_write;
        }
        Ok(())
    }

    fn read_replies(
        &mut self,
        token: usize,
        replies: &mut Vec<(usize, WireMsg)>,
    ) -> Result<(), ProtocolError> {
        let c = &mut self.conns[token];
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match c.stream.read(&mut chunk) {
                Ok(0) => {
                    // The listener hung up. Mid-frame or with replies still
                    // owed, that is an error the caller must see (e.g. a
                    // backpressure disconnect); otherwise it is clean.
                    if c.frames.is_mid_frame() {
                        return Err(ProtocolError::TruncatedFrame { context: "payload" });
                    }
                    if !c.pending.is_empty() {
                        return Err(ProtocolError::Disconnected);
                    }
                    break;
                }
                Ok(n) => c.frames.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_error("read frame", e)),
            }
        }
        if let Some(channel) = c.channel.as_mut() {
            // Channel connections accept nothing but sealed frames: a
            // plaintext reply is a downgrade (or an unauthenticated
            // splice), a handshake frame is out of phase, and a seal that
            // fails to open — tamper, replay, reorder — is a typed error.
            while let Some((frame, _)) = c.frames.next_channel_frame(self.config.max_frame_bytes)? {
                let msg = match frame {
                    ChannelFrame::Sealed(payload) => {
                        let inner = channel.open_payload(&payload)?;
                        let (msg, _, _) =
                            read_frame_limited(&mut &inner[..], self.config.max_frame_bytes)?;
                        msg
                    }
                    ChannelFrame::Plaintext { frame, .. } => {
                        return Err(ProtocolError::DowngradeRefused {
                            magic: frame[..4].try_into().expect("4-byte magic"),
                        });
                    }
                    ChannelFrame::Handshake(_) => {
                        return Err(ProtocolError::AuthFailure {
                            detail: "handshake frame after the channel was established".to_string(),
                        });
                    }
                };
                if let Some(queued_at) = c.pending.pop_front() {
                    self.latency.record(queued_at.elapsed());
                }
                replies.push((token, msg));
            }
        } else {
            while let Some((msg, _, _)) = c.frames.next_frame(self.config.max_frame_bytes)? {
                if let Some(queued_at) = c.pending.pop_front() {
                    self.latency.record(queued_at.elapsed());
                }
                replies.push((token, msg));
            }
        }
        Ok(())
    }
}
