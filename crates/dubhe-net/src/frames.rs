//! Incremental frame reassembly for non-blocking sockets.
//!
//! A blocking reader can hand `read_frame_limited` the stream and let it
//! block until a whole frame arrives; an event loop cannot — it gets bytes
//! in whatever slices the kernel delivers (a header split across two reads,
//! a byte-at-a-time slow-loris, three pipelined frames in one burst) and
//! must never block. [`FrameBuffer`] bridges the two worlds: feed it raw
//! bytes as they arrive, pull complete [`WireMsg`]s out as they become
//! parseable. Validation order matches the blocking path — magic before
//! length, announced length against the ceiling *before* buffering a
//! payload — so a hostile header is refused after at most 8 bytes, with the
//! same typed [`ProtocolError`]s the blocking reader produces.

use dubhe_select::protocol::channel::{
    ChannelFrame, FRAME_MAGIC_HANDSHAKE, FRAME_MAGIC_SEALED, SEALED_FRAME_OVERHEAD,
};
use dubhe_select::protocol::codec::{CodecKind, RegistryFrame};
use dubhe_select::protocol::wire::{read_frame_limited, LazyMsg};
use dubhe_select::protocol::WireMsg;
use dubhe_select::ProtocolError;

/// Magic (4) + big-endian payload length (4).
const HEADER_BYTES: usize = 8;

/// Bytes of already-parsed prefix tolerated before the buffer compacts.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Reassembles length-prefixed `DBH1`/`DBH2` frames from arbitrary byte
/// slices. One per connection.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Start of the unparsed suffix in `buf`.
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed by a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if a frame has started arriving but is not complete yet — the
    /// state in which a peer cutting off (or stalling past the read
    /// timeout) means a *truncated* frame rather than a clean close.
    pub fn is_mid_frame(&self) -> bool {
        self.pending_bytes() > 0
    }

    /// Pulls the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "need more bytes"; errors are terminal for the
    /// connection (framing is lost once a header is bad — same contract as
    /// the blocking reader).
    pub fn next_frame(
        &mut self,
        max_frame_bytes: usize,
    ) -> Result<Option<(WireMsg, usize, CodecKind)>, ProtocolError> {
        let avail = &self.buf[self.pos..];
        // Validate the magic as soon as it is complete: garbage is refused
        // after 4 bytes, not held until a phantom "length" dribbles in.
        if avail.len() >= 4
            && CodecKind::from_magic([avail[0], avail[1], avail[2], avail[3]]).is_none()
        {
            return Err(ProtocolError::MalformedFrame {
                detail: format!(
                    "bad magic {:02x?}, expected DBH1, DBH2 or DBHZ",
                    &avail[..4]
                ),
            });
        }
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
        if len > max_frame_bytes {
            return Err(ProtocolError::FrameTooLarge {
                len,
                max: max_frame_bytes,
            });
        }
        let total = HEADER_BYTES + len;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = read_frame_limited(&mut &avail[..total], max_frame_bytes)?;
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(frame))
    }

    /// [`next_frame`](Self::next_frame), but `DBH2` registry uploads come
    /// back *undecoded* as [`LazyMsg::DeferredRegistry`] — the router folds
    /// their ciphertext block straight out of the payload bytes instead of
    /// materialising per-element bignums on the event loop. Every other
    /// frame decodes eagerly with identical validation and errors.
    ///
    /// The deferral check runs on the borrowed reassembly buffer; only a
    /// recognised registry's payload is copied out (and when the frame is
    /// the buffer's sole content, the buffer itself is taken — no copy).
    pub fn next_frame_lazy(
        &mut self,
        max_frame_bytes: usize,
    ) -> Result<Option<(LazyMsg, usize, CodecKind)>, ProtocolError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_BYTES {
            return self
                .next_frame(max_frame_bytes)
                .map(|f| f.map(|(msg, n, c)| (LazyMsg::Eager(msg), n, c)));
        }
        let len = u32::from_be_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
        let total = HEADER_BYTES + len;
        let is_deferrable = CodecKind::from_magic([avail[0], avail[1], avail[2], avail[3]])
            == Some(CodecKind::Binary)
            && len <= max_frame_bytes
            && avail.len() >= total
            && RegistryFrame::matches_prefix(&avail[HEADER_BYTES..total]);
        if !is_deferrable {
            return self
                .next_frame(max_frame_bytes)
                .map(|f| f.map(|(msg, n, c)| (LazyMsg::Eager(msg), n, c)));
        }
        let payload = if self.pos == 0 && self.buf.len() == total {
            // The frame is the buffer's whole content: take it, shave the
            // header — zero copies of the (dominant) ciphertext block.
            let mut taken = std::mem::take(&mut self.buf);
            taken.drain(..HEADER_BYTES);
            taken
        } else {
            let payload = self.buf[self.pos + HEADER_BYTES..self.pos + total].to_vec();
            self.pos += total;
            if self.pos == self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            } else if self.pos > COMPACT_THRESHOLD {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
            payload
        };
        let frame =
            RegistryFrame::try_from_payload(payload).expect("matches_prefix accepted this payload");
        Ok(Some((
            LazyMsg::DeferredRegistry(frame),
            total,
            CodecKind::Binary,
        )))
    }

    /// Pulls the next frame of *any* known magic — `DBHS` handshake, `DBHE`
    /// sealed or plaintext protocol — still undecoded, as a
    /// [`ChannelFrame`]. The nonblocking twin of
    /// [`read_channel_frame`](dubhe_select::protocol::channel::read_channel_frame):
    /// the reactor's pre-protocol handshake phase and its sealed sessions
    /// pull through this, and the caller decides which variants its policy
    /// and phase accept. Same contract as [`next_frame`](Self::next_frame):
    /// magic validated after 4 bytes, announced length checked against the
    /// ceiling *before* buffering (sealed frames may exceed the inner
    /// ceiling by exactly the seal), `Ok(None)` means "need more bytes".
    pub fn next_channel_frame(
        &mut self,
        max_frame_bytes: usize,
    ) -> Result<Option<(ChannelFrame, usize)>, ProtocolError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let magic = [avail[0], avail[1], avail[2], avail[3]];
        let known = magic == FRAME_MAGIC_HANDSHAKE
            || magic == FRAME_MAGIC_SEALED
            || CodecKind::from_magic(magic).is_some();
        if !known {
            return Err(ProtocolError::MalformedFrame {
                detail: format!("bad magic {magic:02x?}, expected DBH1, DBH2, DBHZ, DBHS or DBHE"),
            });
        }
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
        let ceiling = max_frame_bytes + SEALED_FRAME_OVERHEAD;
        if len > ceiling {
            return Err(ProtocolError::FrameTooLarge {
                len,
                max: max_frame_bytes,
            });
        }
        let total = HEADER_BYTES + len;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = if magic == FRAME_MAGIC_HANDSHAKE {
            ChannelFrame::Handshake(avail[HEADER_BYTES..total].to_vec())
        } else if magic == FRAME_MAGIC_SEALED {
            ChannelFrame::Sealed(avail[HEADER_BYTES..total].to_vec())
        } else {
            ChannelFrame::Plaintext {
                codec: CodecKind::from_magic(magic).expect("validated above"),
                frame: avail[..total].to_vec(),
            }
        };
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some((frame, total)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_select::protocol::write_frame_with;

    fn encode(msg: &WireMsg, codec: CodecKind) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame_with(&mut out, msg, codec).unwrap();
        out
    }

    #[test]
    fn reassembles_byte_at_a_time_and_pipelined_frames() {
        let a = encode(&WireMsg::Ack, CodecKind::Json);
        let b = encode(&WireMsg::CloseRegistration, CodecKind::Binary);
        let mut fb = FrameBuffer::new();
        // Slow-loris: one byte per feed, frame completes only on the last.
        for &byte in &a {
            assert!(fb.next_frame(1024).is_ok());
            fb.extend(&[byte]);
        }
        let (msg, bytes, codec) = fb.next_frame(1024).unwrap().unwrap();
        assert!(matches!(msg, WireMsg::Ack));
        assert_eq!(bytes, a.len());
        assert_eq!(codec, CodecKind::Json);
        assert!(!fb.is_mid_frame());
        // Two pipelined frames in one burst, mixed codecs.
        let mut burst = b.clone();
        burst.extend_from_slice(&a);
        fb.extend(&burst);
        let (msg, _, codec) = fb.next_frame(1024).unwrap().unwrap();
        assert!(matches!(msg, WireMsg::CloseRegistration));
        assert_eq!(codec, CodecKind::Binary);
        assert!(fb.is_mid_frame());
        let (msg, _, _) = fb.next_frame(1024).unwrap().unwrap();
        assert!(matches!(msg, WireMsg::Ack));
        assert_eq!(fb.next_frame(1024).unwrap(), None);
    }

    #[test]
    fn bad_magic_and_oversized_length_fail_fast() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"HTTP");
        assert!(matches!(
            fb.next_frame(1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));
        let mut fb = FrameBuffer::new();
        fb.extend(b"DBH1");
        fb.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(
            fb.next_frame(1024),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn header_split_across_feeds_waits_for_completion() {
        let frame = encode(&WireMsg::Ack, CodecKind::Binary);
        let mut fb = FrameBuffer::new();
        fb.extend(&frame[..3]); // partial magic
        assert_eq!(fb.next_frame(1024).unwrap(), None);
        assert!(fb.is_mid_frame());
        fb.extend(&frame[3..6]); // magic complete, length partial
        assert_eq!(fb.next_frame(1024).unwrap(), None);
        fb.extend(&frame[6..]);
        assert!(fb.next_frame(1024).unwrap().is_some());
    }

    fn registry_msg() -> WireMsg {
        use dubhe_select::protocol::{Envelope, Party, ProtocolMsg};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let kp = dubhe_he::Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        WireMsg::Envelope {
            envelope: Envelope {
                from: Party::Client(4),
                to: Party::Server,
                epoch: 2,
                msg: ProtocolMsg::EncryptedRegistry {
                    client: 4,
                    registry: dubhe_he::EncryptedVector::encrypt_u64(
                        &kp.public,
                        &[1, 0, 2],
                        &mut rng,
                    ),
                },
            },
        }
    }

    #[test]
    fn lazy_pull_defers_registries_in_every_buffer_shape() {
        let registry = registry_msg();
        let frame = encode(&registry, CodecKind::Binary);
        let max = frame.len() * 4;

        // Sole content of the buffer: the zero-copy take path.
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        let (lazy, bytes, codec) = fb.next_frame_lazy(max).unwrap().unwrap();
        assert_eq!((bytes, codec), (frame.len(), CodecKind::Binary));
        assert!(matches!(lazy, LazyMsg::DeferredRegistry(_)));
        assert_eq!(lazy.force().unwrap(), registry);
        assert!(!fb.is_mid_frame());

        // Byte-at-a-time: defers only once the frame completes.
        let mut fb = FrameBuffer::new();
        for &byte in &frame {
            assert!(fb.next_frame_lazy(max).unwrap().is_none());
            fb.extend(&[byte]);
        }
        let (lazy, _, _) = fb.next_frame_lazy(max).unwrap().unwrap();
        assert_eq!(lazy.force().unwrap(), registry);

        // Pipelined behind and ahead of eager frames: the registry mid-
        // buffer takes the copy path, neighbours stay eager, order holds.
        let ack = encode(&WireMsg::Ack, CodecKind::Binary);
        let mut fb = FrameBuffer::new();
        fb.extend(&ack);
        fb.extend(&frame);
        fb.extend(&ack);
        let (lazy, _, _) = fb.next_frame_lazy(max).unwrap().unwrap();
        assert!(matches!(lazy, LazyMsg::Eager(WireMsg::Ack)));
        let (lazy, _, _) = fb.next_frame_lazy(max).unwrap().unwrap();
        assert!(matches!(lazy, LazyMsg::DeferredRegistry(_)));
        assert_eq!(lazy.force().unwrap(), registry);
        let (lazy, _, _) = fb.next_frame_lazy(max).unwrap().unwrap();
        assert!(matches!(lazy, LazyMsg::Eager(WireMsg::Ack)));
        assert!(fb.next_frame_lazy(max).unwrap().is_none());
    }

    #[test]
    fn channel_pull_classifies_every_magic_and_keeps_the_error_contract() {
        use dubhe_select::protocol::channel::write_handshake_frame;

        // A handshake frame, a sealed frame and a plaintext frame pipelined
        // in one burst classify in order, byte-at-a-time included.
        let mut hs = Vec::new();
        write_handshake_frame(&mut hs, &[7u8; 64]).unwrap();
        let mut sealed = Vec::new();
        sealed.extend_from_slice(&FRAME_MAGIC_SEALED);
        sealed.extend_from_slice(&(24u32).to_be_bytes());
        sealed.extend_from_slice(&[9u8; 24]);
        let plain = encode(&WireMsg::Ack, CodecKind::Binary);
        let mut burst = hs.clone();
        burst.extend_from_slice(&sealed);
        burst.extend_from_slice(&plain);

        let mut fb = FrameBuffer::new();
        for &byte in &burst[..hs.len()] {
            assert!(fb.next_channel_frame(1024).unwrap().is_none());
            fb.extend(&[byte]);
        }
        fb.extend(&burst[hs.len()..]);
        let (frame, n) = fb.next_channel_frame(1024).unwrap().unwrap();
        assert_eq!(frame, ChannelFrame::Handshake(vec![7u8; 64]));
        assert_eq!(n, hs.len());
        let (frame, _) = fb.next_channel_frame(1024).unwrap().unwrap();
        assert_eq!(frame, ChannelFrame::Sealed(vec![9u8; 24]));
        let (frame, _) = fb.next_channel_frame(1024).unwrap().unwrap();
        assert!(
            matches!(frame, ChannelFrame::Plaintext { codec: CodecKind::Binary, ref frame } if *frame == plain)
        );
        assert!(fb.next_channel_frame(1024).unwrap().is_none());
        assert!(!fb.is_mid_frame());

        // Unknown magic refused after 4 bytes; a sealed frame may exceed the
        // inner ceiling by exactly the seal, but no more.
        let mut fb = FrameBuffer::new();
        fb.extend(b"HTTP");
        assert!(matches!(
            fb.next_channel_frame(1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));
        let mut fb = FrameBuffer::new();
        fb.extend(&FRAME_MAGIC_SEALED);
        fb.extend(&((64 + SEALED_FRAME_OVERHEAD) as u32).to_be_bytes());
        assert!(fb.next_channel_frame(64).unwrap().is_none()); // exactly at ceiling: wait
        let mut fb = FrameBuffer::new();
        fb.extend(&FRAME_MAGIC_SEALED);
        fb.extend(&((65 + SEALED_FRAME_OVERHEAD) as u32).to_be_bytes());
        assert!(matches!(
            fb.next_channel_frame(64),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn lazy_pull_keeps_the_eager_error_contract() {
        let registry = registry_msg();
        let frame = encode(&registry, CodecKind::Binary);

        // Over the ceiling: refused with the same typed error, even though
        // the payload would have matched the registry prefix.
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        assert!(matches!(
            fb.next_frame_lazy(16),
            Err(ProtocolError::FrameTooLarge { max: 16, .. })
        ));

        // Bad magic: refused after four bytes, exactly like next_frame.
        let mut fb = FrameBuffer::new();
        fb.extend(b"HTTPxxxx");
        assert!(matches!(
            fb.next_frame_lazy(1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));

        // A corrupted ciphertext block still defers (the prefix is intact);
        // the typed error surfaces at view time in the router, not here —
        // but a corrupted *prefix* falls back to the eager decoder's error.
        let mut corrupt = frame.clone();
        let len = corrupt.len();
        corrupt[len - 1] ^= 0xFF;
        let mut fb = FrameBuffer::new();
        fb.extend(&corrupt);
        assert!(fb.next_frame_lazy(len * 2).unwrap().is_some());

        let mut bad_prefix = frame;
        bad_prefix[8] = 9; // unknown envelope tag
        let mut fb = FrameBuffer::new();
        fb.extend(&bad_prefix);
        assert!(matches!(
            fb.next_frame_lazy(1024 * 1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));
    }
}
