//! Incremental frame reassembly for non-blocking sockets.
//!
//! A blocking reader can hand `read_frame_limited` the stream and let it
//! block until a whole frame arrives; an event loop cannot — it gets bytes
//! in whatever slices the kernel delivers (a header split across two reads,
//! a byte-at-a-time slow-loris, three pipelined frames in one burst) and
//! must never block. [`FrameBuffer`] bridges the two worlds: feed it raw
//! bytes as they arrive, pull complete [`WireMsg`]s out as they become
//! parseable. Validation order matches the blocking path — magic before
//! length, announced length against the ceiling *before* buffering a
//! payload — so a hostile header is refused after at most 8 bytes, with the
//! same typed [`ProtocolError`]s the blocking reader produces.

use dubhe_select::protocol::codec::CodecKind;
use dubhe_select::protocol::wire::read_frame_limited;
use dubhe_select::protocol::WireMsg;
use dubhe_select::ProtocolError;

/// Magic (4) + big-endian payload length (4).
const HEADER_BYTES: usize = 8;

/// Bytes of already-parsed prefix tolerated before the buffer compacts.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Reassembles length-prefixed `DBH1`/`DBH2` frames from arbitrary byte
/// slices. One per connection.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Start of the unparsed suffix in `buf`.
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed by a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if a frame has started arriving but is not complete yet — the
    /// state in which a peer cutting off (or stalling past the read
    /// timeout) means a *truncated* frame rather than a clean close.
    pub fn is_mid_frame(&self) -> bool {
        self.pending_bytes() > 0
    }

    /// Pulls the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "need more bytes"; errors are terminal for the
    /// connection (framing is lost once a header is bad — same contract as
    /// the blocking reader).
    pub fn next_frame(
        &mut self,
        max_frame_bytes: usize,
    ) -> Result<Option<(WireMsg, usize, CodecKind)>, ProtocolError> {
        let avail = &self.buf[self.pos..];
        // Validate the magic as soon as it is complete: garbage is refused
        // after 4 bytes, not held until a phantom "length" dribbles in.
        if avail.len() >= 4
            && CodecKind::from_magic([avail[0], avail[1], avail[2], avail[3]]).is_none()
        {
            return Err(ProtocolError::MalformedFrame {
                detail: format!("bad magic {:02x?}, expected DBH1 or DBH2", &avail[..4]),
            });
        }
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
        if len > max_frame_bytes {
            return Err(ProtocolError::FrameTooLarge {
                len,
                max: max_frame_bytes,
            });
        }
        let total = HEADER_BYTES + len;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = read_frame_limited(&mut &avail[..total], max_frame_bytes)?;
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_select::protocol::write_frame_with;

    fn encode(msg: &WireMsg, codec: CodecKind) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame_with(&mut out, msg, codec).unwrap();
        out
    }

    #[test]
    fn reassembles_byte_at_a_time_and_pipelined_frames() {
        let a = encode(&WireMsg::Ack, CodecKind::Json);
        let b = encode(&WireMsg::CloseRegistration, CodecKind::Binary);
        let mut fb = FrameBuffer::new();
        // Slow-loris: one byte per feed, frame completes only on the last.
        for &byte in &a {
            assert!(fb.next_frame(1024).is_ok());
            fb.extend(&[byte]);
        }
        let (msg, bytes, codec) = fb.next_frame(1024).unwrap().unwrap();
        assert!(matches!(msg, WireMsg::Ack));
        assert_eq!(bytes, a.len());
        assert_eq!(codec, CodecKind::Json);
        assert!(!fb.is_mid_frame());
        // Two pipelined frames in one burst, mixed codecs.
        let mut burst = b.clone();
        burst.extend_from_slice(&a);
        fb.extend(&burst);
        let (msg, _, codec) = fb.next_frame(1024).unwrap().unwrap();
        assert!(matches!(msg, WireMsg::CloseRegistration));
        assert_eq!(codec, CodecKind::Binary);
        assert!(fb.is_mid_frame());
        let (msg, _, _) = fb.next_frame(1024).unwrap().unwrap();
        assert!(matches!(msg, WireMsg::Ack));
        assert_eq!(fb.next_frame(1024).unwrap(), None);
    }

    #[test]
    fn bad_magic_and_oversized_length_fail_fast() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"HTTP");
        assert!(matches!(
            fb.next_frame(1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));
        let mut fb = FrameBuffer::new();
        fb.extend(b"DBH1");
        fb.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(
            fb.next_frame(1024),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn header_split_across_feeds_waits_for_completion() {
        let frame = encode(&WireMsg::Ack, CodecKind::Binary);
        let mut fb = FrameBuffer::new();
        fb.extend(&frame[..3]); // partial magic
        assert_eq!(fb.next_frame(1024).unwrap(), None);
        assert!(fb.is_mid_frame());
        fb.extend(&frame[3..6]); // magic complete, length partial
        assert_eq!(fb.next_frame(1024).unwrap(), None);
        fb.extend(&frame[6..]);
        assert!(fb.next_frame(1024).unwrap().is_some());
    }
}
