//! Acceptance pins for the event-driven listener.
//!
//! The bar, mirroring `dubhe-select`'s `networked_protocol.rs`: a full
//! registration + multi-time session served by the [`ReactorListener`] must
//! be *bit-identical* — same decrypted overall registry, same ciphertext
//! residues, same verdict, same canonical accounting — to the in-memory
//! coordinator and the thread-per-connection listener, on both readiness
//! backends. And every abuse a socket can deliver (garbage, mid-frame
//! stalls, a reader that stops reading) must surface as typed flow control,
//! never a panic or a hang.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_data::ClassDistribution;
use dubhe_net::{MuxClient, MuxConfig, ReactorConfig, ReactorListener};
use dubhe_select::protocol::{
    read_frame, run_registration_with, run_try, ChannelPolicy, CodecKind, Coordinator,
    CoordinatorListener, Envelope, InMemoryTransport, Party, ProtocolMsg, ShardedCoordinator,
    TcpConfig, TcpTransport, TransportStats, WireMsg,
};
use dubhe_select::{ClientSelector, DubheConfig, DubheSelector};
use mini_mio::Backend;
use rand::SeedableRng;

const KEY_BITS: u64 = 256;

fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: n,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    spec.build_partition(&mut rng).client_distributions()
}

/// One full session (registration + H=3 multi-time round) against an
/// arbitrary coordinator slot; returns everything the equivalence pins
/// compare.
fn drive_session<C: Coordinator>(
    dists: &[ClassDistribution],
    seed: u64,
    server: C,
) -> (Vec<u64>, (usize, f64), TransportStats, C) {
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut transport = InMemoryTransport::new();
    let mut run =
        run_registration_with(dists, &config, KEY_BITS, server, &mut transport, &mut rng).unwrap();

    let mut selector = DubheSelector::new(dists, config);
    run.agent.expect_tries(3);
    for try_index in 0..3 {
        let tentative = selector.select(&mut rng);
        run_try(
            try_index,
            &tentative,
            &mut run.agent,
            &mut run.clients,
            &mut run.server,
            &mut transport,
            &mut rng,
        )
        .unwrap();
    }

    let overall = run.overall_registry().to_vec();
    let verdict = run.agent.verdict().expect("all tries evaluated");
    (overall, verdict, *transport.stats(), run.server)
}

fn verdict_envelope(best_try: usize) -> WireMsg {
    WireMsg::Envelope {
        envelope: Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try,
                distance: 0.1,
            },
        },
    }
}

#[test]
fn reactor_session_is_bit_identical_to_memory_and_threaded_listener() {
    let dists = clients(20, 81);

    let (overall_mem, verdict_mem, stats_mem, server) =
        drive_session(&dists, 82, dubhe_select::CoordinatorServer::new(20));
    let total_mem = server.encrypted_total().expect("epoch complete");

    // The threaded listener's result, as the middle reference point.
    let threaded = CoordinatorListener::spawn(ShardedCoordinator::new(20, 2)).unwrap();
    let endpoint = TcpTransport::connect_with_codec(threaded.addr(), CodecKind::Binary).unwrap();
    let (overall_thr, verdict_thr, stats_thr, endpoint) = drive_session(&dists, 82, endpoint);
    endpoint.shutdown().unwrap();
    let threaded_state = threaded.shutdown().expect("listener state");
    assert_eq!(overall_thr, overall_mem);
    assert_eq!(verdict_thr, verdict_mem);
    assert_eq!(stats_thr, stats_mem);

    // The reactor must match on both readiness backends.
    for backend in [Backend::Epoll, Backend::Portable] {
        let reactor = ReactorListener::spawn_with(
            ShardedCoordinator::new(20, 2),
            ReactorConfig::default().with_backend(backend),
        )
        .unwrap();
        let endpoint = TcpTransport::connect_with_codec(reactor.addr(), CodecKind::Binary).unwrap();
        let (overall, verdict, stats, endpoint) = drive_session(&dists, 82, endpoint);
        assert_eq!(overall, overall_mem, "{backend:?}");
        assert_eq!(verdict, verdict_mem, "{backend:?}");
        assert_eq!(stats, stats_mem, "{backend:?}");
        endpoint.shutdown().unwrap();

        // The shutdown frame lands asynchronously; wait for the listener to
        // close the connection before pinning the frame totals.
        let deadline = Instant::now() + Duration::from_secs(10);
        while reactor.stats().connections_open > 0 {
            assert!(
                Instant::now() < deadline,
                "{backend:?}: connection never drained: {:?}",
                reactor.stats()
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        let listener_stats = reactor.stats();
        assert!(listener_stats.frames_received > 0, "{backend:?}");
        assert_eq!(
            listener_stats.frames_received,
            listener_stats.frames_sent + 1,
            "{backend:?}: one reply per request, plus the replyless shutdown frame"
        );
        assert!(listener_stats.latency.count > 0, "{backend:?}");

        let state = reactor.shutdown().expect("listener state");
        // Bit-identical ciphertext folds, element by element, against both
        // references.
        let total = state.encrypted_total().expect("epoch complete");
        assert_eq!(total.len(), total_mem.len());
        for (a, b) in total.elements().iter().zip(total_mem.elements()) {
            assert_eq!(a.raw(), b.raw(), "{backend:?}: fold diverged from memory");
        }
        assert_eq!(state.messages_received(), server.messages_received());
        assert_eq!(state.bytes_received(), threaded_state.bytes_received());
        assert_eq!(state.last_verdict(), Some(verdict_mem));
    }
}

#[test]
fn required_channel_session_is_bit_identical_to_plaintext_on_both_backends() {
    let dists = clients(20, 91);
    let (overall_mem, verdict_mem, stats_mem, _server) =
        drive_session(&dists, 92, dubhe_select::CoordinatorServer::new(20));

    for backend in [Backend::Epoll, Backend::Portable] {
        let reactor = ReactorListener::spawn_with(
            ShardedCoordinator::new(20, 2),
            ReactorConfig::default()
                .with_backend(backend)
                .with_channel(ChannelPolicy::Required),
        )
        .unwrap();
        let pin = reactor
            .public_identity()
            .expect("required channel resolves an identity");
        let endpoint = TcpTransport::connect_with_config(
            reactor.addr(),
            TcpConfig::default()
                .with_codec(CodecKind::Binary)
                .with_channel(ChannelPolicy::Required)
                .with_expected_server(pin),
        )
        .unwrap();
        let (overall, verdict, stats, endpoint) = drive_session(&dists, 92, endpoint);
        // Every protocol-level ledger — decrypted registry, verdict, per-kind
        // transport accounting — is bit-identical with the channel on.
        assert_eq!(overall, overall_mem, "{backend:?}");
        assert_eq!(verdict, verdict_mem, "{backend:?}");
        assert_eq!(stats, stats_mem, "{backend:?}");
        endpoint.shutdown().unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        while reactor.stats().connections_open > 0 {
            assert!(Instant::now() < deadline, "connection never drained");
            std::thread::sleep(Duration::from_millis(10));
        }
        let listener_stats = reactor.stats();
        assert_eq!(listener_stats.handshakes_completed, 1, "{backend:?}");
        assert_eq!(listener_stats.handshakes_failed, 0, "{backend:?}");
        assert_eq!(listener_stats.aead_rejections, 0, "{backend:?}");
        assert_eq!(listener_stats.downgrades_refused, 0, "{backend:?}");
        assert_eq!(listener_stats.decode_errors, 0, "{backend:?}");
        assert!(reactor.shutdown().is_some());
    }
}

#[test]
fn mux_client_runs_sealed_sessions_end_to_end() {
    let n = 24;
    let reactor = ReactorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ReactorConfig::default().with_channel(ChannelPolicy::Required),
    )
    .unwrap();
    let pin = reactor.public_identity().expect("identity resolved");
    let mut mux = MuxClient::connect(
        reactor.addr(),
        n,
        MuxConfig::default()
            .with_codec(CodecKind::Binary)
            .with_channel(ChannelPolicy::Required)
            .with_expected_server(pin)
            .with_exchange_timeout(Duration::from_secs(30)),
    )
    .unwrap();

    // Two phases over persistent sealed connections: every request earns
    // its (empty batch) reply through the seal in both directions.
    let requests: Vec<(usize, WireMsg)> = (0..n).map(|i| (i, verdict_envelope(i % 5))).collect();
    let replies = mux.exchange(&requests).unwrap();
    assert_eq!(replies.len(), n);
    assert!(replies
        .iter()
        .all(|(_, msg)| matches!(msg, WireMsg::Batch { envelopes } if envelopes.is_empty())));
    let replies = mux.exchange(&requests[..7]).unwrap();
    assert_eq!(replies.len(), 7);
    mux.shutdown();

    let deadline = Instant::now() + Duration::from_secs(10);
    while reactor.stats().connections_open > 0 {
        assert!(
            Instant::now() < deadline,
            "connections never drained: {:?}",
            reactor.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = reactor.stats();
    assert_eq!(stats.connections_accepted, n);
    assert_eq!(stats.handshakes_completed, n);
    assert_eq!(stats.handshakes_failed, 0);
    assert_eq!(stats.aead_rejections, 0);
    assert_eq!(stats.downgrades_refused, 0);
    assert_eq!(stats.frames_received, n + 7 + n, "requests + shutdowns");
    assert_eq!(stats.frames_sent, n + 7);
    assert_eq!(stats.decode_errors, 0);
    let state = reactor.shutdown().expect("listener state");
    assert_eq!(state.messages_received(), n + 7);
}

#[test]
fn downgrades_and_handshake_stalls_get_typed_refusals_on_both_backends() {
    for backend in [Backend::Epoll, Backend::Portable] {
        let reactor = ReactorListener::spawn_with(
            ShardedCoordinator::new(0, 1),
            ReactorConfig::default()
                .with_backend(backend)
                .with_channel(ChannelPolicy::Required)
                .with_read_timeout(Duration::from_millis(300)),
        )
        .unwrap();

        // Plaintext protocol traffic at a Required listener: refused as a
        // downgrade attempt, in the codec the client attempted, then cut.
        let mut raw = TcpStream::connect(reactor.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        dubhe_select::protocol::write_frame_with(&mut raw, &verdict_envelope(0), CodecKind::Binary)
            .unwrap();
        let (reply, _) = read_frame(&mut raw).expect("a refusal frame before the hangup");
        match reply {
            WireMsg::Error { detail } => {
                assert!(detail.contains("authenticated channel"), "{detail}")
            }
            other => panic!("expected a downgrade refusal, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0, "{backend:?}");

        // Handshake slow-loris: a connection that opens the prelude and
        // stalls is swept at the read timeout, with a courtesy notice.
        let mut loris = TcpStream::connect(reactor.addr()).unwrap();
        loris
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        loris.write_all(b"DBHS").unwrap(); // valid handshake magic, then silence
        let (reply, _) = read_frame(&mut loris).expect("a stall notice before the hangup");
        match reply {
            WireMsg::Error { detail } => assert!(detail.contains("stalled"), "{detail}"),
            other => panic!("expected a stall notice, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(loris.read_to_end(&mut rest).unwrap(), 0, "{backend:?}");

        // A connection that never sends a byte is swept too — silence is
        // not a way to hold a pre-authentication slot open.
        let silent = TcpStream::connect(reactor.addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while reactor.stats().connections_open > 0 {
            assert!(
                Instant::now() < deadline,
                "{backend:?}: silent pre-auth connection never swept: {:?}",
                reactor.stats()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(silent);

        let stats = reactor.stats();
        assert_eq!(stats.downgrades_refused, 1, "{backend:?}");
        assert_eq!(
            stats.handshakes_failed, 3,
            "{backend:?}: downgrade + loris + silent"
        );
        assert_eq!(stats.handshakes_completed, 0, "{backend:?}");
        assert!(reactor.shutdown().is_some());
    }
}

#[test]
fn mux_client_multiplexes_many_persistent_connections() {
    let n = 128;
    let reactor = ReactorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let mut mux = MuxClient::connect(
        reactor.addr(),
        n,
        MuxConfig::default()
            .with_codec(CodecKind::Binary)
            .with_exchange_timeout(Duration::from_secs(30)),
    )
    .unwrap();
    assert_eq!(mux.len(), n);

    // Every connection sends a verdict concurrently; every one gets its own
    // (empty batch) reply.
    let requests: Vec<(usize, WireMsg)> = (0..n).map(|i| (i, verdict_envelope(i % 7))).collect();
    let replies = mux.exchange(&requests).unwrap();
    assert_eq!(replies.len(), n);
    assert!(replies
        .iter()
        .all(|(_, msg)| matches!(msg, WireMsg::Batch { envelopes } if envelopes.is_empty())));
    assert_eq!(mux.latency().count(), n as u64);

    // A second phase over the same (persistent) connections still works.
    let replies = mux.exchange(&requests[..16]).unwrap();
    assert_eq!(replies.len(), 16);
    mux.shutdown();

    // Shutdown frames land asynchronously; wait for the listener to close
    // every connection before pinning the totals.
    let deadline = Instant::now() + Duration::from_secs(10);
    while reactor.stats().connections_open > 0 {
        assert!(
            Instant::now() < deadline,
            "connections never drained: {:?}",
            reactor.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = reactor.stats();
    assert_eq!(stats.connections_accepted, n);
    assert_eq!(stats.peak_connections, n);
    assert_eq!(stats.frames_received, n + 16 + n, "requests + shutdowns");
    assert_eq!(stats.frames_sent, n + 16);
    assert_eq!(stats.decode_errors, 0);
    let state = reactor.shutdown().expect("listener state");
    assert_eq!(state.messages_received(), n + 16);
}

#[test]
fn stalled_reader_is_cut_by_backpressure_not_buffered_forever() {
    // Replies must queue: the raw client sends requests but never reads.
    // An unknown request earns an Error reply whose detail echoes the
    // request's debug form — so a bulky request makes a bulky reply, filling
    // the 64 KiB high-water mark long before the kernel buffers absorb it.
    let reactor = ReactorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ReactorConfig::default().with_high_water(64 * 1024),
    )
    .unwrap();
    let mut raw = TcpStream::connect(reactor.addr()).unwrap();
    let bulky = WireMsg::Batch {
        envelopes: (0..200)
            .map(|i| Envelope {
                from: Party::Client(i),
                to: Party::Server,
                epoch: 0,
                msg: ProtocolMsg::TryVerdict {
                    best_try: i,
                    distance: 0.25,
                },
            })
            .collect(),
    };
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut sent = 0usize;
    while reactor.stats().backpressure_disconnects == 0 {
        assert!(
            Instant::now() < deadline,
            "backpressure never tripped after {sent} bulky requests: {:?}",
            reactor.stats()
        );
        // The server may cut us at any moment; write errors are the signal
        // arriving, not a test failure.
        if dubhe_select::protocol::write_frame_with(&mut raw, &bulky, CodecKind::Binary).is_err() {
            std::thread::sleep(Duration::from_millis(20));
        } else {
            sent += 1;
        }
    }
    let stats = reactor.stats();
    assert_eq!(stats.backpressure_disconnects, 1);
    assert!(
        stats.peak_write_queue > 64 * 1024,
        "peak queue {} should exceed the high-water mark",
        stats.peak_write_queue
    );
    // The listener survives and serves the next client normally.
    let mut healthy =
        TcpTransport::connect_with_timeout(reactor.addr(), Duration::from_secs(5)).unwrap();
    healthy
        .announce_try(0, &[1, 2])
        .expect("listener healthy after cutting the stalled reader");
    drop(reactor);
}

#[test]
fn garbage_and_mid_frame_stalls_get_typed_errors_on_both_backends() {
    for backend in [Backend::Epoll, Backend::Portable] {
        let reactor = ReactorListener::spawn_with(
            ShardedCoordinator::new(0, 1),
            ReactorConfig::default()
                .with_backend(backend)
                .with_read_timeout(Duration::from_millis(300)),
        )
        .unwrap();

        // Garbage magic: one typed error reply, then a hangup.
        let mut raw = TcpStream::connect(reactor.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\nHost: dubhe\r\n\r\n")
            .unwrap();
        let (reply, _) = read_frame(&mut raw).expect("an error frame before the hangup");
        match reply {
            WireMsg::Error { detail } => assert!(detail.contains("malformed"), "{detail}"),
            other => panic!("expected an error reply, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0, "{backend:?}");

        // Mid-frame stall: header starts, then silence. The reactor must
        // reap the connection after the read timeout — with a courtesy
        // error frame — and count it as truncated.
        let mut loris = TcpStream::connect(reactor.addr()).unwrap();
        loris
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        loris.write_all(b"DBH2").unwrap(); // valid magic, nothing more
        let (reply, _) = read_frame(&mut loris).expect("a stall notice before the hangup");
        match reply {
            WireMsg::Error { detail } => assert!(detail.contains("stalled"), "{detail}"),
            other => panic!("expected a stall notice, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(loris.read_to_end(&mut rest).unwrap(), 0, "{backend:?}");

        let stats = reactor.stats();
        assert_eq!(stats.decode_errors, 1, "{backend:?}");
        assert_eq!(stats.truncated_frames, 1, "{backend:?}");
        assert_eq!(stats.connections_open, 0, "{backend:?}");
        assert!(reactor.shutdown().is_some());
    }
}

#[test]
fn slow_loris_byte_at_a_time_frame_still_decodes() {
    // Trickling a whole valid frame one byte at a time — with pauses well
    // under the read timeout — must decode exactly like a burst: progress
    // resets the stall deadline, only true stalls are cut.
    let reactor = ReactorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ReactorConfig::default().with_read_timeout(Duration::from_secs(5)),
    )
    .unwrap();
    let mut raw = TcpStream::connect(reactor.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut frame = Vec::new();
    dubhe_select::protocol::write_frame_with(
        &mut frame,
        &WireMsg::AnnounceTry {
            try_index: 0,
            participants: vec![1, 2, 3],
        },
        CodecKind::Binary,
    )
    .unwrap();
    for byte in frame {
        raw.write_all(&[byte]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let (reply, _) = read_frame(&mut raw).expect("the trickled frame decodes");
    assert!(matches!(reply, WireMsg::Ack), "got {reply:?}");
    let stats = reactor.stats();
    assert_eq!(stats.truncated_frames, 0);
    assert_eq!(stats.decode_errors, 0);
    drop(reactor);
}
