//! # dubhe-ml — minimal neural-network training substrate
//!
//! The Dubhe paper trains CNNs (MNIST, FEMNIST) and a ResNet-18 (CIFAR10) with
//! PyTorch. This crate provides the from-scratch Rust equivalent needed by the
//! federated-learning simulator: dense/convolutional layers with manual
//! backpropagation, softmax cross-entropy, SGD/Adam optimizers and a
//! [`Sequential`] container whose weights can be exported/imported as flat
//! vectors — exactly the interface FedAvg-style aggregation needs.
//!
//! The crate is deliberately small but complete: every layer implements a
//! gradient that is verified against finite differences in the test suite, and
//! batched matrix multiplication is parallelised with rayon because local
//! client training is the hot loop of every experiment in the paper.
//!
//! ## Example
//!
//! ```
//! use dubhe_ml::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // A two-layer MLP for a 4-feature, 3-class problem.
//! let mut model = Sequential::new(vec![
//!     Dense::new(4, 16, &mut rng).boxed(),
//!     ReLU::new().boxed(),
//!     Dense::new(16, 3, &mut rng).boxed(),
//! ]);
//! let x = Matrix::from_rows(&[vec![0.1, 0.2, 0.3, 0.4], vec![0.5, 0.1, 0.0, 0.9]]);
//! let y = vec![0usize, 2];
//! let mut opt = Sgd::new(0.1);
//! let loss_before = model.evaluate_loss(&x, &y);
//! for _ in 0..50 {
//!     model.train_batch(&x, &y, &mut opt);
//! }
//! assert!(model.evaluate_loss(&x, &y) < loss_before);
//! ```

pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod model;
pub mod optim;

pub use layers::{Conv2d, Dense, Flatten, IntoBoxedLayer, Layer, ReLU};
pub use loss::{softmax, softmax_cross_entropy, SoftmaxCrossEntropy};
pub use matrix::Matrix;
pub use model::Sequential;
pub use optim::{Adam, Optimizer, Sgd};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::layers::{Conv2d, Dense, Flatten, IntoBoxedLayer, Layer, ReLU};
    pub use crate::loss::{softmax, softmax_cross_entropy, SoftmaxCrossEntropy};
    pub use crate::matrix::Matrix;
    pub use crate::model::Sequential;
    pub use crate::optim::{Adam, Optimizer, Sgd};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn mlp_learns_a_separable_toy_problem() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut model = Sequential::new(vec![
            Dense::new(2, 32, &mut rng).boxed(),
            ReLU::new().boxed(),
            Dense::new(32, 2, &mut rng).boxed(),
        ]);
        // Class 0: points near (0,0); class 1: points near (1,1).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let offset = (i % 8) as f32 * 0.01;
            xs.push(vec![0.0 + offset, 0.1 - offset]);
            ys.push(0usize);
            xs.push(vec![1.0 - offset, 0.9 + offset]);
            ys.push(1usize);
        }
        let x = Matrix::from_rows(&xs);
        let mut opt = Adam::new(0.01);
        for _ in 0..200 {
            model.train_batch(&x, &ys, &mut opt);
        }
        assert!(model.accuracy(&x, &ys) > 0.95);
    }
}
