//! Neural-network layers with manual backpropagation.
//!
//! Layers operate on batches stored as [`Matrix`] values: one sample per row.
//! Convolutional layers interpret each row as a flattened `C × H × W` volume.
//! Every layer caches whatever it needs during `forward` so that `backward` can
//! compute parameter gradients and the gradient with respect to its input.
//!
//! Parameters and gradients are exposed as flat `f32` vectors so that the
//! federated-learning simulator can average weights across clients (FedAvg /
//! FedVC) without knowing anything about layer internals.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::init::he_normal;
use crate::matrix::Matrix;

/// A differentiable layer.
pub trait Layer: Send + Sync {
    /// Runs the layer on a batch and caches what `backward` needs.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Propagates the gradient of the loss with respect to this layer's output
    /// back to its input, storing parameter gradients internally.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize;

    /// Appends this layer's parameters to `out` in a fixed order.
    fn collect_params(&self, out: &mut Vec<f32>);

    /// Appends this layer's most recent gradients to `out` (zeros if `backward`
    /// has not run yet), in the same order as [`collect_params`].
    ///
    /// [`collect_params`]: Layer::collect_params
    fn collect_grads(&self, out: &mut Vec<f32>);

    /// Loads parameters from the front of `src`, returning how many values were
    /// consumed.
    fn load_params(&mut self, src: &[f32]) -> usize;

    /// Clones the layer into a boxed trait object (models must be cloneable so
    /// every federated client can own an independent copy).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Helper to let concrete layers be boxed fluently: `Dense::new(...).boxed()`.
pub trait IntoBoxedLayer: Layer + Sized + 'static {
    /// Boxes the layer as a trait object.
    fn boxed(self) -> Box<dyn Layer> {
        Box::new(self)
    }
}
impl<T: Layer + Sized + 'static> IntoBoxedLayer for T {}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// A fully connected layer: `y = x·W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f32>,
    cached_input: Option<Matrix>,
    grad_weights: Matrix,
    grad_bias: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "dense layer dimensions must be positive"
        );
        let weights = Matrix::from_vec(inputs, outputs, he_normal(inputs, inputs * outputs, rng));
        Dense {
            weights,
            bias: vec![0.0; outputs],
            cached_input: None,
            grad_weights: Matrix::zeros(inputs, outputs),
            grad_bias: vec![0.0; outputs],
        }
    }

    /// Input feature count.
    pub fn inputs(&self) -> usize {
        self.weights.rows()
    }

    /// Output feature count.
    pub fn outputs(&self) -> usize {
        self.weights.cols()
    }

    /// Read access to the weight matrix (for inspection in tests).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.weights.rows(),
            "dense layer expected {} inputs, got {}",
            self.weights.rows(),
            input.cols()
        );
        self.cached_input = Some(input.clone());
        input.matmul(&self.weights).add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Dense layer");
        self.grad_weights = input.matmul_tn(grad_output);
        self.grad_bias = grad_output.sum_rows();
        grad_output.matmul_nt(&self.weights)
    }

    fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.data());
        out.extend_from_slice(&self.bias);
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_weights.data());
        out.extend_from_slice(&self.grad_bias);
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let w_len = self.weights.rows() * self.weights.cols();
        let total = w_len + self.bias.len();
        assert!(
            src.len() >= total,
            "not enough parameters to load Dense layer"
        );
        self.weights = Matrix::from_vec(
            self.weights.rows(),
            self.weights.cols(),
            src[..w_len].to_vec(),
        );
        self.bias.copy_from_slice(&src[w_len..total]);
        total
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Element-wise rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReLU {
    cached_input: Option<Matrix>,
}

impl ReLU {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        ReLU { cached_input: None }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on ReLU layer");
        grad_output.zip_with(input, |g, x| if x > 0.0 { g } else { 0.0 })
    }

    fn param_count(&self) -> usize {
        0
    }

    fn collect_params(&self, _out: &mut Vec<f32>) {}

    fn collect_grads(&self, _out: &mut Vec<f32>) {}

    fn load_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Identity layer kept for architectural parity with the paper's CNNs: batches
/// are already stored as flattened rows, so flattening is a no-op, but keeping
/// the layer makes model definitions read like their PyTorch counterparts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        input.clone()
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        grad_output.clone()
    }

    fn param_count(&self) -> usize {
        0
    }

    fn collect_params(&self, _out: &mut Vec<f32>) {}

    fn collect_grads(&self, _out: &mut Vec<f32>) {}

    fn load_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// A 2-D convolution with stride 1 and zero padding, implemented via im2col.
///
/// Batches are matrices whose rows are flattened `in_channels × height × width`
/// volumes; the output rows are flattened
/// `out_channels × out_height × out_width` volumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    height: usize,
    width: usize,
    /// Kernels stored as `(in_channels·k·k) × out_channels`.
    weights: Matrix,
    bias: Vec<f32>,
    cached_cols: Option<Vec<Matrix>>,
    grad_weights: Matrix,
    grad_bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution layer for inputs of the given spatial size.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        height: usize,
        width: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0 && in_channels > 0 && out_channels > 0);
        assert!(
            height + 2 * padding >= kernel && width + 2 * padding >= kernel,
            "kernel larger than padded input"
        );
        let fan_in = in_channels * kernel * kernel;
        let weights = Matrix::from_vec(
            fan_in,
            out_channels,
            he_normal(fan_in, fan_in * out_channels, rng),
        );
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            padding,
            height,
            width,
            weights,
            bias: vec![0.0; out_channels],
            cached_cols: None,
            grad_weights: Matrix::zeros(fan_in, out_channels),
            grad_bias: vec![0.0; out_channels],
        }
    }

    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        self.height + 2 * self.padding - self.kernel + 1
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        self.width + 2 * self.padding - self.kernel + 1
    }

    /// Flattened output feature count per sample.
    pub fn output_len(&self) -> usize {
        self.out_channels * self.out_height() * self.out_width()
    }

    /// Flattened input feature count per sample.
    pub fn input_len(&self) -> usize {
        self.in_channels * self.height * self.width
    }

    /// im2col for one sample: result is `(out_h·out_w) × (in_c·k·k)`.
    fn im2col(&self, sample: &[f32]) -> Matrix {
        let oh = self.out_height();
        let ow = self.out_width();
        let k = self.kernel;
        let pad = self.padding as isize;
        let mut cols = Matrix::zeros(oh * ow, self.in_channels * k * k);
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = oy * ow + ox;
                let mut col_idx = 0;
                for c in 0..self.in_channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            let ix = ox as isize + kx as isize - pad;
                            let v = if iy >= 0
                                && ix >= 0
                                && (iy as usize) < self.height
                                && (ix as usize) < self.width
                            {
                                sample[c * self.height * self.width
                                    + iy as usize * self.width
                                    + ix as usize]
                            } else {
                                0.0
                            };
                            cols.set(row_idx, col_idx, v);
                            col_idx += 1;
                        }
                    }
                }
            }
        }
        cols
    }

    /// col2im (scatter-add) for one sample's gradient.
    fn col2im(&self, cols: &Matrix) -> Vec<f32> {
        let oh = self.out_height();
        let ow = self.out_width();
        let k = self.kernel;
        let pad = self.padding as isize;
        let mut sample = vec![0.0f32; self.input_len()];
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = oy * ow + ox;
                let mut col_idx = 0;
                for c in 0..self.in_channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            let ix = ox as isize + kx as isize - pad;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < self.height
                                && (ix as usize) < self.width
                            {
                                sample[c * self.height * self.width
                                    + iy as usize * self.width
                                    + ix as usize] += cols.get(row_idx, col_idx);
                            }
                            col_idx += 1;
                        }
                    }
                }
            }
        }
        sample
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_len(),
            "conv layer expected rows of length {}, got {}",
            self.input_len(),
            input.cols()
        );
        let oh = self.out_height();
        let ow = self.out_width();
        let mut out = Matrix::zeros(input.rows(), self.output_len());
        let mut cached = Vec::with_capacity(input.rows());
        for s in 0..input.rows() {
            let cols = self.im2col(input.row(s));
            // (oh·ow) × out_channels
            let conv = cols.matmul(&self.weights);
            for oc in 0..self.out_channels {
                for pos in 0..oh * ow {
                    out.set(s, oc * oh * ow + pos, conv.get(pos, oc) + self.bias[oc]);
                }
            }
            cached.push(cols);
        }
        self.cached_cols = Some(cached);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cached = self
            .cached_cols
            .as_ref()
            .expect("backward called before forward on Conv2d layer");
        let oh = self.out_height();
        let ow = self.out_width();
        let fan_in = self.in_channels * self.kernel * self.kernel;
        let mut grad_w = Matrix::zeros(fan_in, self.out_channels);
        let mut grad_b = vec![0.0f32; self.out_channels];
        let mut grad_input = Matrix::zeros(grad_output.rows(), self.input_len());

        for (s, cols) in cached.iter().enumerate() {
            // Reshape this sample's output gradient into (oh·ow) × out_channels.
            let mut g = Matrix::zeros(oh * ow, self.out_channels);
            for (oc, gb) in grad_b.iter_mut().enumerate() {
                for pos in 0..oh * ow {
                    let v = grad_output.get(s, oc * oh * ow + pos);
                    g.set(pos, oc, v);
                    *gb += v;
                }
            }
            // dW += colsᵀ × g ; dCols = g × Wᵀ
            grad_w = grad_w.add(&cols.matmul_tn(&g));
            let d_cols = g.matmul_nt(&self.weights);
            let d_sample = self.col2im(&d_cols);
            for (c, v) in d_sample.into_iter().enumerate() {
                grad_input.set(s, c, v);
            }
        }
        self.grad_weights = grad_w;
        self.grad_bias = grad_b;
        grad_input
    }

    fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.data());
        out.extend_from_slice(&self.bias);
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_weights.data());
        out.extend_from_slice(&self.grad_bias);
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let w_len = self.weights.rows() * self.weights.cols();
        let total = w_len + self.bias.len();
        assert!(
            src.len() >= total,
            "not enough parameters to load Conv2d layer"
        );
        self.weights = Matrix::from_vec(
            self.weights.rows(),
            self.weights.cols(),
            src[..w_len].to_vec(),
        );
        self.bias.copy_from_slice(&src[w_len..total]);
        total
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, &mut r);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (2, 2));
        // Second row is all-zero input, so output equals the bias (zeros).
        assert_eq!(y.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn dense_param_round_trip() {
        let mut r = rng();
        let mut layer = Dense::new(4, 3, &mut r);
        let mut params = Vec::new();
        layer.collect_params(&mut params);
        assert_eq!(params.len(), layer.param_count());
        let new_params: Vec<f32> = (0..params.len()).map(|i| i as f32 * 0.1).collect();
        let consumed = layer.load_params(&new_params);
        assert_eq!(consumed, params.len());
        let mut back = Vec::new();
        layer.collect_params(&mut back);
        assert_eq!(back, new_params);
    }

    #[test]
    fn relu_masks_negative_values_in_both_directions() {
        let mut layer = ReLU::new();
        let x = Matrix::from_rows(&[vec![-1.0, 2.0], vec![3.0, -4.0]]);
        let y = layer.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 0.0]]));
        let g = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let gx = layer.backward(&g);
        assert_eq!(gx, Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]));
    }

    #[test]
    fn flatten_is_identity() {
        let mut layer = Flatten::new();
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(layer.forward(&x), x);
        assert_eq!(layer.backward(&x), x);
        assert_eq!(layer.param_count(), 0);
    }

    #[test]
    fn conv_output_dimensions() {
        let mut r = rng();
        let conv = Conv2d::new(2, 4, 3, 8, 8, 1, &mut r);
        assert_eq!(conv.out_height(), 8);
        assert_eq!(conv.out_width(), 8);
        assert_eq!(conv.output_len(), 4 * 8 * 8);
        let conv = Conv2d::new(1, 2, 3, 8, 8, 0, &mut r);
        assert_eq!(conv.out_height(), 6);
        assert_eq!(conv.output_len(), 2 * 6 * 6);
    }

    #[test]
    fn conv_forward_matches_manual_convolution() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 3, 3, 0, &mut r);
        // Overwrite the kernel with a known one: [[1, 0], [0, 1]] and zero bias.
        conv.load_params(&[1.0, 0.0, 0.0, 1.0, 0.0]);
        // Input 3x3: 1..9
        let x = Matrix::from_rows(&[(1..=9).map(|v| v as f32).collect()]);
        let y = conv.forward(&x);
        // Each output = top-left + bottom-right of the 2x2 window.
        assert_eq!(y.row(0), &[1.0 + 5.0, 2.0 + 6.0, 4.0 + 8.0, 5.0 + 9.0]);
    }

    /// Numerical gradient check for a Dense->ReLU->Dense stack via central
    /// differences on the softmax cross-entropy loss.
    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut r = rng();
        let mut layer = Dense::new(3, 4, &mut r);
        let x = Matrix::from_rows(&[vec![0.5, -0.2, 0.8], vec![1.0, 0.3, -0.7]]);
        let labels = vec![1usize, 3usize];

        // Analytic gradient.
        let logits = layer.forward(&x);
        let (_, grad_logits) = softmax_cross_entropy(&logits, &labels);
        layer.backward(&grad_logits);
        let mut analytic = Vec::new();
        layer.collect_grads(&mut analytic);

        // Numerical gradient.
        let mut params = Vec::new();
        layer.collect_params(&mut params);
        let eps = 1e-3f32;
        for idx in [0usize, 3, 7, 11, params.len() - 1] {
            let mut plus = params.clone();
            plus[idx] += eps;
            layer.load_params(&plus);
            let (loss_plus, _) = softmax_cross_entropy(&layer.forward(&x), &labels);
            let mut minus = params.clone();
            minus[idx] -= eps;
            layer.load_params(&minus);
            let (loss_minus, _) = softmax_cross_entropy(&layer.forward(&x), &labels);
            layer.load_params(&params);
            let numeric = (loss_plus - loss_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-2,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 2, 4, 4, 0, &mut r);
        let x = Matrix::from_rows(&[(0..16).map(|v| (v as f32) / 16.0).collect()]);
        let labels = vec![5usize];

        let out = conv.forward(&x);
        let (_, grad_out) = softmax_cross_entropy(&out, &labels);
        conv.backward(&grad_out);
        let mut analytic = Vec::new();
        conv.collect_grads(&mut analytic);

        let mut params = Vec::new();
        conv.collect_params(&mut params);
        let eps = 1e-3f32;
        for idx in [0usize, 2, 5, params.len() - 1] {
            let mut plus = params.clone();
            plus[idx] += eps;
            conv.load_params(&plus);
            let (loss_plus, _) = softmax_cross_entropy(&conv.forward(&x), &labels);
            let mut minus = params.clone();
            minus[idx] -= eps;
            conv.load_params(&minus);
            let (loss_minus, _) = softmax_cross_entropy(&conv.forward(&x), &labels);
            conv.load_params(&params);
            let numeric = (loss_plus - loss_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-2,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn conv_input_gradient_matches_finite_differences() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 3, 3, 0, &mut r);
        let base: Vec<f32> = (0..9).map(|v| (v as f32) / 9.0).collect();
        let labels = vec![2usize];

        let x = Matrix::from_rows(std::slice::from_ref(&base));
        let out = conv.forward(&x);
        let (_, grad_out) = softmax_cross_entropy(&out, &labels);
        let grad_in = conv.backward(&grad_out);

        let eps = 1e-3f32;
        for idx in [0usize, 4, 8] {
            let mut plus = base.clone();
            plus[idx] += eps;
            let (lp, _) =
                softmax_cross_entropy(&conv.forward(&Matrix::from_rows(&[plus])), &labels);
            let mut minus = base.clone();
            minus[idx] -= eps;
            let (lm, _) =
                softmax_cross_entropy(&conv.forward(&Matrix::from_rows(&[minus])), &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.get(0, idx)).abs() < 1e-2,
                "input {idx}: numeric {numeric} vs analytic {}",
                grad_in.get(0, idx)
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, &mut r);
        let g = Matrix::zeros(1, 2);
        let _ = layer.backward(&g);
    }

    #[test]
    fn boxed_layers_clone_independently() {
        let mut r = rng();
        let layer: Box<dyn Layer> = Dense::new(2, 2, &mut r).boxed();
        let mut a = layer.clone();
        let b = layer.clone();
        let consumed = a.load_params(&[9.0; 6]);
        assert_eq!(consumed, 6);
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        a.collect_params(&mut pa);
        b.collect_params(&mut pb);
        assert_ne!(pa, pb, "clones must not share storage");
    }
}
