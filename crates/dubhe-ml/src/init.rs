//! Weight initialisation schemes.
//!
//! The paper's models are initialised by PyTorch defaults (Kaiming-uniform for
//! conv/linear layers). We provide He and Xavier initialisation with an explicit
//! RNG so federated experiments are reproducible: every client starts from the
//! *same* global model, which the simulator guarantees by initialising once on
//! the server and broadcasting the weights.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// He (Kaiming) normal initialisation: `N(0, sqrt(2 / fan_in))`.
///
/// Appropriate for layers followed by ReLU activations.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, count: usize, rng: &mut R) -> Vec<f32> {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt();
    let dist = Normal::new(0.0, std).expect("std is finite and positive");
    (0..count).map(|_| dist.sample(rng) as f32).collect()
}

/// Xavier (Glorot) uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    fan_in: usize,
    fan_out: usize,
    count: usize,
    rng: &mut R,
) -> Vec<f32> {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let dist = Uniform::new_inclusive(-a, a);
    (0..count).map(|_| dist.sample(rng) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_normal_has_expected_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = he_normal(100, 10_000, &mut rng);
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        let var: f32 = w.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01, "mean should be near zero, got {mean}");
        let expected_var = 2.0 / 100.0;
        assert!(
            (var - expected_var).abs() < expected_var * 0.2,
            "variance {var} off target"
        );
    }

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = (6.0f32 / 300.0).sqrt();
        let w = xavier_uniform(100, 200, 5_000, &mut rng);
        assert!(w.iter().all(|v| v.abs() <= a + 1e-6));
        assert!(
            w.iter().any(|v| v.abs() > a * 0.5),
            "values should use the range"
        );
    }

    #[test]
    fn initialisation_is_deterministic_given_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(3);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(3);
        assert_eq!(he_normal(10, 100, &mut r1), he_normal(10, 100, &mut r2));
    }

    #[test]
    #[should_panic(expected = "fan_in must be positive")]
    fn zero_fan_in_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = he_normal(0, 1, &mut rng);
    }
}
