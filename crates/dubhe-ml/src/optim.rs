//! First-order optimizers operating on flat parameter vectors.
//!
//! The paper's clients update weights with Adam (lr = 1e-4, no weight decay);
//! plain SGD (optionally with momentum) is provided as well because the
//! motivation experiments and several ablations converge faster with it at
//! laptop scale. Optimizers see parameters and gradients as flat `f32` slices,
//! which is also the representation FedAvg aggregation uses, so a client's
//! optimizer state never needs to know the model architecture.

use serde::{Deserialize, Serialize};

/// A stateful first-order optimizer.
pub trait Optimizer: Send {
    /// Applies one update step. `params` and `grads` must have the same length
    /// on every call; optimizers lazily size their internal state on first use.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Resets internal state (moments, step counters).
    fn reset(&mut self);

    /// The base learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer the paper's
/// clients use for local training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stability constant.
    pub epsilon: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Adam with standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// The Adam configuration used in the paper's experiments (lr = 1e-4).
    pub fn paper_default() -> Self {
        Adam::new(1e-4)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)² starting at x = 0.
    fn quadratic_grad(x: f32) -> f32 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut x = [0.0f32];
        for _ in 0..100 {
            let g = [quadratic_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |mut opt: Sgd| {
            let mut x = [0.0f32];
            for _ in 0..25 {
                let g = [quadratic_grad(x[0])];
                opt.step(&mut x, &g);
            }
            (x[0] - 3.0).abs()
        };
        let plain = run(Sgd::new(0.02));
        let momentum = run(Sgd::with_momentum(0.02, 0.9));
        assert!(
            momentum < plain,
            "momentum ({momentum}) should beat plain SGD ({plain})"
        );
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut opt = Adam::new(0.2);
        let mut x = [0.0f32];
        for _ in 0..300 {
            let g = [quadratic_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_handles_sparse_gradients_without_nan() {
        let mut opt = Adam::new(0.01);
        let mut x = [1.0f32, 1.0];
        for i in 0..50 {
            let g = if i % 2 == 0 { [1.0, 0.0] } else { [0.0, 0.0] };
            opt.step(&mut x, &g);
        }
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(x[0] < 1.0);
        assert_eq!(x[1], 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut x = [0.0f32];
        opt.step(&mut x, &[1.0]);
        opt.reset();
        let mut opt2 = Adam::new(0.1);
        let mut x1 = [5.0f32];
        let mut x2 = [5.0f32];
        opt.step(&mut x1, &[2.0]);
        opt2.step(&mut x2, &[2.0]);
        assert_eq!(
            x1, x2,
            "after reset the optimizer must behave like a fresh one"
        );
    }

    #[test]
    fn paper_default_learning_rate() {
        assert!((Adam::paper_default().learning_rate() - 1e-4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut x = [0.0f32, 1.0];
        opt.step(&mut x, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_lr_panics() {
        let _ = Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn invalid_momentum_panics() {
        let _ = Sgd::with_momentum(0.1, 1.5);
    }
}
