//! Softmax cross-entropy — the loss used by every experiment in the paper.
//!
//! The weight-divergence analysis of §4.2 is derived for classification with
//! cross-entropy loss, so this is the only loss the substrate needs. The
//! combined softmax + cross-entropy keeps the backward pass numerically stable
//! (`softmax(x) - onehot(y)` instead of differentiating through a log).

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Row-wise, numerically stable softmax.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = out.cols();
    for r in 0..out.rows() {
        let row_max = logits
            .row(r)
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        {
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            for v in row.iter_mut() {
                *v = (*v - row_max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Computes the mean cross-entropy loss of `logits` against integer `labels`
/// and the gradient of that loss with respect to the logits.
///
/// Returns `(loss, grad)` where `grad` has the same shape as `logits` and is
/// already divided by the batch size.
///
/// # Panics
/// Panics if the number of labels differs from the number of rows or if a label
/// is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "one label per row required");
    let probs = softmax(logits);
    let batch = logits.rows() as f32;
    let classes = logits.cols();
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    (loss / batch, grad.scale(1.0 / batch))
}

/// Object wrapper around [`softmax_cross_entropy`] so training code can carry
/// the loss around as a value (and future losses — e.g. the Ratio Loss the
/// related-work section mentions — can slot in behind the same interface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Computes `(loss, grad_logits)` for a batch.
    pub fn compute(&self, logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
        softmax_cross_entropy(logits, labels)
    }
}

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per row required");
    if labels.is_empty() {
        return 0.0;
    }
    let predictions = logits.argmax_rows();
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax(&logits);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Matrix::from_rows(&[vec![1.0, 2.0]]));
        let b = softmax(&Matrix::from_rows(&[vec![1001.0, 1002.0]]));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        // Huge logits must not produce NaN.
        let c = softmax(&Matrix::from_rows(&[vec![1e10, -1e10]]));
        assert!(c.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Matrix::zeros(4, 10);
        let labels = vec![0, 3, 5, 9];
        let (loss, _) = softmax_cross_entropy(&logits, &labels);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_gives_near_zero_loss() {
        let mut logits = Matrix::zeros(2, 3);
        logits.set(0, 1, 50.0);
        logits.set(1, 2, 50.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Matrix::from_rows(&[vec![0.3, -0.2, 1.5], vec![2.0, 0.0, -1.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..grad.rows() {
            let sum: f32 = grad.row(r).iter().sum();
            assert!(sum.abs() < 1e-6, "row {r} gradient sums to {sum}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[vec![0.1, -0.4, 0.7], vec![1.2, 0.3, -0.9]]);
        let labels = vec![0usize, 2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let (lp, _) = softmax_cross_entropy(&plus, &labels);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let (lm, _) = softmax_cross_entropy(&minus, &labels);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!((numeric - grad.get(r, c)).abs() < 1e-3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let logits = Matrix::zeros(1, 3);
        let _ = softmax_cross_entropy(&logits, &[3]);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_count_mismatch_panics() {
        let logits = Matrix::zeros(2, 3);
        let _ = softmax_cross_entropy(&logits, &[0]);
    }

    #[test]
    fn accuracy_counts_correct_argmax() {
        let logits = Matrix::from_rows(&[
            vec![0.9, 0.1],
            vec![0.2, 0.8],
            vec![0.6, 0.4],
            vec![0.3, 0.7],
        ]);
        assert!((accuracy(&logits, &[0, 1, 1, 1]) - 0.75).abs() < 1e-9);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }
}
