//! The [`Sequential`] model container.
//!
//! A `Sequential` owns a stack of boxed [`Layer`]s and provides the operations
//! the federated simulator needs:
//!
//! * `train_batch` — one forward/backward/update step on a mini-batch;
//! * `get_weights` / `set_weights` — flat parameter vectors for FedAvg/FedVC
//!   aggregation and for broadcasting the global model;
//! * `accuracy` / `evaluate_loss` — test-set evaluation;
//! * `weight_divergence` — the ‖ω_f − ω*‖ quantity from the paper's §4.2 bound.

use crate::layers::Layer;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::matrix::Matrix;
use crate::optim::Optimizer;

/// A feed-forward stack of layers trained with softmax cross-entropy.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.summary())
            .field("param_count", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Builds a model from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        Sequential { layers }
    }

    /// Layer names in order, e.g. `["Dense", "ReLU", "Dense"]`.
    pub fn summary(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Runs the forward pass, returning the logits for a batch.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// One optimisation step on a mini-batch. Returns the batch loss.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        let logits = self.forward(x);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, labels);
        // Backward through the stack.
        let mut grad = grad_logits;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        // Flatten, update, reload.
        let mut params = self.get_weights();
        let grads = self.get_gradients();
        optimizer.step(&mut params, &grads);
        self.set_weights(&params);
        loss
    }

    /// All parameters as one flat vector (layer order, deterministic).
    pub fn get_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.collect_params(&mut out);
        }
        out
    }

    /// All gradients from the most recent backward pass as one flat vector.
    pub fn get_gradients(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.collect_grads(&mut out);
        }
        // Layers that have not produced gradients yet contribute nothing; pad so
        // the result always matches `param_count`.
        out.resize(self.param_count(), 0.0);
        out
    }

    /// Loads a flat parameter vector produced by [`get_weights`] (possibly from
    /// a different replica of the same architecture — this is how the global
    /// model is broadcast to clients).
    ///
    /// # Panics
    /// Panics if `weights.len()` does not equal [`param_count`].
    ///
    /// [`get_weights`]: Sequential::get_weights
    /// [`param_count`]: Sequential::param_count
    pub fn set_weights(&mut self, weights: &[f32]) {
        assert_eq!(
            weights.len(),
            self.param_count(),
            "weight vector length {} does not match model parameter count {}",
            weights.len(),
            self.param_count()
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.load_params(&weights[offset..]);
        }
        debug_assert_eq!(offset, weights.len());
    }

    /// Mean loss over a dataset (no gradient bookkeeping is kept).
    pub fn evaluate_loss(&mut self, x: &Matrix, labels: &[usize]) -> f32 {
        let logits = self.forward(x);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        loss
    }

    /// Top-1 accuracy over a dataset.
    pub fn accuracy(&mut self, x: &Matrix, labels: &[usize]) -> f64 {
        let logits = self.forward(x);
        accuracy(&logits, labels)
    }

    /// Per-class recall (fraction of samples of each class predicted
    /// correctly); classes absent from `labels` report `None`.
    pub fn per_class_recall(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        classes: usize,
    ) -> Vec<Option<f64>> {
        let logits = self.forward(x);
        let preds = logits.argmax_rows();
        let mut correct = vec![0usize; classes];
        let mut total = vec![0usize; classes];
        for (p, &l) in preds.iter().zip(labels) {
            total[l] += 1;
            if *p == l {
                correct[l] += 1;
            }
        }
        (0..classes)
            .map(|c| {
                if total[c] == 0 {
                    None
                } else {
                    Some(correct[c] as f64 / total[c] as f64)
                }
            })
            .collect()
    }

    /// L2 distance between this model's weights and another weight vector —
    /// the weight divergence ‖ω_f − ω*‖ of the paper's Eq. (2).
    pub fn weight_divergence(&self, reference: &[f32]) -> f64 {
        let own = self.get_weights();
        assert_eq!(
            own.len(),
            reference.len(),
            "weight divergence needs equal-sized models"
        );
        own.iter()
            .zip(reference)
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Averages several equally shaped flat weight vectors — the uniform FedVC
/// aggregation of Eq. (1). Lives here (rather than in dubhe-fl) so that model
/// code and aggregation arithmetic can be tested together without a simulator.
pub fn average_weights(weight_sets: &[Vec<f32>]) -> Vec<f32> {
    assert!(!weight_sets.is_empty(), "cannot average zero weight sets");
    let len = weight_sets[0].len();
    assert!(
        weight_sets.iter().all(|w| w.len() == len),
        "all weight vectors must have the same length"
    );
    let mut out = vec![0.0f32; len];
    for w in weight_sets {
        for (o, v) in out.iter_mut().zip(w) {
            *o += v;
        }
    }
    let scale = 1.0 / weight_sets.len() as f32;
    for o in &mut out {
        *o *= scale;
    }
    out
}

/// Weighted average of flat weight vectors (classic FedAvg, weights ∝ sample
/// counts).
pub fn weighted_average_weights(weight_sets: &[Vec<f32>], sample_counts: &[usize]) -> Vec<f32> {
    assert_eq!(
        weight_sets.len(),
        sample_counts.len(),
        "one sample count per weight set"
    );
    assert!(!weight_sets.is_empty(), "cannot average zero weight sets");
    let total: usize = sample_counts.iter().sum();
    assert!(total > 0, "total sample count must be positive");
    let len = weight_sets[0].len();
    let mut out = vec![0.0f32; len];
    for (w, &count) in weight_sets.iter().zip(sample_counts) {
        assert_eq!(w.len(), len, "all weight vectors must have the same length");
        let coeff = count as f32 / total as f32;
        for (o, v) in out.iter_mut().zip(w) {
            *o += coeff * v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, IntoBoxedLayer, ReLU};
    use crate::optim::{Adam, Sgd};
    use rand::SeedableRng;

    fn small_model(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Dense::new(3, 8, &mut rng).boxed(),
            ReLU::new().boxed(),
            Dense::new(8, 4, &mut rng).boxed(),
        ])
    }

    #[test]
    fn param_count_and_summary() {
        let model = small_model(1);
        assert_eq!(model.summary(), vec!["Dense", "ReLU", "Dense"]);
        assert_eq!(model.param_count(), 3 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn get_set_weights_round_trip() {
        let model = small_model(2);
        let mut other = small_model(3);
        assert_ne!(model.get_weights(), other.get_weights());
        other.set_weights(&model.get_weights());
        assert_eq!(model.get_weights(), other.get_weights());
    }

    #[test]
    #[should_panic(expected = "does not match model parameter count")]
    fn wrong_weight_length_panics() {
        let mut model = small_model(4);
        model.set_weights(&[0.0; 3]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = small_model(5);
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]);
        let y = vec![0, 1, 2, 3];
        let before = model.evaluate_loss(&x, &y);
        let mut opt = Adam::new(0.05);
        for _ in 0..100 {
            model.train_batch(&x, &y, &mut opt);
        }
        let after = model.evaluate_loss(&x, &y);
        assert!(
            after < before * 0.5,
            "loss should at least halve: {before} -> {after}"
        );
        assert!(model.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn cloned_models_train_independently() {
        let mut a = small_model(6);
        let mut b = a.clone();
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let y = vec![1usize];
        let mut opt = Sgd::new(0.1);
        a.train_batch(&x, &y, &mut opt);
        assert_ne!(a.get_weights(), b.get_weights());
        // b is untouched and still evaluates.
        let _ = b.accuracy(&x, &y);
    }

    #[test]
    fn weight_divergence_is_zero_for_identical_models() {
        let model = small_model(7);
        assert_eq!(model.weight_divergence(&model.get_weights()), 0.0);
        let mut shifted = model.get_weights();
        shifted[0] += 3.0;
        shifted[1] += 4.0;
        assert!((model.weight_divergence(&shifted) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn per_class_recall_reports_missing_classes() {
        let mut model = small_model(8);
        let x = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        let recall = model.per_class_recall(&x, &[0, 1], 4);
        assert_eq!(recall.len(), 4);
        assert!(recall[2].is_none() && recall[3].is_none());
    }

    #[test]
    fn uniform_average_matches_manual_mean() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![3.0f32, 4.0, 5.0];
        assert_eq!(average_weights(&[a, b]), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn weighted_average_respects_sample_counts() {
        let a = vec![0.0f32, 0.0];
        let b = vec![10.0f32, 10.0];
        let avg = weighted_average_weights(&[a, b], &[3, 1]);
        assert_eq!(avg, vec![2.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "cannot average zero")]
    fn empty_average_panics() {
        let _ = average_weights(&[]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_average_panics() {
        let _ = average_weights(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn gradients_match_param_count_even_before_backward() {
        let model = small_model(9);
        assert_eq!(model.get_gradients().len(), model.param_count());
    }
}
