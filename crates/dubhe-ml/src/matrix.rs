//! A small row-major `f32` matrix with the operations backpropagation needs.
//!
//! This is not a general-purpose linear-algebra library; it implements exactly
//! what the layers in [`crate::layers`] use — matmul (optionally transposed on
//! either side), element-wise maps, row reductions — with a rayon-parallel
//! matmul for batch sizes that make the parallelism worthwhile.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Minimum number of result elements before matmul switches to rayon. Below
/// this the thread-pool dispatch costs more than it saves.
const PAR_THRESHOLD: usize = 64 * 64;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally long rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a new matrix from a subset of rows (used for mini-batching).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = self.cols;
        let oc = other.cols;
        let compute_row = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[r * n..(r + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * oc..(k + 1) * oc];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };
        if self.rows * other.cols >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(oc)
                .enumerate()
                .for_each(compute_row);
        } else {
            out.data.chunks_mut(oc).enumerate().for_each(compute_row);
        }
        out
    }

    /// `selfᵀ × other` without materialising the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let compute_row = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[c * other.cols..(c + 1) * other.cols];
                *o = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
            }
        };
        if self.rows * other.rows >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(other.rows)
                .enumerate()
                .for_each(compute_row);
        } else {
            out.data
                .chunks_mut(other.rows)
                .enumerate()
                .for_each(compute_row);
        }
        out
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination of two equally shaped matrices.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in element-wise op"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds a row vector (broadcast over rows), e.g. a bias.
    pub fn add_row_broadcast(&self, row: &[f32]) -> Matrix {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let slice = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (o, &b) in slice.iter_mut().zip(row) {
                *o += b;
            }
        }
        out
    }

    /// Sums each column into a row vector (used for bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element of each row (argmax over classes).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_data_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut id = Matrix::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.5], vec![0.25, 2.0]]);
        // aᵀ (3x2) × b (2x2)
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
        let c = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.5, 0.25, 0.125]]);
        // a (2x3) × cᵀ (3x2)
        assert_eq!(a.matmul_nt(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn large_matmul_parallel_path_matches_sequential() {
        // Exceeds PAR_THRESHOLD to exercise the rayon path.
        let n = 80;
        let a = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 7) as f32 * 0.5).collect());
        let b = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 5) as f32 * 0.25).collect());
        let fast = a.matmul(&b);
        // Reference computation.
        let mut reference = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a.get(r, k) * b.get(k, c);
                }
                reference.set(r, c, acc);
            }
        }
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0], vec![30.0, 40.0]]);
        assert_eq!(
            a.add(&b),
            Matrix::from_rows(&[vec![11.0, 22.0], vec![33.0, 44.0]])
        );
        assert_eq!(
            b.sub(&a),
            Matrix::from_rows(&[vec![9.0, 18.0], vec![27.0, 36.0]])
        );
        assert_eq!(
            a.hadamard(&a),
            Matrix::from_rows(&[vec![1.0, 4.0], vec![9.0, 16.0]])
        );
        assert_eq!(
            a.scale(2.0),
            Matrix::from_rows(&[vec![2.0, 4.0], vec![6.0, 8.0]])
        );
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(
            a.add_row_broadcast(&[10.0, 20.0]),
            Matrix::from_rows(&[vec![11.0, 22.0], vec![13.0, 24.0]])
        );
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
    }

    #[test]
    fn argmax_and_norm() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.2]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((b.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn select_rows_builds_batches() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let batch = a.select_rows(&[2, 0]);
        assert_eq!(batch, Matrix::from_rows(&[vec![3.0], vec![1.0]]));
    }
}
