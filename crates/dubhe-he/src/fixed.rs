//! Fixed-point encoding of probability vectors.
//!
//! During multi-time selection each tentatively selected client sends its
//! encrypted label distribution `p_l` (a probability vector summing to 1) to the
//! server. Paillier encrypts integers, so distributions are scaled by a fixed
//! factor and rounded; the homomorphic sum of scaled distributions decodes to
//! the (scaled) population distribution `p_o` that the agent inspects.

use serde::{Deserialize, Serialize};

/// Default scaling factor: six decimal digits of precision, which keeps the
/// rounding error of a 52-class distribution far below the distances the agent
/// compares (‖p_o − p_u‖₁ ≈ 0.01 – 1.0).
pub const DEFAULT_FIXED_SCALE: u64 = 1_000_000;

/// Converts between `f64` probability vectors and scaled integer vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPointCodec {
    /// Multiplicative scale applied before rounding.
    pub scale: u64,
}

impl Default for FixedPointCodec {
    fn default() -> Self {
        FixedPointCodec {
            scale: DEFAULT_FIXED_SCALE,
        }
    }
}

impl FixedPointCodec {
    /// Creates a codec with an explicit scale.
    pub fn new(scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        FixedPointCodec { scale }
    }

    /// Encodes a probability (or any non-negative real) as a scaled integer.
    pub fn encode(&self, value: f64) -> u64 {
        assert!(
            value >= 0.0 && value.is_finite(),
            "value must be non-negative and finite"
        );
        (value * self.scale as f64).round() as u64
    }

    /// Decodes a scaled integer back to a real value.
    pub fn decode(&self, value: u64) -> f64 {
        value as f64 / self.scale as f64
    }

    /// Encodes a whole vector.
    pub fn encode_vec(&self, values: &[f64]) -> Vec<u64> {
        values.iter().map(|&v| self.encode(v)).collect()
    }

    /// Decodes a whole vector.
    pub fn decode_vec(&self, values: &[u64]) -> Vec<f64> {
        values.iter().map(|&v| self.decode(v)).collect()
    }

    /// Decodes an aggregated vector that is the sum of `count` encoded
    /// distributions, returning the *average* distribution (what the agent
    /// needs to compare against the uniform distribution).
    pub fn decode_average(&self, values: &[u64], count: usize) -> Vec<f64> {
        assert!(count > 0, "cannot average zero distributions");
        values
            .iter()
            .map(|&v| v as f64 / (self.scale as f64 * count as f64))
            .collect()
    }

    /// Worst-case absolute rounding error per element.
    pub fn max_error(&self) -> f64 {
        0.5 / self.scale as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_within_precision() {
        let codec = FixedPointCodec::default();
        for v in [0.0, 0.1, 0.25, 0.333333, 0.9999, 1.0] {
            let back = codec.decode(codec.encode(v));
            assert!((back - v).abs() <= codec.max_error(), "{v} -> {back}");
        }
    }

    #[test]
    fn vector_round_trip() {
        let codec = FixedPointCodec::new(10_000);
        let dist = vec![0.5, 0.25, 0.125, 0.125];
        let decoded = codec.decode_vec(&codec.encode_vec(&dist));
        for (a, b) in dist.iter().zip(&decoded) {
            assert!((a - b).abs() <= codec.max_error());
        }
    }

    #[test]
    fn aggregated_average_matches_mean_distribution() {
        let codec = FixedPointCodec::default();
        let d1 = vec![1.0, 0.0];
        let d2 = vec![0.0, 1.0];
        let e1 = codec.encode_vec(&d1);
        let e2 = codec.encode_vec(&d2);
        let sum: Vec<u64> = e1.iter().zip(&e2).map(|(a, b)| a + b).collect();
        let avg = codec.decode_average(&sum, 2);
        assert!((avg[0] - 0.5).abs() < 1e-6);
        assert!((avg[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_rejected() {
        FixedPointCodec::default().encode(-0.1);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = FixedPointCodec::new(0);
    }

    #[test]
    #[should_panic(expected = "cannot average zero")]
    fn zero_count_average_rejected() {
        FixedPointCodec::default().decode_average(&[1], 0);
    }

    #[test]
    fn max_error_shrinks_with_scale() {
        assert!(
            FixedPointCodec::new(1_000_000).max_error() < FixedPointCodec::new(100).max_error()
        );
    }
}
