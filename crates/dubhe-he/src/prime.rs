//! Probabilistic prime generation for Paillier key material.
//!
//! Key generation needs two random primes `p`, `q` of `bits/2` bits each with
//! `gcd(pq, (p-1)(q-1)) = 1` (guaranteed when `p` and `q` have equal length).
//! We implement the standard Miller–Rabin primality test with a fixed number of
//! rounds; for the key sizes used here (256–2048 bit moduli) 40 rounds pushes the
//! error probability below 2⁻⁸⁰.

use num_bigint::{BigUint, RandBigInt};
use num_integer::Integer;
use num_traits::{One, Zero};
use rand::Rng;

/// Number of Miller–Rabin rounds used by [`is_probable_prime`].
pub const MILLER_RABIN_ROUNDS: u32 = 40;

/// Small primes used to cheaply reject most composite candidates before running
/// Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Returns `true` if `n` is prime with overwhelming probability.
///
/// Uses trial division by a table of small primes followed by [`MILLER_RABIN_ROUNDS`]
/// rounds of Miller–Rabin with random bases.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n < &BigUint::from(2u32) {
        return false;
    }
    for &sp in &SMALL_PRIMES {
        let sp = BigUint::from(sp);
        if n == &sp {
            return true;
        }
        if (n % &sp).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Callers should prefer [`is_probable_prime`], which also performs trial
/// division; this function assumes `n` is odd and larger than the small primes.
pub fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from(2u32);
    let n_minus_one = n - &one;

    // Write n-1 = d * 2^s with d odd.
    let mut d = n_minus_one.clone();
    let mut s = 0u64;
    while d.is_even() {
        d >>= 1;
        s += 1;
    }

    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = loop {
            let candidate = rng.gen_biguint_below(n);
            if candidate >= two && candidate <= &n_minus_one - &one {
                break candidate;
            }
        };
        let mut x = a.modpow(&d, n);
        if x == one || x == n_minus_one {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.modpow(&two, n);
            if x == n_minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// The top two bits are forced to one (so the product of two such primes has
/// exactly `2 * bits` bits) and the bottom bit is forced to one (odd).
pub fn generate_prime<R: Rng + ?Sized>(bits: u64, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits, got {bits}");
    loop {
        let mut candidate = rng.gen_biguint(bits);
        // Force exact bit-length and oddness.
        candidate.set_bit(bits - 1, true);
        candidate.set_bit(bits - 2, true);
        candidate.set_bit(0, true);
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a pair of distinct probable primes, each of `bits` bits.
pub fn generate_prime_pair<R: Rng + ?Sized>(bits: u64, rng: &mut R) -> (BigUint, BigUint) {
    let p = generate_prime(bits, rng);
    loop {
        let q = generate_prime(bits, rng);
        if q != p {
            return (p, q);
        }
    }
}

/// Computes the modular multiplicative inverse of `a` modulo `m`, if it exists.
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    use num_bigint::BigInt;
    use num_bigint::Sign;
    let a = BigInt::from_biguint(Sign::Plus, a.clone());
    let m_int = BigInt::from_biguint(Sign::Plus, m.clone());
    let e = a.extended_gcd(&m_int);
    if !e.gcd.is_one() {
        return None;
    }
    let mut x = e.x % &m_int;
    if x.sign() == Sign::Minus {
        x += &m_int;
    }
    Some(x.to_biguint().expect("normalised to non-negative"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn small_primes_are_recognised() {
        let mut r = rng();
        for p in [2u32, 3, 5, 7, 97, 251] {
            assert!(
                is_probable_prime(&BigUint::from(p), &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_are_rejected() {
        let mut r = rng();
        for c in [
            1u32, 4, 6, 9, 15, 21, 25, 100, 561, /* Carmichael */
            1105,
        ] {
            assert!(
                !is_probable_prime(&BigUint::from(c), &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn known_large_prime_is_accepted() {
        // 2^61 - 1 is a Mersenne prime.
        let p = (BigUint::one() << 61u32) - BigUint::one();
        assert!(is_probable_prime(&p, &mut rng()));
    }

    #[test]
    fn known_large_composite_is_rejected() {
        // (2^61 - 1) * 7
        let c = ((BigUint::one() << 61u32) - BigUint::one()) * BigUint::from(7u32);
        assert!(!is_probable_prime(&c, &mut rng()));
    }

    #[test]
    fn generated_primes_have_requested_bit_length() {
        let mut r = rng();
        for bits in [64u64, 96, 128] {
            let p = generate_prime(bits, &mut r);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn generated_pair_is_distinct() {
        let mut r = rng();
        let (p, q) = generate_prime_pair(64, &mut r);
        assert_ne!(p, q);
    }

    #[test]
    #[should_panic(expected = "at least 8 bits")]
    fn tiny_prime_request_panics() {
        let mut r = rng();
        let _ = generate_prime(4, &mut r);
    }

    #[test]
    fn mod_inverse_round_trips() {
        let m = BigUint::from(1_000_000_007u64);
        for a in [2u64, 3, 17, 123_456_789] {
            let a = BigUint::from(a);
            let inv = mod_inverse(&a, &m).expect("inverse exists for prime modulus");
            assert_eq!((a * inv) % &m, BigUint::one());
        }
    }

    #[test]
    fn mod_inverse_absent_when_not_coprime() {
        let m = BigUint::from(12u32);
        assert!(mod_inverse(&BigUint::from(8u32), &m).is_none());
    }
}
