//! Precomputed-base Paillier encryption — the hot path.
//!
//! Textbook Paillier encryption spends almost all of its time computing the
//! randomness component `rⁿ mod n²`: an exponentiation with an *n-sized*
//! (1024–2048 bit) exponent, repeated for every registry slot of every
//! client. This module replaces it with the standard short-exponent,
//! fixed-base construction:
//!
//! 1. **Once per key**: pick a random `g₀ ∈ Z*_n` and precompute
//!    `h = g₀ⁿ mod n²`. `h` is a uniformly random *n-th residue*, i.e. a
//!    random element of exactly the subgroup textbook randomness `rⁿ` lives
//!    in.
//! 2. **Once per key**: build a windowed fixed-base power table for `h`
//!    (all `h^(d·16ʷ)` for digits `d ∈ [1, 15]` and window positions `w`), so
//!    any power of `h` with a [`RANDOMNESS_EXPONENT_BITS`]-bit exponent costs
//!    ~64 modular multiplications and **zero** squarings.
//! 3. **Per ciphertext**: sample a short random exponent `x` and encrypt as
//!    `c = (1 + m·n) · hˣ mod n²`.
//!
//! ## Security argument
//!
//! Replacing `rⁿ` (uniform in the n-th–residue subgroup) by `hˣ` (a random
//! power of a random subgroup element) with a `2λ`-bit exponent is the
//! standard short-exponent optimisation for Paillier: it is exactly the
//! scheme described in §6 of Damgård–Jurik ("the subgroup variant"), and it
//! is what production libraries ship — python-paillier (used by the paper)
//! exposes the same trade-off as `EncryptedNumber`'s obfuscation with
//! `r_value` precomputation, and rust-paillier/libpaillier provide
//! "precomputed randomness" APIs built on the same identity. Distinguishing
//! `hˣ` from uniform in the subgroup is the short-exponent discrete-log
//! assumption with a `2λ = 256`-bit exponent, which comfortably matches the
//! ~112–128-bit security of 2048-bit moduli. Ciphertexts remain *bitwise
//! ordinary* Paillier ciphertexts: decryption, homomorphic addition and all
//! transport paths are unchanged, which the property tests assert.
//!
//! ## Expected speed-up
//!
//! Binary exponentiation with an n-sized exponent costs ≈ `|n|` squarings
//! plus `|n|/2` multiplications mod `n²`; the windowed fixed-base path costs
//! `RANDOMNESS_EXPONENT_BITS / 4` multiplications. At 1024-bit keys that is
//! ≈ 1536 vs 64 heavy operations — an order of magnitude on the randomness
//! component, and 5–10× end-to-end once the (cheap) message component and
//! final multiplication are included. The `paillier_ops` criterion bench
//! measures both paths side by side.

use num_bigint::{BigUint, RandBigInt};
use num_traits::Zero;
use rand::Rng;

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::keys::PublicKey;

/// Bit length of the short randomness exponent `x` (≈ 2× the 128-bit
/// security level targeted by 2048-bit moduli).
pub const RANDOMNESS_EXPONENT_BITS: u64 = 256;

/// Window width of the fixed-base table (4 bits → 15 stored powers per
/// window, one multiplication per window during exponentiation).
const WINDOW_BITS: u64 = 4;

/// A windowed fixed-base power table for `h = g₀ⁿ mod n²`.
///
/// Built lazily, once per key, behind the shared [`PublicKey`] handle; every
/// ciphertext produced under the key amortises it.
#[derive(Debug)]
pub(crate) struct FastBase {
    /// `table[w][d-1] = h^(d · 2^(4w)) mod n²` for `d ∈ [1, 15]`.
    table: Vec<Vec<BigUint>>,
}

impl FastBase {
    /// Samples `g₀`, computes `h = g₀ⁿ mod n²` (the one full-width
    /// exponentiation this scheme ever pays, through the key's cached
    /// Montgomery context) and expands the window table.
    pub(crate) fn new<R: Rng + ?Sized>(public: &PublicKey, rng: &mut R) -> Self {
        let n = public.n();
        let n_squared = public.n_squared();
        let g0 = loop {
            let candidate = rng.gen_biguint_below(n);
            if !candidate.is_zero() {
                break candidate;
            }
        };
        let h = public.pow_mod_n_squared(&g0, n);

        let windows = RANDOMNESS_EXPONENT_BITS.div_ceil(WINDOW_BITS) as usize;
        let mut table = Vec::with_capacity(windows);
        let mut window_base = h;
        for w in 0..windows {
            let mut row = Vec::with_capacity(15);
            row.push(window_base.clone());
            for d in 1..15 {
                let next = (&row[d - 1] * &window_base) % n_squared;
                row.push(next);
            }
            if w + 1 < windows {
                // base of the next window: h^(16^(w+1)) = (h^16^w)^16.
                window_base = (&row[14] * &window_base) % n_squared;
            }
            table.push(row);
        }
        FastBase { table }
    }

    /// `hˣ mod n²` by one table lookup + multiplication per non-zero 4-bit
    /// digit of `x`.
    pub(crate) fn pow(&self, x: &BigUint, n_squared: &BigUint) -> BigUint {
        let mut acc: Option<BigUint> = None;
        let digits = x.to_u64_digits();
        for (w, row) in self.table.iter().enumerate() {
            let bit = w as u64 * WINDOW_BITS;
            let limb = digits.get((bit / 64) as usize).copied().unwrap_or(0);
            let digit = ((limb >> (bit % 64)) & 0xF) as usize;
            if digit == 0 {
                continue;
            }
            let factor = &row[digit - 1];
            acc = Some(match acc {
                None => factor.clone(),
                Some(a) => (a * factor) % n_squared,
            });
        }
        acc.unwrap_or_else(num_traits::One::one)
    }
}

/// Fast Paillier encryptor bound to one shared [`PublicKey`].
///
/// Construction forces the key's fixed-base table to exist (building it on
/// first use); encryption then replaces the full-width `rⁿ` exponentiation
/// with a short windowed `hˣ`. Ciphertexts decrypt identically to the
/// textbook path — the property tests in `tests/proptest_he.rs` pin this.
///
/// `EncryptedVector::encrypt_u64` and the secure protocol in `dubhe-select`
/// go through this type by default.
#[derive(Debug, Clone)]
pub struct PrecomputedEncryptor {
    public: PublicKey,
}

impl PrecomputedEncryptor {
    /// Binds to `public`, building the shared fixed-base table if this key
    /// has never encrypted fast before.
    pub fn new<R: Rng + ?Sized>(public: &PublicKey, rng: &mut R) -> Self {
        public.fast_base(rng);
        PrecomputedEncryptor {
            public: public.clone(),
        }
    }

    /// The key this encryptor is bound to.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Samples a fresh randomness component `hˣ mod n²`.
    pub fn randomizer<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        let x = sample_short_exponent(rng);
        let base = self.public.fast_base(rng);
        base.pow(&x, self.public.n_squared())
    }

    /// Encrypts an arbitrary-precision non-negative integer.
    ///
    /// Returns [`HeError::PlaintextTooLarge`] if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, HeError> {
        if m >= self.public.n() {
            return Err(HeError::PlaintextTooLarge);
        }
        let value = (self.public.g_to_m(m) * self.randomizer(rng)) % self.public.n_squared();
        Ok(Ciphertext::from_raw(value, self.public.clone()))
    }

    /// Encrypts a `u64` plaintext.
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> Ciphertext {
        self.encrypt(&BigUint::from(m), rng)
            .expect("u64 always fits in a >=64-bit modulus")
    }

    /// Encrypts a signed integer using the `n/2` wrap-around convention.
    pub fn encrypt_i64<R: Rng + ?Sized>(&self, m: i64, rng: &mut R) -> Ciphertext {
        let encoded = self.public.encode_i64(m);
        self.encrypt(&encoded, rng)
            .expect("encoded value is below n")
    }

    /// Pre-samples short exponents for `count` ciphertexts. Splitting the
    /// (cheap, sequential) RNG draws from the (heavy, parallelisable) table
    /// exponentiations is what lets vector encryption fan out over cores.
    pub(crate) fn sample_exponents<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
    ) -> Vec<BigUint> {
        (0..count).map(|_| sample_short_exponent(rng)).collect()
    }

    /// The randomness component for a pre-sampled exponent.
    pub(crate) fn randomizer_for(&self, x: &BigUint) -> BigUint {
        self.public
            .fast_base(&mut NoRng)
            .pow(x, self.public.n_squared())
    }
}

/// Samples a non-zero [`RANDOMNESS_EXPONENT_BITS`]-bit exponent.
fn sample_short_exponent<R: Rng + ?Sized>(rng: &mut R) -> BigUint {
    loop {
        let x = rng.gen_biguint(RANDOMNESS_EXPONENT_BITS);
        if !x.is_zero() {
            return x;
        }
    }
}

/// Placeholder RNG for paths where the fast-base table is guaranteed to be
/// initialised already (constructing a [`PrecomputedEncryptor`] initialises
/// it); reaching this RNG means a missed initialisation, which is a bug.
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u64(&mut self) -> u64 {
        unreachable!("fast-base table must be initialised before randomizer_for")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use rand::SeedableRng;

    fn setup() -> (crate::PublicKey, crate::PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA57);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn fast_ciphertexts_decrypt_identically_to_naive() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        for m in [0u64, 1, 17, 123_456, u32::MAX as u64, u64::MAX] {
            let fast = enc.encrypt_u64(m, &mut rng);
            let naive = pk.encrypt_u64(m, &mut rng);
            assert_eq!(sk.decrypt_u64(&fast), m);
            assert_eq!(sk.decrypt_u64(&fast), sk.decrypt_u64(&naive));
        }
    }

    #[test]
    fn fast_encryption_is_randomised() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        let a = enc.encrypt_u64(9, &mut rng);
        let b = enc.encrypt_u64(9, &mut rng);
        assert_ne!(a.raw(), b.raw());
        assert_eq!(sk.decrypt_u64(&a), sk.decrypt_u64(&b));
    }

    #[test]
    fn fast_ciphertexts_compose_homomorphically_with_naive_ones() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        let fast = enc.encrypt_u64(20, &mut rng);
        let naive = pk.encrypt_u64(22, &mut rng);
        assert_eq!(sk.decrypt_u64(&fast.add(&naive).unwrap()), 42);
    }

    #[test]
    fn fast_signed_round_trip() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        for m in [0i64, 5, -5, i32::MAX as i64, -(i32::MAX as i64)] {
            assert_eq!(sk.decrypt_i64(&enc.encrypt_i64(m, &mut rng)).unwrap(), m);
        }
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let (pk, _sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        let too_big = pk.n().clone();
        assert_eq!(
            enc.encrypt(&too_big, &mut rng),
            Err(HeError::PlaintextTooLarge)
        );
    }

    #[test]
    fn encryptors_share_one_table_per_key() {
        let (pk, _sk, mut rng) = setup();
        let a = PrecomputedEncryptor::new(&pk, &mut rng);
        let b = PrecomputedEncryptor::new(&pk, &mut rng);
        // Both encryptors resolve to the same lazily built table: the
        // underlying handle is shared, so pointer equality holds.
        assert!(std::ptr::eq(
            a.public_key().fast_base(&mut rng),
            b.public_key().fast_base(&mut rng),
        ));
    }

    #[test]
    fn windowed_pow_matches_modpow() {
        let (pk, _sk, mut rng) = setup();
        let base = pk.fast_base(&mut rng);
        // Recover h = table value for exponent 1 and compare windowed powers
        // against the generic modpow for random short exponents.
        let h = base.pow(&BigUint::from(1u32), pk.n_squared());
        for _ in 0..10 {
            let x = rng.gen_biguint(RANDOMNESS_EXPONENT_BITS);
            assert_eq!(base.pow(&x, pk.n_squared()), h.modpow(&x, pk.n_squared()));
        }
    }
}
