//! Precomputed-base Paillier encryption — the hot path.
//!
//! Textbook Paillier encryption spends almost all of its time computing the
//! randomness component `rⁿ mod n²`: an exponentiation with an *n-sized*
//! (1024–2048 bit) exponent, repeated for every registry slot of every
//! client. This module replaces it with the standard short-exponent,
//! fixed-base construction:
//!
//! 1. **Once per key**: pick a random `g₀ ∈ Z*_n` and precompute
//!    `h = g₀ⁿ mod n²`. `h` is a uniformly random *n-th residue*, i.e. a
//!    random element of exactly the subgroup textbook randomness `rⁿ` lives
//!    in.
//! 2. **Once per key**: build a windowed fixed-base power table for `h`
//!    (all `h^(d·16ʷ)` for digits `d ∈ [1, 15]` and window positions `w`), so
//!    any power of `h` with a [`RANDOMNESS_EXPONENT_BITS`]-bit exponent costs
//!    ~64 modular multiplications and **zero** squarings.
//! 3. **Per ciphertext**: sample a short random exponent `x` and encrypt as
//!    `c = (1 + m·n) · hˣ mod n²`.
//!
//! ## Security argument
//!
//! Replacing `rⁿ` (uniform in the n-th–residue subgroup) by `hˣ` (a random
//! power of a random subgroup element) with a `2λ`-bit exponent is the
//! standard short-exponent optimisation for Paillier: it is exactly the
//! scheme described in §6 of Damgård–Jurik ("the subgroup variant"), and it
//! is what production libraries ship — python-paillier (used by the paper)
//! exposes the same trade-off as `EncryptedNumber`'s obfuscation with
//! `r_value` precomputation, and rust-paillier/libpaillier provide
//! "precomputed randomness" APIs built on the same identity. Distinguishing
//! `hˣ` from uniform in the subgroup is the short-exponent discrete-log
//! assumption with a `2λ = 256`-bit exponent, which comfortably matches the
//! ~112–128-bit security of 2048-bit moduli. Ciphertexts remain *bitwise
//! ordinary* Paillier ciphertexts: decryption, homomorphic addition and all
//! transport paths are unchanged, which the property tests assert.
//!
//! ## Expected speed-up
//!
//! Binary exponentiation with an n-sized exponent costs ≈ `|n|` squarings
//! plus `|n|/2` multiplications mod `n²`; the windowed fixed-base path costs
//! `RANDOMNESS_EXPONENT_BITS / 4` multiplications. At 1024-bit keys that is
//! ≈ 1536 vs 64 heavy operations — an order of magnitude on the randomness
//! component, and 5–10× end-to-end once the (cheap) message component and
//! final multiplication are included. The `paillier_ops` criterion bench
//! measures both paths side by side.
//!
//! ## The CRT-split tier
//!
//! Parties that hold the *keypair* — in Dubhe, every selection client and
//! the agent, but never the coordinator — can do better still:
//! [`CrtEncryptor`] evaluates the same fixed-base table modulo `p²` and
//! `q²` (half-width operands, so each multiplication costs about a quarter
//! of its `n²` counterpart), entirely inside the Montgomery domain of the
//! private key's cached contexts, and Garner-recombines the two legs to the
//! unique residue mod `n²`. Because both tiers share one `h` per key handle
//! and the same exponent sampling, their ciphertexts are **bit-for-bit
//! identical** given the same randomness stream — measured ≥2.5× over
//! [`PrecomputedEncryptor`] on scalar and registry-vector encryption.
//! [`EpochEncryptor::for_key_material`] picks the best tier the key
//! material in hand supports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use num_bigint::{BigUint, MontgomeryContext, MontgomeryOperand, MontgomeryScratch, RandBigInt};
use num_traits::{One, Zero};
use rand::Rng;

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::keys::{Keypair, PrivateKey, PublicKey};
use crate::prime::mod_inverse;
use crate::vector::map_indexed;

/// Bit length of the short randomness exponent `x` (≈ 2× the 128-bit
/// security level targeted by 2048-bit moduli).
pub const RANDOMNESS_EXPONENT_BITS: u64 = 256;

/// Window width of the fixed-base table (4 bits → 15 stored powers per
/// window, one multiplication per window during exponentiation).
const WINDOW_BITS: u64 = 4;

/// Window width of the batch-only wide table (8 bits → 255 stored powers
/// per window, half as many multiplications per exponent as the 4-bit walk).
const WIDE_WINDOW_BITS: u64 = 8;

/// Cumulative elements an encryptor must have batch-encrypted before its
/// 8-bit wide tables are built. Expanding a wide table costs
/// `32 rows × 254` multiplications per leg while saving ~28 per element, so
/// the break-even sits near 300 elements per leg; one-shot registry
/// encryptions (a simulated client encrypts one 56-element vector, ever)
/// stay on the 4-bit tables and never pay the expansion.
const WIDE_TABLE_MIN_ELEMENTS: u64 = 512;

/// Elements per interleaved-walk chunk: one scratch arena (and one pass of
/// table-row reuse) covers this many exponents, while leaving registry-sized
/// batches enough chunks to fan out over cores.
const BATCH_CHUNK: usize = 4;

/// A windowed fixed-base power table for `h = g₀ⁿ mod n²`.
///
/// Built lazily, once per key, behind the shared [`PublicKey`] handle; every
/// ciphertext produced under the key amortises it. Generated keys (odd `n²`)
/// hold the table in the Montgomery domain of the key's cached context so
/// each window step is one CIOS multiplication; a forged even-modulus key
/// falls back to plain multiply-and-divide rows with identical results.
#[derive(Debug)]
pub(crate) enum FastBase {
    /// Montgomery-domain table + batch state (the real-key path).
    Mont {
        leg: WindowLeg,
        batch: BatchState<WideLeg>,
    },
    /// Plain-residue table for even (forged) moduli.
    Plain {
        /// `table[w][d-1] = h^(d · 2^(4w)) mod n²` for `d ∈ [1, 15]`.
        table: Vec<Vec<BigUint>>,
    },
}

impl FastBase {
    /// Expands the window table for the key's shared subgroup generator `h`
    /// (see [`sample_subgroup_h`] — both encryptor tiers derive from the
    /// same `h`, which is what keeps their ciphertexts interchangeable).
    pub(crate) fn new(public: &PublicKey, h: &BigUint) -> Self {
        if let Some(ctx) = public.mont_n2() {
            return FastBase::Mont {
                leg: WindowLeg::new(ctx, h),
                batch: BatchState::default(),
            };
        }
        let n_squared = public.n_squared();
        let windows = RANDOMNESS_EXPONENT_BITS.div_ceil(WINDOW_BITS) as usize;
        let mut table = Vec::with_capacity(windows);
        let mut window_base = h.clone();
        for w in 0..windows {
            let mut row = Vec::with_capacity(15);
            row.push(window_base.clone());
            for d in 1..15 {
                let next = (&row[d - 1] * &window_base) % n_squared;
                row.push(next);
            }
            if w + 1 < windows {
                // base of the next window: h^(16^(w+1)) = (h^16^w)^16.
                window_base = (&row[14] * &window_base) % n_squared;
            }
            table.push(row);
        }
        FastBase::Plain { table }
    }

    /// `hˣ mod n²` by one table lookup + multiplication per non-zero 4-bit
    /// digit of `x`.
    pub(crate) fn pow(&self, x: &BigUint, n_squared: &BigUint) -> BigUint {
        let digits = x.to_u64_digits();
        match self {
            FastBase::Mont { leg, .. } => leg.pow(&digits),
            FastBase::Plain { table } => {
                let mut acc: Option<BigUint> = None;
                for (w, row) in table.iter().enumerate() {
                    let digit = window_digit(&digits, w);
                    if digit == 0 {
                        continue;
                    }
                    let factor = &row[digit - 1];
                    acc = Some(match acc {
                        None => factor.clone(),
                        Some(a) => (a * factor) % n_squared,
                    });
                }
                acc.unwrap_or_else(num_traits::One::one)
            }
        }
    }

    /// Batch `hˣ mod n²` for a whole exponent vector: the interleaved
    /// multi-exponentiation walk when the table is Montgomery-domain, the
    /// scalar path otherwise. Bit-identical to mapping [`pow`](Self::pow).
    pub(crate) fn pow_batch(&self, xs: &[BigUint], n_squared: &BigUint) -> Vec<BigUint> {
        match self {
            FastBase::Mont { leg, batch } => {
                let wide = batch.wide_for(xs.len(), || WideLeg::new(leg));
                let digits: Vec<Vec<u64>> = xs.iter().map(BigUint::to_u64_digits).collect();
                let chunks = digits.len().div_ceil(BATCH_CHUNK);
                let per_chunk: Vec<Vec<BigUint>> = map_indexed(chunks, |ci| {
                    let lo = ci * BATCH_CHUNK;
                    let hi = (lo + BATCH_CHUNK).min(digits.len());
                    let mut scratch = MontgomeryScratch::new();
                    leg.pow_chunk(wide, &digits[lo..hi], &mut scratch)
                });
                per_chunk.concat()
            }
            FastBase::Plain { .. } => xs.iter().map(|x| self.pow(x, n_squared)).collect(),
        }
    }
}

/// Shared lazy-upgrade state for the batch evaluator of one encryptor tier:
/// counts cumulative batch-encrypted elements and expands the 8-bit wide
/// tables (`W` is one [`WideLeg`] or a pair) once the volume justifies it.
#[derive(Debug)]
pub(crate) struct BatchState<W> {
    /// Cumulative elements routed through the batch path.
    seen: AtomicU64,
    /// The lazily expanded wide tables.
    wide: OnceLock<W>,
}

impl<W> Default for BatchState<W> {
    fn default() -> Self {
        BatchState {
            seen: AtomicU64::new(0),
            wide: OnceLock::new(),
        }
    }
}

impl<W> BatchState<W> {
    /// Accounts `count` more elements and returns the wide tables if the
    /// cumulative volume has crossed [`WIDE_TABLE_MIN_ELEMENTS`] (expanding
    /// them on the first crossing).
    fn wide_for(&self, count: usize, build: impl FnOnce() -> W) -> Option<&W> {
        let seen = self.seen.fetch_add(count as u64, Ordering::Relaxed) + count as u64;
        (seen >= WIDE_TABLE_MIN_ELEMENTS).then(|| self.wide.get_or_init(build))
    }
}

/// Samples `g₀` and computes the subgroup generator `h = g₀ⁿ mod n²` — the
/// one full-width exponentiation the fixed-base scheme ever pays, through
/// the key's cached Montgomery context. Cached once per key handle (see
/// `PublicKey::subgroup_h`); both encryptor tiers consume the same `h`, so
/// neither needs the other's tables to exist.
pub(crate) fn sample_subgroup_h<R: Rng + ?Sized>(public: &PublicKey, rng: &mut R) -> BigUint {
    let n = public.n();
    let g0 = loop {
        let candidate = rng.gen_biguint_below(n);
        if !candidate.is_zero() {
            break candidate;
        }
    };
    public.pow_mod_n_squared(&g0, n)
}

/// The `w`-th 4-bit window of an exponent given as little-endian limbs.
/// (`WINDOW_BITS` divides 64, so a window never straddles a limb boundary.)
fn window_digit(digits: &[u64], w: usize) -> usize {
    let bit = w as u64 * WINDOW_BITS;
    let limb = digits.get((bit / 64) as usize).copied().unwrap_or(0);
    ((limb >> (bit % 64)) & 0xF) as usize
}

/// The `w`-th 8-bit window (byte) of an exponent given as little-endian
/// limbs.
fn window_digit_wide(digits: &[u64], w: usize) -> usize {
    let bit = w as u64 * WIDE_WINDOW_BITS;
    let limb = digits.get((bit / 64) as usize).copied().unwrap_or(0);
    ((limb >> (bit % 64)) & 0xFF) as usize
}

/// Fast Paillier encryptor bound to one shared [`PublicKey`].
///
/// Construction forces the key's fixed-base table to exist (building it on
/// first use); encryption then replaces the full-width `rⁿ` exponentiation
/// with a short windowed `hˣ`. Ciphertexts decrypt identically to the
/// textbook path — the property tests in `tests/proptest_he.rs` pin this.
///
/// `EncryptedVector::encrypt_u64` and the secure protocol in `dubhe-select`
/// go through this type by default.
#[derive(Debug, Clone)]
pub struct PrecomputedEncryptor {
    public: PublicKey,
}

impl PrecomputedEncryptor {
    /// Binds to `public`, building the shared fixed-base table if this key
    /// has never encrypted fast before.
    pub fn new<R: Rng + ?Sized>(public: &PublicKey, rng: &mut R) -> Self {
        public.fast_base(rng);
        PrecomputedEncryptor {
            public: public.clone(),
        }
    }

    /// The key this encryptor is bound to.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }
}

impl Encryptor for PrecomputedEncryptor {
    fn public_key(&self) -> &PublicKey {
        &self.public
    }

    fn randomizer_for(&self, x: &BigUint) -> BigUint {
        self.public
            .fast_base(&mut NoRng)
            .pow(x, self.public.n_squared())
    }

    fn randomizers_for(&self, xs: &[BigUint]) -> Vec<BigUint> {
        self.public
            .fast_base(&mut NoRng)
            .pow_batch(xs, self.public.n_squared())
    }
}

/// A source of Paillier ciphertext randomness bound to one shared
/// [`PublicKey`]: the common interface of [`PrecomputedEncryptor`] (needs
/// only the public key) and [`CrtEncryptor`] (exploits the private factors).
/// Bulk vector encryption and the protocol roles are generic over it, the
/// scalar `encrypt*` surface is provided once here, and every
/// implementation produces bit-identical ciphertexts from the same
/// randomness stream — only [`randomizer_for`](Self::randomizer_for)'s
/// arithmetic route differs.
pub trait Encryptor: Sync {
    /// The key ciphertexts are produced under.
    fn public_key(&self) -> &PublicKey;

    /// The randomness component `hˣ mod n²` for a pre-sampled short
    /// ([`RANDOMNESS_EXPONENT_BITS`]-bit) exponent `x`. Deterministic:
    /// same `x`, same component, whichever implementation computes it.
    fn randomizer_for(&self, x: &BigUint) -> BigUint;

    /// The randomness components for a whole exponent vector at once.
    /// Semantically `xs.iter().map(|x| self.randomizer_for(x))` — and
    /// bit-identical to it, which the property tests pin — but
    /// implementations route it through the simultaneous
    /// multi-exponentiation evaluator: an interleaved window walk over all
    /// exponents with shared table rows, in-place CIOS through per-chunk
    /// scratch arenas, and (past a volume threshold) lazily widened 8-bit
    /// tables. Registry-vector encryption calls this once per vector.
    fn randomizers_for(&self, xs: &[BigUint]) -> Vec<BigUint> {
        map_indexed(xs.len(), |i| self.randomizer_for(&xs[i]))
    }

    /// Samples a fresh randomness component `hˣ mod n²`.
    fn randomizer<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        let x = sample_short_exponent(rng);
        self.randomizer_for(&x)
    }

    /// Encrypts an arbitrary-precision non-negative integer.
    ///
    /// Returns [`HeError::PlaintextTooLarge`] if `m >= n`.
    fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Result<Ciphertext, HeError> {
        let public = self.public_key();
        if m >= public.n() {
            return Err(HeError::PlaintextTooLarge);
        }
        // g⁰ = 1 and randomizers come out reduced below n², so encrypting
        // zero (most elements of a one-hot registry) is the randomizer
        // itself — no full-width multiply-and-divide.
        let value = if m.is_zero() {
            self.randomizer(rng)
        } else {
            (public.g_to_m(m) * self.randomizer(rng)) % public.n_squared()
        };
        Ok(Ciphertext::from_raw(value, public.clone()))
    }

    /// Encrypts a `u64` plaintext.
    fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> Ciphertext {
        self.encrypt(&BigUint::from(m), rng)
            .expect("u64 always fits in a >=64-bit modulus")
    }

    /// Encrypts a signed integer using the `n/2` wrap-around convention.
    fn encrypt_i64<R: Rng + ?Sized>(&self, m: i64, rng: &mut R) -> Ciphertext {
        let encoded = self.public_key().encode_i64(m);
        self.encrypt(&encoded, rng)
            .expect("encoded value is below n")
    }
}

/// Pre-samples short exponents for `count` ciphertexts. Splitting the
/// (cheap, sequential) RNG draws from the (heavy, parallelisable) table
/// exponentiations is what lets vector encryption fan out over cores.
pub(crate) fn sample_exponents<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<BigUint> {
    (0..count).map(|_| sample_short_exponent(rng)).collect()
}

/// One fixed-base window-table leg: `h mod s` for a leg modulus `s` (`n²`
/// for the single-modulus tier, `p²`/`q²` for the CRT tiers), held entirely
/// in the Montgomery domain of the key's cached context for `s`, so the
/// per-ciphertext windowed product is a chain of CIOS multiplications with a
/// single conversion out.
#[derive(Debug, Clone)]
pub(crate) struct WindowLeg {
    /// The key's Montgomery context for this leg's modulus.
    ctx: MontgomeryContext,
    /// `table[w][d-1]` = Montgomery form of `h^(d·16ʷ) mod s`.
    table: Vec<Vec<MontgomeryOperand>>,
}

impl WindowLeg {
    fn new(ctx: &MontgomeryContext, h: &BigUint) -> Self {
        let windows = RANDOMNESS_EXPONENT_BITS.div_ceil(WINDOW_BITS) as usize;
        let mut table = Vec::with_capacity(windows);
        let mut window_base = ctx.to_montgomery(h);
        for w in 0..windows {
            let mut row = Vec::with_capacity(15);
            row.push(window_base.clone());
            for d in 1..15 {
                row.push(ctx.montgomery_mul(&row[d - 1], &window_base));
            }
            if w + 1 < windows {
                // base of the next window: h^(16^(w+1)) = (h^16^w)^16.
                window_base = ctx.montgomery_mul(&row[14], &window_base);
            }
            table.push(row);
        }
        WindowLeg {
            ctx: ctx.clone(),
            table,
        }
    }

    /// `hˣ mod s` for the exponent given as little-endian limbs: an
    /// in-domain product over the non-zero windows, one conversion out.
    fn pow(&self, digits: &[u64]) -> BigUint {
        let mut acc: Option<MontgomeryOperand> = None;
        for (w, row) in self.table.iter().enumerate() {
            let digit = window_digit(digits, w);
            if digit == 0 {
                continue;
            }
            let factor = &row[digit - 1];
            acc = Some(match acc {
                None => factor.clone(),
                Some(a) => self.ctx.montgomery_mul(&a, factor),
            });
        }
        match acc {
            None => BigUint::one(),
            Some(a) => self.ctx.from_montgomery(&a),
        }
    }

    /// Simultaneous multi-exponentiation of one chunk of exponents: the
    /// window loop is outermost and the per-exponent accumulators advance
    /// together, so each table row is loaded once per chunk (not once per
    /// element) and every multiplication is an in-place CIOS through one
    /// shared scratch arena. With `wide` tables the walk reads 8-bit digits
    /// (half the multiplications); either way the result is the unique
    /// `hˣ mod s`, bit-identical to [`pow`](Self::pow).
    fn pow_chunk(
        &self,
        wide: Option<&WideLeg>,
        digits: &[Vec<u64>],
        scratch: &mut MontgomeryScratch,
    ) -> Vec<BigUint> {
        let mut accs: Vec<Option<MontgomeryOperand>> = vec![None; digits.len()];
        let rows: &[Vec<MontgomeryOperand>] = match wide {
            Some(w) => &w.table,
            None => &self.table,
        };
        let digit_of = if wide.is_some() {
            window_digit_wide
        } else {
            window_digit
        };
        for (w, row) in rows.iter().enumerate() {
            for (acc, d) in accs.iter_mut().zip(digits) {
                let digit = digit_of(d, w);
                if digit == 0 {
                    continue;
                }
                let factor = &row[digit - 1];
                if let Some(a) = acc.as_mut() {
                    self.ctx.montgomery_mul_assign(a, factor, scratch);
                } else {
                    *acc = Some(factor.clone());
                }
            }
        }
        accs.iter()
            .map(|acc| match acc {
                None => BigUint::one(),
                Some(a) => self.ctx.from_montgomery(a),
            })
            .collect()
    }
}

/// The 8-bit wide-window companion of a [`WindowLeg`]: `table[w][d-1]` =
/// Montgomery form of `h^(d·256ʷ) mod s` for `d ∈ [1, 255]`. Expanded
/// lazily from the 4-bit table (window `w` here starts at the narrow
/// table's window `2w`, digit 1) once an encryptor has batch-processed
/// enough elements to amortise the `32 × 254` multiplications per leg.
#[derive(Debug)]
pub(crate) struct WideLeg {
    table: Vec<Vec<MontgomeryOperand>>,
}

impl WideLeg {
    fn new(narrow: &WindowLeg) -> Self {
        let windows = RANDOMNESS_EXPONENT_BITS.div_ceil(WIDE_WINDOW_BITS) as usize;
        // Rows are independent given the narrow table's window bases, so the
        // (one-off) expansion fans out over cores.
        let table = map_indexed(windows, |w| {
            let base = &narrow.table[2 * w][0];
            let mut scratch = MontgomeryScratch::new();
            let mut row = Vec::with_capacity(255);
            row.push(base.clone());
            for d in 1..255 {
                let mut next = row[d - 1].clone();
                narrow
                    .ctx
                    .montgomery_mul_assign(&mut next, base, &mut scratch);
                row.push(next);
            }
            row
        });
        WideLeg { table }
    }
}

/// CRT-split fast Paillier encryptor — the hot path when the *keypair* is
/// available (clients and the agent hold it; the coordinator, which never
/// sees the private key, structurally cannot build one).
///
/// Instead of evaluating the fixed-base table modulo `n²`, the randomness
/// component `hˣ` is evaluated modulo `p²` and `q²` — half-width operands,
/// so each multiplication costs a quarter of its full-width counterpart —
/// through the private key's cached Montgomery contexts, and the two legs
/// are CRT-recombined to the unique residue mod `n² = p²·q²`. The output is
/// **bit-for-bit identical** to [`PrecomputedEncryptor`] for the same key
/// handle and randomness stream (both compute the same `hˣ mod n²`), which
/// the property tests pin; only the arithmetic route differs.
#[derive(Debug, Clone)]
pub struct CrtEncryptor {
    public: PublicKey,
    p_leg: WindowLeg,
    q_leg: WindowLeg,
    /// `p²` (the p-leg modulus), cached for the recombination arithmetic.
    p_squared: BigUint,
    /// `q²` (the q-leg modulus).
    q_squared: BigUint,
    /// `(q²)⁻¹ mod p²` (Garner's recombination constant), stored in the
    /// Montgomery domain of the p² context so the recombination reduction
    /// is one CIOS multiply — `(q2_inv·R)·diff·R⁻¹ = q2_inv·diff mod p²` —
    /// instead of a full-width multiply plus a Knuth division.
    q2_inv_mont: MontgomeryOperand,
    /// Batch-volume counter + lazily widened per-leg 8-bit tables, shared
    /// by clones so every handle to this encryptor amortises one expansion.
    batch: Arc<BatchState<(WideLeg, WideLeg)>>,
}

impl CrtEncryptor {
    /// Binds to a keypair, building (or reusing) the key's shared fixed-base
    /// table and expanding its per-leg Montgomery window tables.
    pub fn new<R: Rng + ?Sized>(keypair: &Keypair, rng: &mut R) -> Result<Self, HeError> {
        CrtEncryptor::from_keys(&keypair.public, &keypair.private, rng)
    }

    /// [`new`](Self::new) from the two key halves. Returns
    /// [`HeError::KeyMismatch`] if `private` does not belong to `public`.
    pub fn from_keys<R: Rng + ?Sized>(
        public: &PublicKey,
        private: &PrivateKey,
        rng: &mut R,
    ) -> Result<Self, HeError> {
        if !private.public.same_key(public) {
            return Err(HeError::KeyMismatch);
        }
        // The same h = g₀ⁿ as the single-modulus path: encryptors on the
        // same key handle share one subgroup generator, which is what makes
        // their outputs interchangeable bit for bit — without forcing the
        // full-width n² window table (which only the precomputed tier uses)
        // to exist.
        let h = public.subgroup_h(rng).clone();
        let (p_ctx, q_ctx) = private.crt_contexts();
        let p_squared = p_ctx.modulus().clone();
        let q_squared = q_ctx.modulus().clone();
        let q2_inv =
            mod_inverse(&(&q_squared % &p_squared), &p_squared).ok_or(HeError::MalformedKey {
                detail: "q² is not invertible modulo p²",
            })?;
        Ok(CrtEncryptor {
            public: public.clone(),
            p_leg: WindowLeg::new(p_ctx, &h),
            q_leg: WindowLeg::new(q_ctx, &h),
            p_squared,
            q_squared,
            q2_inv_mont: p_ctx.to_montgomery(&q2_inv),
            batch: Arc::new(BatchState::default()),
        })
    }

    /// Garner recombination of the two leg residues to the unique residue
    /// below `n² = p²·q²`: `c = a_q + q²·((a_p − a_q)·(q²)⁻¹ mod p²)`.
    fn recombine(&self, a_p: BigUint, a_q: BigUint) -> BigUint {
        let a_q_mod_p = &a_q % &self.p_squared;
        let diff = if a_p >= a_q_mod_p {
            a_p - a_q_mod_p
        } else {
            &self.p_squared - (a_q_mod_p - a_p)
        };
        let t = self
            .p_leg
            .ctx
            .montgomery_mul_residue(&self.q2_inv_mont, &diff)
            .raw_residue();
        a_q + &self.q_squared * t
    }
}

impl Encryptor for CrtEncryptor {
    fn public_key(&self) -> &PublicKey {
        &self.public
    }

    fn randomizer_for(&self, x: &BigUint) -> BigUint {
        let digits = x.to_u64_digits();
        let a_p = self.p_leg.pow(&digits);
        let a_q = self.q_leg.pow(&digits);
        self.recombine(a_p, a_q)
    }

    fn randomizers_for(&self, xs: &[BigUint]) -> Vec<BigUint> {
        let wide = self.batch.wide_for(xs.len(), || {
            (WideLeg::new(&self.p_leg), WideLeg::new(&self.q_leg))
        });
        let digits: Vec<Vec<u64>> = xs.iter().map(BigUint::to_u64_digits).collect();
        let chunks = digits.len().div_ceil(BATCH_CHUNK);
        let per_chunk: Vec<Vec<BigUint>> = map_indexed(chunks, |ci| {
            let lo = ci * BATCH_CHUNK;
            let hi = (lo + BATCH_CHUNK).min(digits.len());
            let mut scratch = MontgomeryScratch::new();
            let a_p = self
                .p_leg
                .pow_chunk(wide.map(|w| &w.0), &digits[lo..hi], &mut scratch);
            let a_q = self
                .q_leg
                .pow_chunk(wide.map(|w| &w.1), &digits[lo..hi], &mut scratch);
            a_p.into_iter()
                .zip(a_q)
                .map(|(p, q)| self.recombine(p, q))
                .collect()
        });
        per_chunk.concat()
    }
}

/// The encryptor an epoch participant uses, chosen from the key material it
/// holds: parties with the private key (selection clients, the agent, the
/// simulator) run the CRT-split path, public-key-only parties the
/// single-modulus precomputed path. The choice is invisible downstream —
/// both produce bit-identical ciphertexts from the same randomness stream.
// The CRT variant carries two per-leg window tables and is built once per
// epoch per participant, then only borrowed; boxing it would add a pointer
// chase to every randomizer evaluation for no allocation win that matters.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum EpochEncryptor {
    /// Public-key-only fixed-base path.
    Precomputed(PrecomputedEncryptor),
    /// CRT-split `p²`/`q²` path (requires the private factors).
    Crt(CrtEncryptor),
}

impl EpochEncryptor {
    /// Picks the fastest encryptor the given key material supports. Falls
    /// back to the precomputed path if the private half is absent (or, for a
    /// forged key, fails CRT precomputation).
    pub fn for_key_material<R: Rng + ?Sized>(
        public: &PublicKey,
        private: Option<&PrivateKey>,
        rng: &mut R,
    ) -> Self {
        if let Some(sk) = private {
            if let Ok(crt) = CrtEncryptor::from_keys(public, sk, rng) {
                return EpochEncryptor::Crt(crt);
            }
        }
        EpochEncryptor::Precomputed(PrecomputedEncryptor::new(public, rng))
    }

    /// `true` if this is the CRT-split path.
    pub fn is_crt(&self) -> bool {
        matches!(self, EpochEncryptor::Crt(_))
    }
}

impl Encryptor for EpochEncryptor {
    fn public_key(&self) -> &PublicKey {
        match self {
            EpochEncryptor::Precomputed(e) => e.public_key(),
            EpochEncryptor::Crt(e) => e.public_key(),
        }
    }

    fn randomizer_for(&self, x: &BigUint) -> BigUint {
        match self {
            EpochEncryptor::Precomputed(e) => e.randomizer_for(x),
            EpochEncryptor::Crt(e) => e.randomizer_for(x),
        }
    }

    fn randomizers_for(&self, xs: &[BigUint]) -> Vec<BigUint> {
        match self {
            EpochEncryptor::Precomputed(e) => e.randomizers_for(xs),
            EpochEncryptor::Crt(e) => e.randomizers_for(xs),
        }
    }
}

/// Samples a non-zero [`RANDOMNESS_EXPONENT_BITS`]-bit exponent.
fn sample_short_exponent<R: Rng + ?Sized>(rng: &mut R) -> BigUint {
    loop {
        let x = rng.gen_biguint(RANDOMNESS_EXPONENT_BITS);
        if !x.is_zero() {
            return x;
        }
    }
}

/// Placeholder RNG for paths where the fast-base table is guaranteed to be
/// initialised already (constructing a [`PrecomputedEncryptor`] initialises
/// it); reaching this RNG means a missed initialisation, which is a bug.
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u64(&mut self) -> u64 {
        unreachable!("fast-base table must be initialised before randomizer_for")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use rand::SeedableRng;

    fn setup() -> (crate::PublicKey, crate::PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA57);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn fast_ciphertexts_decrypt_identically_to_naive() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        for m in [0u64, 1, 17, 123_456, u32::MAX as u64, u64::MAX] {
            let fast = enc.encrypt_u64(m, &mut rng);
            let naive = pk.encrypt_u64(m, &mut rng);
            assert_eq!(sk.decrypt_u64(&fast), m);
            assert_eq!(sk.decrypt_u64(&fast), sk.decrypt_u64(&naive));
        }
    }

    #[test]
    fn fast_encryption_is_randomised() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        let a = enc.encrypt_u64(9, &mut rng);
        let b = enc.encrypt_u64(9, &mut rng);
        assert_ne!(a.raw(), b.raw());
        assert_eq!(sk.decrypt_u64(&a), sk.decrypt_u64(&b));
    }

    #[test]
    fn fast_ciphertexts_compose_homomorphically_with_naive_ones() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        let fast = enc.encrypt_u64(20, &mut rng);
        let naive = pk.encrypt_u64(22, &mut rng);
        assert_eq!(sk.decrypt_u64(&fast.add(&naive).unwrap()), 42);
    }

    #[test]
    fn fast_signed_round_trip() {
        let (pk, sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        for m in [0i64, 5, -5, i32::MAX as i64, -(i32::MAX as i64)] {
            assert_eq!(sk.decrypt_i64(&enc.encrypt_i64(m, &mut rng)).unwrap(), m);
        }
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let (pk, _sk, mut rng) = setup();
        let enc = PrecomputedEncryptor::new(&pk, &mut rng);
        let too_big = pk.n().clone();
        assert_eq!(
            enc.encrypt(&too_big, &mut rng),
            Err(HeError::PlaintextTooLarge)
        );
    }

    #[test]
    fn encryptors_share_one_table_per_key() {
        let (pk, _sk, mut rng) = setup();
        let a = PrecomputedEncryptor::new(&pk, &mut rng);
        let b = PrecomputedEncryptor::new(&pk, &mut rng);
        // Both encryptors resolve to the same lazily built table: the
        // underlying handle is shared, so pointer equality holds.
        assert!(std::ptr::eq(
            a.public_key().fast_base(&mut rng),
            b.public_key().fast_base(&mut rng),
        ));
    }

    #[test]
    fn epoch_encryptor_picks_the_crt_tier_from_the_key_material() {
        let (pk, sk, mut rng) = setup();
        let with_private = EpochEncryptor::for_key_material(&pk, Some(&sk), &mut rng);
        assert!(with_private.is_crt(), "keypair holders get the CRT tier");
        let public_only = EpochEncryptor::for_key_material(&pk, None, &mut rng);
        assert!(!public_only.is_crt(), "public-only parties cannot");
        // Whichever tier was picked, the ciphertexts interoperate.
        let sum = with_private
            .encrypt_u64(20, &mut rng)
            .add(&public_only.encrypt_u64(22, &mut rng))
            .unwrap();
        assert_eq!(sk.decrypt_u64(&sum), 42);
    }

    #[test]
    fn batch_randomizers_are_bit_identical_to_the_scalar_path() {
        let (pk, sk, mut rng) = setup();
        let crt = CrtEncryptor::from_keys(&pk, &sk, &mut rng).unwrap();
        let pre = PrecomputedEncryptor::new(&pk, &mut rng);
        for len in [0usize, 1, 3, 7, 56] {
            let xs: Vec<BigUint> = (0..len)
                .map(|_| rng.gen_biguint(RANDOMNESS_EXPONENT_BITS))
                .collect();
            let scalar: Vec<BigUint> = xs.iter().map(|x| crt.randomizer_for(x)).collect();
            assert_eq!(crt.randomizers_for(&xs), scalar, "crt tier, len {len}");
            assert_eq!(
                pre.randomizers_for(&xs),
                scalar,
                "precomputed tier, len {len}"
            );
        }
    }

    #[test]
    fn batch_randomizers_stay_bit_identical_past_the_wide_table_upgrade() {
        let (pk, sk, mut rng) = setup();
        let crt = CrtEncryptor::from_keys(&pk, &sk, &mut rng).unwrap();
        let pre = PrecomputedEncryptor::new(&pk, &mut rng);
        let xs: Vec<BigUint> = (0..48)
            .map(|_| rng.gen_biguint(RANDOMNESS_EXPONENT_BITS))
            .collect();
        let scalar: Vec<BigUint> = xs.iter().map(|x| crt.randomizer_for(x)).collect();
        // Drive both tiers' cumulative counters across WIDE_TABLE_MIN_ELEMENTS;
        // every round — before, straddling and after the 8-bit upgrade —
        // must reproduce the scalar path exactly.
        let rounds = (2 * WIDE_TABLE_MIN_ELEMENTS as usize) / xs.len() + 1;
        for round in 0..rounds {
            assert_eq!(crt.randomizers_for(&xs), scalar, "crt tier, round {round}");
            assert_eq!(pre.randomizers_for(&xs), scalar, "pre tier, round {round}");
        }
    }

    #[test]
    fn windowed_pow_matches_modpow() {
        let (pk, _sk, mut rng) = setup();
        let base = pk.fast_base(&mut rng);
        // Recover h = table value for exponent 1 and compare windowed powers
        // against the generic modpow for random short exponents.
        let h = base.pow(&BigUint::from(1u32), pk.n_squared());
        for _ in 0..10 {
            let x = rng.gen_biguint(RANDOMNESS_EXPONENT_BITS);
            assert_eq!(base.pow(&x, pk.n_squared()), h.modpow(&x, pk.n_squared()));
        }
    }
}
