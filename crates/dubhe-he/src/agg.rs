//! Montgomery-domain running aggregation of encrypted vectors.
//!
//! The coordinator folds client registries into one homomorphic sum *as they
//! arrive*: per arriving vector, one modular multiplication per registry
//! position. Done naively that multiplication is a full-width product
//! followed by a Knuth division by `n²` — the division being pure overhead,
//! because the key's cached [`MontgomeryContext`] can reduce with shifts and
//! adds instead.
//!
//! [`RunningFold`] keeps the entire running state **inside the Montgomery
//! domain**: arriving residues are multiplied in with a single CIOS
//! multiplication each (no per-element conversion — the fold tracks the
//! accumulated `R⁻¹` deficit instead), and the state is converted out once
//! per position when the total is read. The produced ciphertexts are
//! **bit-for-bit identical** to a left-to-right
//! [`EncryptedVector::add`](crate::EncryptedVector::add) chain (and to
//! [`sum_vectors_serial`](crate::sum_vectors_serial)): a modular product does
//! not depend on the reduction route. The property tests pin this for every
//! fold shape the coordinators use.
//!
//! Keys whose modulus is even (impossible for generated keys, conceivable
//! for forged wire material) have no Montgomery context; the fold silently
//! degrades to plain reductions with the same results.

use num_bigint::{BigUint, MontgomeryOperand};

use crate::ciphertext::Ciphertext;
use crate::codec;
use crate::error::HeError;
use crate::keys::PublicKey;
use crate::transport::ciphertext_size_bytes;
use crate::vector::{for_each_chunk_with_scratch, map_indexed, EncryptedVector, ScratchPool};

#[cfg(doc)]
use num_bigint::MontgomeryContext;

/// The per-position accumulators of a [`RunningFold`].
#[derive(Debug, Clone)]
enum FoldState {
    /// In-domain accumulators: after folding `folded` vectors, position `i`
    /// stores the true running product times `R^-(folded - 1)`.
    Mont(Vec<MontgomeryOperand>),
    /// Plain residues (even-modulus fallback).
    Plain(Vec<BigUint>),
}

/// A running homomorphic sum of same-shape encrypted vectors, accumulated in
/// the Montgomery domain of the key's cached `n²` context.
///
/// One CIOS multiplication per position per folded vector; one conversion
/// out per position when [`total`](Self::total) is read. Equivalent, bit for
/// bit, to folding with [`EncryptedVector::add`] — just without paying a
/// full-width division per element.
#[derive(Debug, Clone)]
pub struct RunningFold {
    public: PublicKey,
    /// How many vectors have been folded in (≥ 1).
    folded: u64,
    state: FoldState,
    /// Pooled per-chunk CIOS scratch arenas: warmed by the first fold, then
    /// reused so the steady state allocates nothing per element.
    scratch: ScratchPool,
}

impl RunningFold {
    /// Seeds the fold with its first vector.
    pub fn new(v: &EncryptedVector) -> Self {
        let public = v.public_key().clone();
        let state = match public.mont_n2() {
            Some(ctx) => FoldState::Mont(
                v.elements()
                    .iter()
                    .map(|c| ctx.montgomery_residue(c.raw()))
                    .collect(),
            ),
            None => FoldState::Plain(v.elements().iter().map(|c| c.raw().clone()).collect()),
        };
        RunningFold {
            public,
            folded: 1,
            state,
            scratch: ScratchPool::new(),
        }
    }

    /// Seeds the fold straight from a borrowed frame view — the zero-copy
    /// twin of [`new`](Self::new), bit-identical to decoding the vector and
    /// seeding from it.
    pub fn from_view(v: &codec::EncryptedVectorView<'_>) -> Self {
        let public = v.public_key().clone();
        let state = match public.mont_n2() {
            Some(ctx) => FoldState::Mont(
                (0..v.len())
                    .map(|i| {
                        ctx.operand_from_be_bytes(v.residue_bytes(i))
                            .expect("view residues are validated below n²")
                    })
                    .collect(),
            ),
            None => FoldState::Plain(
                (0..v.len())
                    .map(|i| BigUint::from_bytes_be(v.residue_bytes(i)))
                    .collect(),
            ),
        };
        RunningFold {
            public,
            folded: 1,
            state,
            scratch: ScratchPool::new(),
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        match &self.state {
            FoldState::Mont(e) => e.len(),
            FoldState::Plain(e) => e.len(),
        }
    }

    /// `true` if the fold has no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many vectors have been folded in so far.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// The key every folded vector was encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Folds one more vector into the running sum. Shape and key mismatches
    /// are typed errors, exactly like [`EncryptedVector::add`].
    pub fn fold(&mut self, v: &EncryptedVector) -> Result<(), HeError> {
        if v.len() != self.len() {
            return Err(HeError::LengthMismatch {
                left: self.len(),
                right: v.len(),
            });
        }
        if !v.public_key().same_key(&self.public) {
            return Err(HeError::KeyMismatch);
        }
        let public = &self.public;
        match &mut self.state {
            FoldState::Mont(elems) => {
                // In-place CIOS through the pooled arenas: the steady-state
                // fold touches the heap zero times per element (pinned by
                // tests/alloc_counting.rs).
                let ctx = public.mont_n2().expect("Mont state implies a context");
                let arriving = v.elements();
                for_each_chunk_with_scratch(elems, &self.scratch, |offset, block, scratch| {
                    for (j, acc) in block.iter_mut().enumerate() {
                        ctx.montgomery_mul_residue_assign(acc, arriving[offset + j].raw(), scratch);
                    }
                });
            }
            FoldState::Plain(elems) => {
                let n_squared = public.n_squared();
                let next = map_indexed(elems.len(), |i| {
                    (&elems[i] * v.elements()[i].raw()) % n_squared
                });
                *elems = next;
            }
        }
        self.folded += 1;
        Ok(())
    }

    /// Folds a borrowed frame view into the running sum without ever
    /// materialising its ciphertexts: each residue is staged from its
    /// big-endian frame bytes directly into the CIOS kernel
    /// ([`MontgomeryContext::montgomery_mul_be_assign`]), so the steady
    /// state touches the heap zero times per element. Bit-identical to
    /// [`fold`](Self::fold) of the materialised vector; shape and key
    /// mismatches are the same typed errors.
    pub fn fold_view(&mut self, v: &codec::EncryptedVectorView<'_>) -> Result<(), HeError> {
        if v.len() != self.len() {
            return Err(HeError::LengthMismatch {
                left: self.len(),
                right: v.len(),
            });
        }
        if !v.public_key().same_key(&self.public) {
            return Err(HeError::KeyMismatch);
        }
        let public = &self.public;
        match &mut self.state {
            FoldState::Mont(elems) => {
                let ctx = public.mont_n2().expect("Mont state implies a context");
                for_each_chunk_with_scratch(elems, &self.scratch, |offset, block, scratch| {
                    for (j, acc) in block.iter_mut().enumerate() {
                        // The view validated every residue below n² at decode
                        // time, so the staging multiply cannot refuse.
                        let ok =
                            ctx.montgomery_mul_be_assign(acc, v.residue_bytes(offset + j), scratch);
                        debug_assert!(ok, "view residues are validated below n²");
                    }
                });
            }
            FoldState::Plain(elems) => {
                let n_squared = public.n_squared();
                let next = map_indexed(elems.len(), |i| {
                    (&elems[i] * &BigUint::from_bytes_be(v.residue_bytes(i))) % n_squared
                });
                *elems = next;
            }
        }
        self.folded += 1;
        Ok(())
    }

    /// The running total as an ordinary encrypted vector: converts every
    /// position out of the Montgomery domain (one correction multiply + one
    /// exit multiply each). Non-destructive — the fold can keep advancing.
    pub fn total(&self) -> EncryptedVector {
        let elements = match &self.state {
            FoldState::Mont(elems) => {
                let ctx = self.public.mont_n2().expect("Mont state implies a context");
                // `folded` vectors went through `folded - 1` in-domain
                // multiplies (deficit R^-(folded-1)); multiplying by
                // R^(folded+1) and exiting lands exactly on the product.
                let correction = ctx.montgomery_residue(&ctx.r_power(self.folded + 1));
                map_indexed(elems.len(), |i| {
                    let value = ctx.from_montgomery(&ctx.montgomery_mul(&elems[i], &correction));
                    Ciphertext::from_raw(value, self.public.clone())
                })
            }
            FoldState::Plain(elems) => map_indexed(elems.len(), |i| {
                Ciphertext::from_raw(elems[i].clone(), self.public.clone())
            }),
        };
        EncryptedVector::from_raw_parts(elements, self.public.clone())
    }

    /// Serializes the fold's **in-domain** state for crash recovery:
    ///
    /// ```text
    /// snapshot := u8 kind (0 = Mont, 1 = Plain)
    ///           | u64 folded
    ///           | public key
    ///           | u32 count | count × residue (ciphertext width)
    /// ```
    ///
    /// Montgomery accumulators are dumped as their raw residues (no domain
    /// exit), so [`restore`](Self::restore) rebuilds them limb-for-limb and a
    /// resumed fold is bit-identical to one that never stopped — pinned by
    /// the property tests across lengths and interruption points.
    pub fn snapshot(&self) -> Result<Vec<u8>, HeError> {
        let width = ciphertext_size_bytes(&self.public);
        let mut out = Vec::new();
        let (kind, residues): (u8, Vec<BigUint>) = match &self.state {
            FoldState::Mont(elems) => (0, elems.iter().map(|op| op.raw_residue()).collect()),
            FoldState::Plain(elems) => (1, elems.clone()),
        };
        out.push(kind);
        codec::put_u64(&mut out, self.folded);
        codec::encode_public_key(&self.public, &mut out);
        codec::put_u32(&mut out, residues.len() as u32);
        for r in &residues {
            codec::put_biguint_fixed(&mut out, r, width)?;
        }
        Ok(out)
    }

    /// Rebuilds a fold from a [`snapshot`](Self::snapshot). Decoding is
    /// defensive: truncation, overrunning counts, a zero fold count, residues
    /// `≥ n²`, and a kind byte that contradicts the restored key's Montgomery
    /// capability are all typed errors.
    pub fn restore(bytes: &[u8]) -> Result<Self, HeError> {
        let cur = &mut &bytes[..];
        let kind = *codec::take_bytes(cur, 1)?.first().expect("one byte taken");
        let folded = codec::take_u64(cur)?;
        if folded == 0 {
            return Err(HeError::MalformedEncoding {
                detail: "fold snapshot claims zero folded vectors",
            });
        }
        let public = codec::decode_public_key(cur)?;
        let count = codec::take_u32(cur)? as usize;
        let width = ciphertext_size_bytes(&public);
        if count
            .checked_mul(width)
            .is_none_or(|total| total > cur.len())
        {
            return Err(HeError::MalformedEncoding {
                detail: "fold snapshot residue count overruns the payload",
            });
        }
        let mut residues = Vec::with_capacity(count);
        for _ in 0..count {
            let value = BigUint::from_bytes_be(codec::take_bytes(cur, width)?);
            if &value >= public.n_squared() {
                return Err(HeError::MalformedEncoding {
                    detail: "fold snapshot residue is not below n²",
                });
            }
            residues.push(value);
        }
        let state = match (kind, public.mont_n2()) {
            (0, Some(ctx)) => {
                FoldState::Mont(residues.iter().map(|r| ctx.montgomery_residue(r)).collect())
            }
            (1, None) => FoldState::Plain(residues),
            (0, None) | (1, Some(_)) => {
                return Err(HeError::MalformedEncoding {
                    detail: "fold snapshot kind contradicts the key's Montgomery capability",
                })
            }
            _ => {
                return Err(HeError::MalformedEncoding {
                    detail: "unknown fold snapshot kind",
                })
            }
        };
        Ok(RunningFold {
            public,
            folded,
            state,
            scratch: ScratchPool::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use crate::vector::sum_vectors_serial;
    use rand::SeedableRng;

    fn vectors(count: usize, len: usize) -> (Keypair, Vec<EncryptedVector>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF01D);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let vs = (0..count)
            .map(|i| {
                let v: Vec<u64> = (0..len).map(|j| ((i * 7 + j) % 5) as u64).collect();
                EncryptedVector::encrypt_u64(&kp.public, &v, &mut rng)
            })
            .collect();
        (kp, vs)
    }

    #[test]
    fn running_fold_is_bit_identical_to_the_serial_fold() {
        for (count, len) in [(1usize, 9usize), (2, 3), (7, 13), (12, 56)] {
            let (_kp, vs) = vectors(count, len);
            let mut fold = RunningFold::new(&vs[0]);
            for v in &vs[1..] {
                fold.fold(v).unwrap();
            }
            assert_eq!(fold.folded(), count as u64);
            let total = fold.total();
            let serial = sum_vectors_serial(&vs).unwrap().unwrap();
            for (i, (a, b)) in total.elements().iter().zip(serial.elements()).enumerate() {
                assert_eq!(a.raw(), b.raw(), "count {count} len {len} position {i}");
            }
        }
    }

    #[test]
    fn view_folds_are_bit_identical_to_owned_folds() {
        for (count, len) in [(1usize, 5usize), (3, 9), (9, 56)] {
            let (_kp, vs) = vectors(count, len);
            let frames: Vec<Vec<u8>> = vs
                .iter()
                .map(|v| {
                    let mut buf = Vec::new();
                    codec::encode_vector(v, &mut buf).unwrap();
                    buf
                })
                .collect();
            let mut owned = RunningFold::new(&vs[0]);
            let mut viewed =
                RunningFold::from_view(&codec::decode_vector_view(&mut &frames[0][..]).unwrap());
            for (v, frame) in vs[1..].iter().zip(&frames[1..]) {
                owned.fold(v).unwrap();
                let view = codec::decode_vector_view(&mut &frame[..]).unwrap();
                viewed.fold_view(&view).unwrap();
            }
            assert_eq!(viewed.folded(), owned.folded());
            let (a, b) = (viewed.total(), owned.total());
            for (i, (x, y)) in a.elements().iter().zip(b.elements()).enumerate() {
                assert_eq!(x.raw(), y.raw(), "count {count} len {len} position {i}");
            }
        }
    }

    #[test]
    fn view_fold_mismatches_are_the_same_typed_errors() {
        let (_kp, vs) = vectors(2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let other = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let mut fold = RunningFold::new(&vs[0]);

        let mut buf = Vec::new();
        let short = EncryptedVector::encrypt_u64(&other.public, &[1, 2, 3], &mut rng);
        codec::encode_vector(&short, &mut buf).unwrap();
        let view = codec::decode_vector_view(&mut &buf[..]).unwrap();
        assert_eq!(
            fold.fold_view(&view).unwrap_err(),
            HeError::LengthMismatch { left: 4, right: 3 }
        );

        let mut buf = Vec::new();
        let foreign = EncryptedVector::encrypt_u64(&other.public, &[1, 2, 3, 4], &mut rng);
        codec::encode_vector(&foreign, &mut buf).unwrap();
        let view = codec::decode_vector_view(&mut &buf[..]).unwrap();
        assert_eq!(fold.fold_view(&view).unwrap_err(), HeError::KeyMismatch);
        assert_eq!(fold.folded(), 1);
    }

    #[test]
    fn total_is_readable_mid_fold() {
        let (kp, vs) = vectors(5, 4);
        let mut fold = RunningFold::new(&vs[0]);
        fold.fold(&vs[1]).unwrap();
        let partial = fold.total();
        let expected = sum_vectors_serial(&vs[..2]).unwrap().unwrap();
        assert_eq!(partial, expected);
        // Reading the total must not perturb further folding.
        for v in &vs[2..] {
            fold.fold(v).unwrap();
        }
        assert_eq!(fold.total(), sum_vectors_serial(&vs).unwrap().unwrap());
        let _ = kp;
    }

    #[test]
    fn snapshot_restore_resumes_bit_identical_to_an_uninterrupted_fold() {
        let (_kp, vs) = vectors(6, 5);
        let mut uninterrupted = RunningFold::new(&vs[0]);
        for v in &vs[1..] {
            uninterrupted.fold(v).unwrap();
        }
        for cut in 1..vs.len() {
            let mut fold = RunningFold::new(&vs[0]);
            for v in &vs[1..cut] {
                fold.fold(v).unwrap();
            }
            let snap = fold.snapshot().unwrap();
            drop(fold); // the "crash"
            let mut resumed = RunningFold::restore(&snap).unwrap();
            assert_eq!(resumed.folded(), cut as u64);
            for v in &vs[cut..] {
                resumed.fold(v).unwrap();
            }
            let total = resumed.total();
            for (i, (a, b)) in total
                .elements()
                .iter()
                .zip(uninterrupted.total().elements())
                .enumerate()
            {
                assert_eq!(a.raw(), b.raw(), "cut {cut} position {i}");
            }
        }
    }

    #[test]
    fn corrupt_snapshots_are_typed_errors() {
        let (_kp, vs) = vectors(2, 3);
        let mut fold = RunningFold::new(&vs[0]);
        fold.fold(&vs[1]).unwrap();
        let snap = fold.snapshot().unwrap();

        for cut in [0, 1, 8, snap.len() / 2, snap.len() - 1] {
            let err = RunningFold::restore(&snap[..cut]).unwrap_err();
            assert!(
                matches!(err, HeError::MalformedEncoding { .. }),
                "cut {cut}: {err}"
            );
        }

        // Unknown kind byte.
        let mut bad = snap.clone();
        bad[0] = 9;
        assert!(RunningFold::restore(&bad).is_err());

        // A zero fold count is never produced and never accepted.
        let mut bad = snap.clone();
        bad[1..9].copy_from_slice(&0u64.to_be_bytes());
        assert!(RunningFold::restore(&bad).is_err());

        // An all-0xFF residue is ≥ n² at the fixed width.
        let mut bad = snap.clone();
        let tail = bad.len();
        bad[tail - 4..].fill(0xFF);
        let width = ciphertext_size_bytes(vs[0].public_key());
        bad[tail - width..].fill(0xFF);
        assert!(RunningFold::restore(&bad).is_err());
    }

    #[test]
    fn shape_and_key_mismatches_are_typed_errors() {
        let (_kp, vs) = vectors(2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let other = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let short = EncryptedVector::encrypt_u64(&other.public, &[1, 2, 3], &mut rng);
        let mut fold = RunningFold::new(&vs[0]);
        assert_eq!(
            fold.fold(&short).unwrap_err(),
            HeError::LengthMismatch { left: 4, right: 3 }
        );
        let foreign = EncryptedVector::encrypt_u64(&other.public, &[1, 2, 3, 4], &mut rng);
        assert_eq!(fold.fold(&foreign).unwrap_err(), HeError::KeyMismatch);
        // Failed folds must not advance the count.
        assert_eq!(fold.folded(), 1);
    }
}
