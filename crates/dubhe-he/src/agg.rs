//! Montgomery-domain running aggregation of encrypted vectors.
//!
//! The coordinator folds client registries into one homomorphic sum *as they
//! arrive*: per arriving vector, one modular multiplication per registry
//! position. Done naively that multiplication is a full-width product
//! followed by a Knuth division by `n²` — the division being pure overhead,
//! because the key's cached [`MontgomeryContext`] can reduce with shifts and
//! adds instead.
//!
//! [`RunningFold`] keeps the entire running state **inside the Montgomery
//! domain**: arriving residues are multiplied in with a single CIOS
//! multiplication each (no per-element conversion — the fold tracks the
//! accumulated `R⁻¹` deficit instead), and the state is converted out once
//! per position when the total is read. The produced ciphertexts are
//! **bit-for-bit identical** to a left-to-right
//! [`EncryptedVector::add`](crate::EncryptedVector::add) chain (and to
//! [`sum_vectors_serial`](crate::sum_vectors_serial)): a modular product does
//! not depend on the reduction route. The property tests pin this for every
//! fold shape the coordinators use.
//!
//! Keys whose modulus is even (impossible for generated keys, conceivable
//! for forged wire material) have no Montgomery context; the fold silently
//! degrades to plain reductions with the same results.

use num_bigint::{BigUint, MontgomeryOperand};

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::keys::PublicKey;
use crate::vector::{map_indexed, EncryptedVector};

#[cfg(doc)]
use num_bigint::MontgomeryContext;

/// The per-position accumulators of a [`RunningFold`].
#[derive(Debug, Clone)]
enum FoldState {
    /// In-domain accumulators: after folding `folded` vectors, position `i`
    /// stores the true running product times `R^-(folded - 1)`.
    Mont(Vec<MontgomeryOperand>),
    /// Plain residues (even-modulus fallback).
    Plain(Vec<BigUint>),
}

/// A running homomorphic sum of same-shape encrypted vectors, accumulated in
/// the Montgomery domain of the key's cached `n²` context.
///
/// One CIOS multiplication per position per folded vector; one conversion
/// out per position when [`total`](Self::total) is read. Equivalent, bit for
/// bit, to folding with [`EncryptedVector::add`] — just without paying a
/// full-width division per element.
#[derive(Debug, Clone)]
pub struct RunningFold {
    public: PublicKey,
    /// How many vectors have been folded in (≥ 1).
    folded: u64,
    state: FoldState,
}

impl RunningFold {
    /// Seeds the fold with its first vector.
    pub fn new(v: &EncryptedVector) -> Self {
        let public = v.public_key().clone();
        let state = match public.mont_n2() {
            Some(ctx) => FoldState::Mont(
                v.elements()
                    .iter()
                    .map(|c| ctx.montgomery_residue(c.raw()))
                    .collect(),
            ),
            None => FoldState::Plain(v.elements().iter().map(|c| c.raw().clone()).collect()),
        };
        RunningFold {
            public,
            folded: 1,
            state,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        match &self.state {
            FoldState::Mont(e) => e.len(),
            FoldState::Plain(e) => e.len(),
        }
    }

    /// `true` if the fold has no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many vectors have been folded in so far.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// The key every folded vector was encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Folds one more vector into the running sum. Shape and key mismatches
    /// are typed errors, exactly like [`EncryptedVector::add`].
    pub fn fold(&mut self, v: &EncryptedVector) -> Result<(), HeError> {
        if v.len() != self.len() {
            return Err(HeError::LengthMismatch {
                left: self.len(),
                right: v.len(),
            });
        }
        if !v.public_key().same_key(&self.public) {
            return Err(HeError::KeyMismatch);
        }
        let public = &self.public;
        match &mut self.state {
            FoldState::Mont(elems) => {
                let ctx = public.mont_n2().expect("Mont state implies a context");
                let next = map_indexed(elems.len(), |i| {
                    ctx.montgomery_mul_residue(&elems[i], v.elements()[i].raw())
                });
                *elems = next;
            }
            FoldState::Plain(elems) => {
                let n_squared = public.n_squared();
                let next = map_indexed(elems.len(), |i| {
                    (&elems[i] * v.elements()[i].raw()) % n_squared
                });
                *elems = next;
            }
        }
        self.folded += 1;
        Ok(())
    }

    /// The running total as an ordinary encrypted vector: converts every
    /// position out of the Montgomery domain (one correction multiply + one
    /// exit multiply each). Non-destructive — the fold can keep advancing.
    pub fn total(&self) -> EncryptedVector {
        let elements = match &self.state {
            FoldState::Mont(elems) => {
                let ctx = self.public.mont_n2().expect("Mont state implies a context");
                // `folded` vectors went through `folded - 1` in-domain
                // multiplies (deficit R^-(folded-1)); multiplying by
                // R^(folded+1) and exiting lands exactly on the product.
                let correction = ctx.montgomery_residue(&ctx.r_power(self.folded + 1));
                map_indexed(elems.len(), |i| {
                    let value = ctx.from_montgomery(&ctx.montgomery_mul(&elems[i], &correction));
                    Ciphertext::from_raw(value, self.public.clone())
                })
            }
            FoldState::Plain(elems) => map_indexed(elems.len(), |i| {
                Ciphertext::from_raw(elems[i].clone(), self.public.clone())
            }),
        };
        EncryptedVector::from_raw_parts(elements, self.public.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use crate::vector::sum_vectors_serial;
    use rand::SeedableRng;

    fn vectors(count: usize, len: usize) -> (Keypair, Vec<EncryptedVector>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF01D);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let vs = (0..count)
            .map(|i| {
                let v: Vec<u64> = (0..len).map(|j| ((i * 7 + j) % 5) as u64).collect();
                EncryptedVector::encrypt_u64(&kp.public, &v, &mut rng)
            })
            .collect();
        (kp, vs)
    }

    #[test]
    fn running_fold_is_bit_identical_to_the_serial_fold() {
        for (count, len) in [(1usize, 9usize), (2, 3), (7, 13), (12, 56)] {
            let (_kp, vs) = vectors(count, len);
            let mut fold = RunningFold::new(&vs[0]);
            for v in &vs[1..] {
                fold.fold(v).unwrap();
            }
            assert_eq!(fold.folded(), count as u64);
            let total = fold.total();
            let serial = sum_vectors_serial(&vs).unwrap().unwrap();
            for (i, (a, b)) in total.elements().iter().zip(serial.elements()).enumerate() {
                assert_eq!(a.raw(), b.raw(), "count {count} len {len} position {i}");
            }
        }
    }

    #[test]
    fn total_is_readable_mid_fold() {
        let (kp, vs) = vectors(5, 4);
        let mut fold = RunningFold::new(&vs[0]);
        fold.fold(&vs[1]).unwrap();
        let partial = fold.total();
        let expected = sum_vectors_serial(&vs[..2]).unwrap().unwrap();
        assert_eq!(partial, expected);
        // Reading the total must not perturb further folding.
        for v in &vs[2..] {
            fold.fold(v).unwrap();
        }
        assert_eq!(fold.total(), sum_vectors_serial(&vs).unwrap().unwrap());
        let _ = kp;
    }

    #[test]
    fn shape_and_key_mismatches_are_typed_errors() {
        let (_kp, vs) = vectors(2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let other = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let short = EncryptedVector::encrypt_u64(&other.public, &[1, 2, 3], &mut rng);
        let mut fold = RunningFold::new(&vs[0]);
        assert_eq!(
            fold.fold(&short).unwrap_err(),
            HeError::LengthMismatch { left: 4, right: 3 }
        );
        let foreign = EncryptedVector::encrypt_u64(&other.public, &[1, 2, 3, 4], &mut rng);
        assert_eq!(fold.fold(&foreign).unwrap_err(), HeError::KeyMismatch);
        // Failed folds must not advance the count.
        assert_eq!(fold.folded(), 1);
    }
}
