//! # dubhe-he — additively homomorphic encryption substrate
//!
//! A from-scratch implementation of the [Paillier cryptosystem][paillier] used by
//! the Dubhe client-selection protocol (ICPP '21). The paper relies on the
//! additive homomorphism of Paillier so that the central server can aggregate
//! client *registries* (one-hot encoded label-distribution summaries) and
//! encrypted label distributions without ever learning any individual client's
//! data distribution.
//!
//! The crate provides:
//!
//! * [`Keypair`], [`PublicKey`], [`PrivateKey`] — key generation with
//!   Miller–Rabin prime search and CRT-accelerated (and batch-parallel)
//!   decryption. `PublicKey` is a cheap shared handle: every ciphertext
//!   references one key allocation instead of owning a copy.
//! * [`PrecomputedEncryptor`] — the encryption hot path: per-key precomputed
//!   `h = g₀ⁿ mod n²` with a windowed fixed-base power table, so ciphertext
//!   randomness costs a short (256-bit) windowed exponentiation instead of a
//!   full `rⁿ` (see [`fast`] for the construction and security argument).
//!   [`EncryptedVector::encrypt_u64`] and the secure protocol use it by
//!   default.
//! * [`CrtEncryptor`] / [`EpochEncryptor`] — the CRT-split tier on top: when
//!   the *keypair* is in hand (clients and the agent — never the server),
//!   the fixed-base table is evaluated mod `p²` and mod `q²` through the
//!   key's cached Montgomery contexts and recombined, for another ≥2×
//!   on encryption with bit-identical ciphertexts.
//! * [`RunningFold`] — Montgomery-domain registry aggregation: the
//!   coordinator's running homomorphic sums advance with one CIOS multiply
//!   per position per arriving vector (no per-element division), converted
//!   out once per position when the total is read — bit-identical to an
//!   [`EncryptedVector::add`] chain.
//! * [`Ciphertext`] — a single encrypted value supporting `⊕` (ciphertext +
//!   ciphertext), ciphertext + plaintext and ciphertext × plaintext-scalar.
//! * [`EncryptedVector`] — element-wise encrypted integer vectors (the registry
//!   and the encrypted label distribution `p_l` of the multi-time selection),
//!   with rayon-parallel encrypt/decrypt/sum behind the default-on `parallel`
//!   feature, plus [`slice`](EncryptedVector::slice) /
//!   [`concat`](EncryptedVector::concat) so a sharded coordinator can
//!   partition positions across parallel folds and reassemble the total.
//! * [`packing`] — BatchCrypt-style packing of many small counters into a single
//!   plaintext, used to quantify how much of the HE overhead can be removed.
//! * [`fixed`] — fixed-point encoding of probability vectors.
//! * [`transport`] — the canonical wire-size model: fixed ciphertext widths
//!   and key-material sizes used by the §6.4 overhead study, the protocol
//!   layer's per-message accounting, and the FL simulator's ledger (so
//!   modeled, in-memory and TCP-framed runs stay byte-comparable).
//! * [`codec`] — the canonical binary encoding of ciphertexts, vectors and
//!   keys (fixed-width big-endian limbs at exactly the [`transport`] model's
//!   widths); the `DBH2` wire format of `dubhe-select::protocol` bottoms out
//!   here, which is what makes measured frame bytes match the model.
//!
//! ## Example
//!
//! ```
//! use dubhe_he::{Keypair, EncryptedVector};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // 512-bit keys keep doc-tests fast; experiments use 2048 bits like the paper.
//! let keypair = Keypair::generate(512, &mut rng);
//! let (pk, sk) = keypair.split();
//!
//! // Two clients register one-hot vectors; the server adds ciphertexts blindly.
//! let a = EncryptedVector::encrypt_u64(&pk, &[0, 1, 0, 0], &mut rng);
//! let b = EncryptedVector::encrypt_u64(&pk, &[0, 0, 1, 0], &mut rng);
//! let aggregate = a.add(&b).unwrap();
//! assert_eq!(aggregate.decrypt_u64(&sk).unwrap(), vec![0, 1, 1, 0]);
//! ```
//!
//! [paillier]: https://link.springer.com/chapter/10.1007/3-540-48910-X_16

pub mod agg;
pub mod ciphertext;
pub mod codec;
pub mod error;
pub mod fast;
pub mod fixed;
pub mod keys;
pub mod packing;
pub mod prime;
pub mod transport;
pub mod vector;

pub use agg::RunningFold;
pub use ciphertext::Ciphertext;
pub use codec::{decode_vector_view, EncryptedVectorView};
pub use error::HeError;
pub use fast::{
    CrtEncryptor, Encryptor, EpochEncryptor, PrecomputedEncryptor, RANDOMNESS_EXPONENT_BITS,
};
pub use fixed::{FixedPointCodec, DEFAULT_FIXED_SCALE};
pub use keys::{Keypair, PrivateKey, PublicKey};
pub use packing::{
    HeadroomModel, PackedCiphertext, PackedEncryptedVector, PackedRunningFold, Packer,
};
pub use transport::{
    ciphertext_size_bytes, packed_vector_wire_bytes, packed_vector_wire_bytes_for,
    public_key_size_bytes, TransportSize,
};
pub use vector::{sum_vectors, sum_vectors_serial, EncryptedVector};

/// Key size (in bits of the modulus `n`) used by the paper's evaluation.
///
/// The paper encrypts with 2048-bit Paillier keys, the setting adopted by FATE
/// and BatchCrypt. Tests and doc-examples use smaller keys for speed; the
/// overhead experiments use this constant.
pub const PAPER_KEY_BITS: u64 = 2048;

/// Key size recommended for unit tests: large enough to hold realistic registry
/// counts, small enough that key generation takes milliseconds.
pub const TEST_KEY_BITS: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_registry_aggregation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kp = Keypair::generate(TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();

        // Three clients, registry length 5, each flips exactly one bit.
        let registries = [
            vec![1u64, 0, 0, 0, 0],
            vec![0u64, 0, 1, 0, 0],
            vec![0u64, 0, 1, 0, 0],
        ];
        let mut total: Option<EncryptedVector> = None;
        for r in &registries {
            let enc = EncryptedVector::encrypt_u64(&pk, r, &mut rng);
            total = Some(match total {
                None => enc,
                Some(t) => t.add(&enc).unwrap(),
            });
        }
        let decrypted = total.unwrap().decrypt_u64(&sk).unwrap();
        assert_eq!(decrypted, vec![1, 0, 2, 0, 0]);
    }
}
