//! BatchCrypt-style plaintext packing.
//!
//! Encrypting the registry element-by-element costs one full Paillier ciphertext
//! (≈ 2 × key-size bits) per position, which is where the 29–31 KB ciphertext
//! sizes reported in §6.4 of the paper come from. The paper cites BatchCrypt
//! [Zhang et al., ATC'20] as the state of the art for reducing this overhead in
//! cross-silo FL: several small counters are packed into one large plaintext,
//! encrypted as a single ciphertext, and the additive homomorphism then applies
//! slot-wise as long as no slot overflows.
//!
//! Dubhe's registry counters are bounded by the number of clients (≤ 8962 in the
//! paper), so a 32-bit slot can absorb billions of additions before overflow —
//! packing is a safe and large win, which the `overhead_report` experiment
//! quantifies.

use num_bigint::BigUint;
use num_traits::Zero;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::agg::RunningFold;
use crate::ciphertext::Ciphertext;
use crate::codec;
use crate::error::HeError;
use crate::fast::{Encryptor, PrecomputedEncryptor};
use crate::keys::{PrivateKey, PublicKey};
use crate::vector::EncryptedVector;

/// Packs fixed-width unsigned slots into Paillier plaintexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packer {
    /// Width of each slot in bits.
    pub slot_bits: u32,
    /// Key size (modulus bits) the packer is dimensioned for.
    pub key_bits: u64,
}

impl Packer {
    /// Creates a packer with the given slot width for the given key size.
    ///
    /// A safety margin of one slot is reserved so the packed value always stays
    /// below the modulus.
    pub fn new(slot_bits: u32, key_bits: u64) -> Self {
        assert!(
            (8..=64).contains(&slot_bits),
            "slot width must be in [8, 64]"
        );
        Packer {
            slot_bits,
            key_bits,
        }
    }

    /// Non-panicking [`new`](Self::new) for untrusted inputs (wire decoding,
    /// snapshot restore): an out-of-range slot width is a typed error.
    pub fn try_new(slot_bits: u32, key_bits: u64) -> Result<Self, HeError> {
        if !(8..=64).contains(&slot_bits) {
            return Err(HeError::MalformedEncoding {
                detail: "packing slot width outside [8, 64]",
            });
        }
        Ok(Packer {
            slot_bits,
            key_bits,
        })
    }

    /// How many slots fit into a single plaintext (with one slot of headroom
    /// reserved below the modulus).
    ///
    /// Returns [`HeError::SlotTooWide`] when the answer would be zero — i.e.
    /// when `slot_bits` approaches `key_bits` and not even one slot plus its
    /// headroom fits. Earlier versions returned `0` here and `pack` silently
    /// promoted it to one *headroom-less* slot per plaintext, risking
    /// undetected overflow into the modulus.
    pub fn slots_per_plaintext(&self) -> Result<usize, HeError> {
        let per = ((self.key_bits.saturating_sub(self.slot_bits as u64)) / self.slot_bits as u64)
            as usize;
        if per == 0 {
            return Err(HeError::SlotTooWide {
                slot_bits: self.slot_bits,
                key_bits: self.key_bits,
            });
        }
        Ok(per)
    }

    /// Maximum value a slot can hold.
    pub fn slot_capacity(&self) -> u64 {
        if self.slot_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.slot_bits) - 1
        }
    }

    /// Packs `values` into as few plaintexts as possible.
    ///
    /// Returns [`HeError::PackingOverflow`] if any value exceeds the slot
    /// capacity, and [`HeError::SlotTooWide`] if the slot width leaves no
    /// room in the plaintext.
    pub fn pack(&self, values: &[u64]) -> Result<Vec<BigUint>, HeError> {
        let cap = self.slot_capacity();
        for &v in values {
            if v > cap {
                return Err(HeError::PackingOverflow {
                    slot_bits: self.slot_bits,
                    value: v,
                });
            }
        }
        let per = self.slots_per_plaintext()?;
        let mut out = Vec::with_capacity(values.len().div_ceil(per));
        for chunk in values.chunks(per) {
            let mut acc = BigUint::zero();
            // Slot 0 occupies the least-significant bits.
            for (i, &v) in chunk.iter().enumerate() {
                acc |= BigUint::from(v) << (i as u32 * self.slot_bits);
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Unpacks plaintexts back into `count` slot values.
    ///
    /// # Panics
    /// Panics if the slot width is invalid for the key size; `pack` rejects
    /// such packers before any packed data can exist.
    pub fn unpack(&self, plaintexts: &[BigUint], count: usize) -> Vec<u64> {
        let per = self
            .slots_per_plaintext()
            .expect("unpacking data that could never have been packed");
        let mask = BigUint::from(self.slot_capacity());
        let mut out = Vec::with_capacity(count);
        'outer: for pt in plaintexts {
            for i in 0..per {
                if out.len() == count {
                    break 'outer;
                }
                let slot = (pt >> (i as u32 * self.slot_bits)) & &mask;
                let digits = slot.to_u64_digits();
                out.push(if digits.is_empty() { 0 } else { digits[0] });
            }
        }
        out.resize(count, 0);
        out
    }

    /// Packs and encrypts `values` under `public`, through the key's shared
    /// [`PrecomputedEncryptor`] fast path.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        public: &PublicKey,
        values: &[u64],
        rng: &mut R,
    ) -> Result<PackedCiphertext, HeError> {
        let plaintexts = self.pack(values)?;
        let cts = EncryptedVector::encrypt(public, &plaintexts, rng)?
            .elements()
            .to_vec();
        Ok(PackedCiphertext {
            ciphertexts: cts,
            count: values.len(),
            packer: *self,
        })
    }

    /// Packs and encrypts `values` with an explicit fast encryptor (amortises
    /// table setup across many clients of one epoch key).
    pub fn encrypt_with<R: Rng + ?Sized>(
        &self,
        encryptor: &PrecomputedEncryptor,
        values: &[u64],
        rng: &mut R,
    ) -> Result<PackedCiphertext, HeError> {
        let plaintexts = self.pack(values)?;
        let mut cts = Vec::with_capacity(plaintexts.len());
        for pt in &plaintexts {
            cts.push(encryptor.encrypt(pt, rng)?);
        }
        Ok(PackedCiphertext {
            ciphertexts: cts,
            count: values.len(),
            packer: *self,
        })
    }
}

/// A packed, encrypted vector of small counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedCiphertext {
    ciphertexts: Vec<Ciphertext>,
    count: usize,
    packer: Packer,
}

impl PackedCiphertext {
    /// Number of logical slots (original vector length).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of Paillier ciphertexts actually transmitted.
    pub fn ciphertext_count(&self) -> usize {
        self.ciphertexts.len()
    }

    /// Slot-wise homomorphic addition. The caller is responsible for ensuring
    /// that no slot overflows (in Dubhe: at most `N` additions of one-hot
    /// registries, far below the 2³²-1 capacity of the default packer).
    pub fn add(&self, other: &PackedCiphertext) -> Result<PackedCiphertext, HeError> {
        if self.count != other.count || self.ciphertexts.len() != other.ciphertexts.len() {
            return Err(HeError::LengthMismatch {
                left: self.count,
                right: other.count,
            });
        }
        let ciphertexts = self
            .ciphertexts
            .iter()
            .zip(&other.ciphertexts)
            .map(|(a, b)| a.add(b))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PackedCiphertext {
            ciphertexts,
            count: self.count,
            packer: self.packer,
        })
    }

    /// Decrypts (batch CRT) and unpacks back to the original counters.
    pub fn decrypt(&self, private: &PrivateKey) -> Vec<u64> {
        let plaintexts = private.decrypt_batch(&self.ciphertexts);
        self.packer.unpack(&plaintexts, self.count)
    }

    /// Serialized ciphertext bytes (overhead accounting).
    pub fn byte_len(&self) -> usize {
        self.ciphertexts.iter().map(Ciphertext::byte_len).sum()
    }
}

/// The executable overflow-headroom argument behind every packed fold.
///
/// Packing is only sound while no lane ever carries into its neighbor. With
/// non-negative counters the worst case is every one of `max_clients`
/// contributions putting `max_counter` into the same lane, so the invariant
///
/// ```text
/// max_clients · max_counter  <  2^slot_bits
/// ```
///
/// is checked **at configuration time** (a violating declaration is
/// [`HeError::HeadroomExceeded`], before any ciphertext exists) and enforced
/// **at fold time** ([`check_budget`](Self::check_budget) refuses the
/// contribution that would exceed the declared cohort, as
/// [`HeError::ClientBudgetExhausted`]). The boundary configuration
/// `max_clients · max_counter == 2^slot_bits − 1` is the largest that passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadroomModel {
    packer: Packer,
    max_clients: u64,
    max_counter: u64,
}

impl HeadroomModel {
    /// Validates and seals a packed-fold configuration.
    ///
    /// Errors: [`HeError::SlotTooWide`] when the packer fits no slot into the
    /// key's plaintext, [`HeError::HeadroomExceeded`] when the worst-case
    /// lane sum reaches `2^slot_bits`.
    pub fn new(packer: Packer, max_clients: u64, max_counter: u64) -> Result<Self, HeError> {
        packer.slots_per_plaintext()?;
        let worst = (max_clients as u128).saturating_mul(max_counter as u128);
        if worst >= 1u128 << packer.slot_bits {
            return Err(HeError::HeadroomExceeded {
                slot_bits: packer.slot_bits,
                max_clients,
                max_counter,
            });
        }
        Ok(HeadroomModel {
            packer,
            max_clients,
            max_counter,
        })
    }

    /// The slot layout the model is declared for.
    pub fn packer(&self) -> Packer {
        self.packer
    }

    /// The declared maximum cohort size.
    pub fn max_clients(&self) -> u64 {
        self.max_clients
    }

    /// The declared per-lane maximum of one contribution.
    pub fn max_counter(&self) -> u64 {
        self.max_counter
    }

    /// Refuses a fold that would hold more than the declared cohort:
    /// `folded > max_clients` is [`HeError::ClientBudgetExhausted`]. Called
    /// *before* the homomorphic multiply, so an over-budget fold never
    /// mutates state.
    pub fn check_budget(&self, folded: u64) -> Result<(), HeError> {
        if folded > self.max_clients {
            return Err(HeError::ClientBudgetExhausted {
                folded,
                max_clients: self.max_clients,
            });
        }
        Ok(())
    }

    /// Refuses a slot layout that disagrees with the declared one
    /// ([`HeError::PackerMismatch`]).
    pub fn check_packer(&self, got: &Packer) -> Result<(), HeError> {
        if *got != self.packer {
            return Err(HeError::PackerMismatch {
                expected_slot_bits: self.packer.slot_bits,
                expected_key_bits: self.packer.key_bits,
                got_slot_bits: got.slot_bits,
                got_key_bits: got.key_bits,
            });
        }
        Ok(())
    }
}

/// A packed encrypted vector that travels the protocol: `count` logical
/// lanes laid into `⌈count / slots_per_plaintext⌉` Paillier ciphertexts,
/// carried as an ordinary [`EncryptedVector`] plus the [`Packer`] layout
/// metadata a receiver needs to unpack. Slot-wise addition is plain
/// ciphertext multiplication, so the coordinator's Montgomery-domain
/// [`RunningFold`] applies unchanged to the inner vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedEncryptedVector {
    vector: EncryptedVector,
    count: usize,
    packer: Packer,
}

impl PackedEncryptedVector {
    /// Packs and encrypts `values` through the key's shared
    /// [`PrecomputedEncryptor`].
    pub fn encrypt<R: Rng + ?Sized>(
        packer: Packer,
        public: &PublicKey,
        values: &[u64],
        rng: &mut R,
    ) -> Result<Self, HeError> {
        let encryptor = PrecomputedEncryptor::new(public, rng);
        Self::encrypt_with(packer, &encryptor, values, rng)
    }

    /// Packs and encrypts `values` with an explicit fast encryptor — any
    /// [`Encryptor`] tier, including the CRT-split one when the keypair is in
    /// hand. The packer must be dimensioned for the encryptor's key.
    pub fn encrypt_with<E, R>(
        packer: Packer,
        encryptor: &E,
        values: &[u64],
        rng: &mut R,
    ) -> Result<Self, HeError>
    where
        E: Encryptor + ?Sized,
        R: Rng + ?Sized,
    {
        let key_bits = encryptor.public_key().bits();
        if packer.key_bits != key_bits {
            return Err(HeError::PackerMismatch {
                expected_slot_bits: packer.slot_bits,
                expected_key_bits: key_bits,
                got_slot_bits: packer.slot_bits,
                got_key_bits: packer.key_bits,
            });
        }
        let plaintexts = packer.pack(values)?;
        let vector = EncryptedVector::encrypt_with(encryptor, &plaintexts, rng)?;
        Ok(PackedEncryptedVector {
            vector,
            count: values.len(),
            packer,
        })
    }

    /// Reassembles a packed vector from decoded parts, validating that the
    /// ciphertext count matches the slot layout for `count` lanes and that
    /// the packer is dimensioned for the vector's key. The wire decoder and
    /// fold totals come through here, so a malformed combination can never
    /// circulate.
    pub fn from_vector(
        vector: EncryptedVector,
        count: usize,
        packer: Packer,
    ) -> Result<Self, HeError> {
        if packer.key_bits != vector.public_key().bits() {
            return Err(HeError::PackerMismatch {
                expected_slot_bits: packer.slot_bits,
                expected_key_bits: vector.public_key().bits(),
                got_slot_bits: packer.slot_bits,
                got_key_bits: packer.key_bits,
            });
        }
        let per = packer.slots_per_plaintext()?;
        if vector.len() != count.div_ceil(per) {
            return Err(HeError::MalformedEncoding {
                detail: "packed ciphertext count disagrees with the slot layout",
            });
        }
        Ok(PackedEncryptedVector {
            vector,
            count,
            packer,
        })
    }

    /// Number of logical lanes (the original vector length).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of Paillier ciphertexts actually transmitted.
    pub fn ciphertext_count(&self) -> usize {
        self.vector.len()
    }

    /// The slot layout.
    pub fn packer(&self) -> Packer {
        self.packer
    }

    /// The underlying element-wise encrypted vector of packed plaintexts.
    pub fn vector(&self) -> &EncryptedVector {
        &self.vector
    }

    /// The key the lanes are encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        self.vector.public_key()
    }

    /// Lane-wise homomorphic addition. Mismatched slot layouts are
    /// [`HeError::PackerMismatch`]; mismatched lane counts are
    /// [`HeError::LengthMismatch`].
    pub fn add(&self, other: &PackedEncryptedVector) -> Result<PackedEncryptedVector, HeError> {
        if self.packer != other.packer {
            return Err(HeError::PackerMismatch {
                expected_slot_bits: self.packer.slot_bits,
                expected_key_bits: self.packer.key_bits,
                got_slot_bits: other.packer.slot_bits,
                got_key_bits: other.packer.key_bits,
            });
        }
        if self.count != other.count {
            return Err(HeError::LengthMismatch {
                left: self.count,
                right: other.count,
            });
        }
        Ok(PackedEncryptedVector {
            vector: self.vector.add(&other.vector)?,
            count: self.count,
            packer: self.packer,
        })
    }

    /// Decrypts (batch CRT) and unpacks back to the `count` lane values.
    pub fn decrypt_u64(&self, private: &PrivateKey) -> Vec<u64> {
        let plaintexts = private.decrypt_batch(self.vector.elements());
        self.packer.unpack(&plaintexts, self.count)
    }

    /// Serialized ciphertext bytes (variable big-integer width; the canonical
    /// fixed-width model is
    /// [`packed_vector_wire_bytes`](crate::transport::packed_vector_wire_bytes)).
    pub fn byte_len(&self) -> usize {
        self.vector.byte_len()
    }
}

/// A running lane-wise homomorphic sum of packed vectors: the
/// Montgomery-domain [`RunningFold`] over the inner ciphertexts, guarded by a
/// [`HeadroomModel`] so no contribution past the declared client budget (and
/// no foreign slot layout) is ever multiplied in.
#[derive(Debug, Clone)]
pub struct PackedRunningFold {
    fold: RunningFold,
    count: usize,
    model: HeadroomModel,
}

impl PackedRunningFold {
    /// Seeds the fold with its first packed vector, checking the layout
    /// against the model and charging one contribution to the budget.
    pub fn new(v: &PackedEncryptedVector, model: HeadroomModel) -> Result<Self, HeError> {
        model.check_packer(&v.packer)?;
        model.check_budget(1)?;
        Ok(PackedRunningFold {
            fold: RunningFold::new(&v.vector),
            count: v.count,
            model,
        })
    }

    /// Folds one more packed vector in. Layout and lane-count mismatches are
    /// typed errors, and the budget is checked **before** the multiply — a
    /// refused fold leaves the running state untouched.
    pub fn fold(&mut self, v: &PackedEncryptedVector) -> Result<(), HeError> {
        self.model.check_packer(&v.packer)?;
        if v.count != self.count {
            return Err(HeError::LengthMismatch {
                left: self.count,
                right: v.count,
            });
        }
        self.model.check_budget(self.fold.folded() + 1)?;
        self.fold.fold(&v.vector)
    }

    /// How many packed vectors have been folded in so far.
    pub fn folded(&self) -> u64 {
        self.fold.folded()
    }

    /// Number of logical lanes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The guarding headroom model.
    pub fn model(&self) -> &HeadroomModel {
        &self.model
    }

    /// The key every folded vector was encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        self.fold.public_key()
    }

    /// The running lane-wise total as a packed vector (non-destructive).
    pub fn total(&self) -> PackedEncryptedVector {
        PackedEncryptedVector {
            vector: self.fold.total(),
            count: self.count,
            packer: self.model.packer,
        }
    }

    /// Serializes the fold for crash recovery:
    ///
    /// ```text
    /// snapshot := u32 slot_bits | u64 key_bits
    ///           | u64 max_clients | u64 max_counter
    ///           | u64 lane count
    ///           | RunningFold snapshot
    /// ```
    ///
    /// The inner snapshot keeps the accumulators **in-domain**, so a restored
    /// fold resumes bit-identically to one that never stopped.
    pub fn snapshot(&self) -> Result<Vec<u8>, HeError> {
        let mut out = Vec::new();
        codec::put_u32(&mut out, self.model.packer.slot_bits);
        codec::put_u64(&mut out, self.model.packer.key_bits);
        codec::put_u64(&mut out, self.model.max_clients);
        codec::put_u64(&mut out, self.model.max_counter);
        codec::put_u64(&mut out, self.count as u64);
        out.extend_from_slice(&self.fold.snapshot()?);
        Ok(out)
    }

    /// Rebuilds a fold from a [`snapshot`](Self::snapshot). Defensive like
    /// every restore path: hostile slot widths, headroom-violating models,
    /// budget-exceeding fold counts and layouts that contradict the inner
    /// fold's shape are all typed errors.
    pub fn restore(bytes: &[u8]) -> Result<Self, HeError> {
        let cur = &mut &bytes[..];
        let slot_bits = codec::take_u32(cur)?;
        let key_bits = codec::take_u64(cur)?;
        let max_clients = codec::take_u64(cur)?;
        let max_counter = codec::take_u64(cur)?;
        let count = codec::take_u64(cur)? as usize;
        let packer = Packer::try_new(slot_bits, key_bits)?;
        let model = HeadroomModel::new(packer, max_clients, max_counter)?;
        let fold = RunningFold::restore(cur)?;
        if packer.key_bits != fold.public_key().bits() {
            return Err(HeError::MalformedEncoding {
                detail: "packed fold snapshot layout disagrees with the restored key",
            });
        }
        model.check_budget(fold.folded())?;
        if fold.len() != count.div_ceil(packer.slots_per_plaintext()?) {
            return Err(HeError::MalformedEncoding {
                detail: "packed fold snapshot lane count disagrees with the fold shape",
            });
        }
        Ok(PackedRunningFold { fold, count, model })
    }
}

/// Default packer used by the overhead experiments: 32-bit slots dimensioned
/// for the paper's 2048-bit keys.
pub fn default_packer() -> Packer {
    Packer::new(32, crate::PAPER_KEY_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn pack_unpack_round_trip() {
        let p = Packer::new(16, 256);
        let values: Vec<u64> = vec![0, 1, 2, 65535, 42, 7, 0, 9, 100];
        let packed = p.pack(&values).unwrap();
        assert_eq!(p.unpack(&packed, values.len()), values);
    }

    #[test]
    fn slots_per_plaintext_reserves_headroom() {
        let p = Packer::new(32, 2048);
        assert_eq!(p.slots_per_plaintext().unwrap(), (2048 - 32) / 32);
        let p = Packer::new(16, 256);
        assert_eq!(p.slots_per_plaintext().unwrap(), (256 - 16) / 16);
    }

    #[test]
    fn slot_width_at_or_above_key_size_is_an_error_not_a_silent_slot() {
        // 64-bit slots in a 64-bit plaintext: no room for slot + headroom.
        for (slot_bits, key_bits) in [(64u32, 64u64), (64, 127), (32, 63), (60, 100)] {
            let p = Packer::new(slot_bits, key_bits);
            assert_eq!(
                p.slots_per_plaintext(),
                Err(HeError::SlotTooWide {
                    slot_bits,
                    key_bits
                })
            );
            assert_eq!(
                p.pack(&[1, 2, 3]),
                Err(HeError::SlotTooWide {
                    slot_bits,
                    key_bits
                }),
                "pack must refuse to emit headroom-less slots"
            );
        }
        // One slot plus headroom is exactly the boundary case that stays ok.
        assert_eq!(Packer::new(32, 64).slots_per_plaintext().unwrap(), 1);
    }

    #[test]
    fn overflowing_slot_is_rejected() {
        let p = Packer::new(16, 256);
        assert_eq!(
            p.pack(&[70_000]),
            Err(HeError::PackingOverflow {
                slot_bits: 16,
                value: 70_000
            })
        );
    }

    #[test]
    fn encrypted_packed_round_trip() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let values: Vec<u64> = (0..40).map(|i| i * 3).collect();
        let enc = p.encrypt(&pk, &values, &mut rng).unwrap();
        assert_eq!(enc.decrypt(&sk), values);
        assert!(
            enc.ciphertext_count() < values.len(),
            "packing must reduce ciphertext count"
        );
    }

    #[test]
    fn packed_addition_is_slotwise() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let a: Vec<u64> = vec![1, 0, 3, 0, 5, 6];
        let b: Vec<u64> = vec![0, 2, 0, 4, 5, 6];
        let ea = p.encrypt(&pk, &a, &mut rng).unwrap();
        let eb = p.encrypt(&pk, &b, &mut rng).unwrap();
        let sum = ea.add(&eb).unwrap();
        assert_eq!(sum.decrypt(&sk), vec![1, 2, 3, 4, 10, 12]);
    }

    #[test]
    fn repeated_additions_stay_below_slot_capacity() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(32, crate::TEST_KEY_BITS);
        let one_hot: Vec<u64> = vec![0, 1, 0];
        let mut acc = p.encrypt(&pk, &[0, 0, 0], &mut rng).unwrap();
        for _ in 0..50 {
            let c = p.encrypt(&pk, &one_hot, &mut rng).unwrap();
            acc = acc.add(&c).unwrap();
        }
        assert_eq!(acc.decrypt(&sk), vec![0, 50, 0]);
    }

    #[test]
    fn mismatched_counts_rejected() {
        let (pk, _sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let a = p.encrypt(&pk, &[1, 2, 3], &mut rng).unwrap();
        let b = p.encrypt(&pk, &[1, 2], &mut rng).unwrap();
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn packing_reduces_transport_size_vs_elementwise() {
        let (pk, _sk, mut rng) = setup();
        let values = vec![1u64; 56]; // registry length from the paper's group 1
        let elementwise = crate::EncryptedVector::encrypt_u64(&pk, &values, &mut rng);
        let packed = Packer::new(16, crate::TEST_KEY_BITS)
            .encrypt(&pk, &values, &mut rng)
            .unwrap();
        assert!(packed.byte_len() < elementwise.byte_len() / 4);
    }

    #[test]
    #[should_panic(expected = "slot width")]
    fn invalid_slot_width_panics() {
        let _ = Packer::new(4, 256);
    }

    #[test]
    fn default_packer_matches_paper_key_size() {
        let p = default_packer();
        assert_eq!(p.key_bits, crate::PAPER_KEY_BITS);
        assert_eq!(p.slot_bits, 32);
    }

    #[test]
    fn headroom_boundary_is_exact() {
        // Exactly 2^slot_bits - 1 worst-case lane sum: the largest passing
        // configuration, for several factorizations and slot widths.
        for (slot_bits, clients, counter) in [
            (16u32, (1u64 << 16) - 1, 1u64),
            (16, 257, 255),
            (32, (1 << 32) - 1, 1),
            (32, (1 << 16) + 1, (1 << 16) - 1),
            (8, 255, 1),
            (8, 51, 5),
        ] {
            let p = Packer::new(slot_bits, crate::TEST_KEY_BITS);
            assert_eq!(
                (clients as u128) * (counter as u128),
                (1u128 << slot_bits) - 1
            );
            let model = HeadroomModel::new(p, clients, counter).unwrap();
            assert_eq!(model.max_clients(), clients);
            // One past the boundary: the worst case reaches 2^slot_bits.
            assert_eq!(
                HeadroomModel::new(p, clients + 1, counter).unwrap_err(),
                HeError::HeadroomExceeded {
                    slot_bits,
                    max_clients: clients + 1,
                    max_counter: counter,
                }
            );
        }
        // 64-bit slots in a key wide enough to hold them: u64::MAX clients of
        // counter 1 is the boundary; the product path must not overflow u128.
        let wide = Packer::new(64, 256);
        HeadroomModel::new(wide, u64::MAX, 1).unwrap();
        assert!(matches!(
            HeadroomModel::new(wide, u64::MAX, 2),
            Err(HeError::HeadroomExceeded { .. })
        ));
        // A slot width that fits no lane surfaces the packer's own error.
        assert!(matches!(
            HeadroomModel::new(Packer::new(60, 100), 1, 1),
            Err(HeError::SlotTooWide { .. })
        ));
    }

    #[test]
    fn over_budget_fold_is_refused_before_mutating_state() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let model = HeadroomModel::new(p, 3, 9).unwrap();
        let contributions: Vec<PackedEncryptedVector> = (0..4)
            .map(|i| PackedEncryptedVector::encrypt(p, &pk, &[i + 1, 0, 9, i], &mut rng).unwrap())
            .collect();
        let mut fold = PackedRunningFold::new(&contributions[0], model).unwrap();
        fold.fold(&contributions[1]).unwrap();
        fold.fold(&contributions[2]).unwrap();
        let total_at_budget = fold.total();
        // The 4th contribution exceeds the declared 3-client cohort: typed
        // error, no silent wrap, no state change.
        assert_eq!(
            fold.fold(&contributions[3]).unwrap_err(),
            HeError::ClientBudgetExhausted {
                folded: 4,
                max_clients: 3,
            }
        );
        assert_eq!(fold.folded(), 3);
        assert_eq!(fold.total(), total_at_budget);
        assert_eq!(total_at_budget.decrypt_u64(&sk), vec![6, 0, 27, 3]);
    }

    #[test]
    fn packed_fold_matches_the_add_chain_bit_for_bit() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let model = HeadroomModel::new(p, 100, 600).unwrap();
        let lanes = 40; // several plaintexts at (256-16)/16 = 15 slots each
        let inputs: Vec<Vec<u64>> = (0..5)
            .map(|i| {
                (0..lanes)
                    .map(|j| ((i * 13 + j * 7) % 600) as u64)
                    .collect()
            })
            .collect();
        let packed: Vec<PackedEncryptedVector> = inputs
            .iter()
            .map(|v| PackedEncryptedVector::encrypt(p, &pk, v, &mut rng).unwrap())
            .collect();
        let mut fold = PackedRunningFold::new(&packed[0], model).unwrap();
        let mut chain = packed[0].clone();
        for v in &packed[1..] {
            fold.fold(v).unwrap();
            chain = chain.add(v).unwrap();
        }
        assert_eq!(fold.total(), chain);
        let mut expected = vec![0u64; lanes];
        for v in &inputs {
            for (e, x) in expected.iter_mut().zip(v) {
                *e += x;
            }
        }
        assert_eq!(fold.total().decrypt_u64(&sk), expected);
    }

    #[test]
    fn foreign_slot_layouts_are_packer_mismatches() {
        let (pk, _sk, mut rng) = setup();
        let p16 = Packer::new(16, crate::TEST_KEY_BITS);
        let p32 = Packer::new(32, crate::TEST_KEY_BITS);
        let a = PackedEncryptedVector::encrypt(p16, &pk, &[1, 2, 3], &mut rng).unwrap();
        let b = PackedEncryptedVector::encrypt(p32, &pk, &[1, 2, 3], &mut rng).unwrap();
        assert!(matches!(
            a.add(&b).unwrap_err(),
            HeError::PackerMismatch { .. }
        ));
        let model16 = HeadroomModel::new(p16, 10, 100).unwrap();
        assert!(matches!(
            PackedRunningFold::new(&b, model16).unwrap_err(),
            HeError::PackerMismatch { .. }
        ));
        let mut fold = PackedRunningFold::new(&a, model16).unwrap();
        assert!(matches!(
            fold.fold(&b).unwrap_err(),
            HeError::PackerMismatch { .. }
        ));
        assert_eq!(fold.folded(), 1);
        // A packer dimensioned for a different key size than the encryptor's
        // is refused before anything is packed.
        let foreign = Packer::new(16, 512);
        assert!(matches!(
            PackedEncryptedVector::encrypt(foreign, &pk, &[1], &mut rng).unwrap_err(),
            HeError::PackerMismatch { .. }
        ));
    }

    #[test]
    fn crt_and_precomputed_tiers_produce_identical_packed_vectors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let values: Vec<u64> = (0..33).map(|i| i * 11).collect();
        // Build the key's shared fixed-base table up front so neither tier's
        // constructor draws from its (identically seeded) RNG.
        let _warm = crate::fast::PrecomputedEncryptor::new(&kp.public, &mut rng);

        let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
        let pre = crate::fast::PrecomputedEncryptor::new(&kp.public, &mut rng_a);
        let a = PackedEncryptedVector::encrypt_with(p, &pre, &values, &mut rng_a).unwrap();

        let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
        let crt = crate::fast::CrtEncryptor::new(&kp, &mut rng_b).unwrap();
        let b = PackedEncryptedVector::encrypt_with(p, &crt, &values, &mut rng_b).unwrap();

        assert_eq!(
            a, b,
            "CRT tier must be bit-identical to the precomputed tier"
        );
        assert_eq!(a.decrypt_u64(&kp.private), values);
    }

    #[test]
    fn packed_fold_snapshot_restore_resumes_bit_identically() {
        let (pk, _sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let model = HeadroomModel::new(p, 50, 1000).unwrap();
        let packed: Vec<PackedEncryptedVector> = (0..6)
            .map(|i| {
                let v: Vec<u64> = (0..20).map(|j| ((i * 5 + j) % 1000) as u64).collect();
                PackedEncryptedVector::encrypt(p, &pk, &v, &mut rng).unwrap()
            })
            .collect();
        let mut uninterrupted = PackedRunningFold::new(&packed[0], model).unwrap();
        for v in &packed[1..] {
            uninterrupted.fold(v).unwrap();
        }
        for cut in 1..packed.len() {
            let mut fold = PackedRunningFold::new(&packed[0], model).unwrap();
            for v in &packed[1..cut] {
                fold.fold(v).unwrap();
            }
            let snap = fold.snapshot().unwrap();
            drop(fold); // the "crash"
            let mut resumed = PackedRunningFold::restore(&snap).unwrap();
            assert_eq!(resumed.folded(), cut as u64);
            assert_eq!(resumed.model(), &model);
            for v in &packed[cut..] {
                resumed.fold(v).unwrap();
            }
            assert_eq!(resumed.total(), uninterrupted.total(), "cut {cut}");
        }
    }

    #[test]
    fn hostile_packed_fold_snapshots_are_typed_errors() {
        let (pk, _sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let model = HeadroomModel::new(p, 2, 10).unwrap();
        let v = PackedEncryptedVector::encrypt(p, &pk, &[1, 2, 3], &mut rng).unwrap();
        let fold = PackedRunningFold::new(&v, model).unwrap();
        let snap = fold.snapshot().unwrap();

        for cut in [0, 3, 12, 35, snap.len() - 1] {
            assert!(
                PackedRunningFold::restore(&snap[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // Hostile slot width.
        let mut bad = snap.clone();
        bad[..4].copy_from_slice(&200u32.to_be_bytes());
        assert!(matches!(
            PackedRunningFold::restore(&bad).unwrap_err(),
            HeError::MalformedEncoding { .. }
        ));
        // A model that violates its own headroom argument.
        let mut bad = snap.clone();
        bad[12..20].copy_from_slice(&u64::MAX.to_be_bytes()); // max_clients
        bad[20..28].copy_from_slice(&u64::MAX.to_be_bytes()); // max_counter
        assert!(matches!(
            PackedRunningFold::restore(&bad).unwrap_err(),
            HeError::HeadroomExceeded { .. }
        ));
        // A fold count past the declared budget.
        let mut bad = snap.clone();
        bad[12..20].copy_from_slice(&0u64.to_be_bytes()); // max_clients = 0
        assert!(matches!(
            PackedRunningFold::restore(&bad).unwrap_err(),
            HeError::ClientBudgetExhausted { .. }
        ));
        // A lane count that contradicts the fold's ciphertext shape.
        let mut bad = snap.clone();
        bad[28..36].copy_from_slice(&1000u64.to_be_bytes());
        assert!(matches!(
            PackedRunningFold::restore(&bad).unwrap_err(),
            HeError::MalformedEncoding { .. }
        ));
    }

    #[test]
    fn from_vector_validates_the_layout() {
        let (pk, _sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let good = PackedEncryptedVector::encrypt(p, &pk, &[1; 20], &mut rng).unwrap();
        let inner = good.vector().clone();
        assert!(PackedEncryptedVector::from_vector(inner.clone(), 20, p).is_ok());
        // 20 lanes at 15 slots/plaintext need 2 ciphertexts; claiming 40
        // lanes would need 3.
        assert!(matches!(
            PackedEncryptedVector::from_vector(inner.clone(), 40, p).unwrap_err(),
            HeError::MalformedEncoding { .. }
        ));
        // A packer dimensioned for a foreign key size is refused.
        assert!(matches!(
            PackedEncryptedVector::from_vector(inner, 20, Packer::new(16, 512)).unwrap_err(),
            HeError::PackerMismatch { .. }
        ));
    }
}
