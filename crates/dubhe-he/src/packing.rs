//! BatchCrypt-style plaintext packing.
//!
//! Encrypting the registry element-by-element costs one full Paillier ciphertext
//! (≈ 2 × key-size bits) per position, which is where the 29–31 KB ciphertext
//! sizes reported in §6.4 of the paper come from. The paper cites BatchCrypt
//! [Zhang et al., ATC'20] as the state of the art for reducing this overhead in
//! cross-silo FL: several small counters are packed into one large plaintext,
//! encrypted as a single ciphertext, and the additive homomorphism then applies
//! slot-wise as long as no slot overflows.
//!
//! Dubhe's registry counters are bounded by the number of clients (≤ 8962 in the
//! paper), so a 32-bit slot can absorb billions of additions before overflow —
//! packing is a safe and large win, which the `overhead_report` experiment
//! quantifies.

use num_bigint::BigUint;
use num_traits::Zero;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::fast::{Encryptor, PrecomputedEncryptor};
use crate::keys::{PrivateKey, PublicKey};
use crate::vector::EncryptedVector;

/// Packs fixed-width unsigned slots into Paillier plaintexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packer {
    /// Width of each slot in bits.
    pub slot_bits: u32,
    /// Key size (modulus bits) the packer is dimensioned for.
    pub key_bits: u64,
}

impl Packer {
    /// Creates a packer with the given slot width for the given key size.
    ///
    /// A safety margin of one slot is reserved so the packed value always stays
    /// below the modulus.
    pub fn new(slot_bits: u32, key_bits: u64) -> Self {
        assert!(
            (8..=64).contains(&slot_bits),
            "slot width must be in [8, 64]"
        );
        Packer {
            slot_bits,
            key_bits,
        }
    }

    /// How many slots fit into a single plaintext (with one slot of headroom
    /// reserved below the modulus).
    ///
    /// Returns [`HeError::SlotTooWide`] when the answer would be zero — i.e.
    /// when `slot_bits` approaches `key_bits` and not even one slot plus its
    /// headroom fits. Earlier versions returned `0` here and `pack` silently
    /// promoted it to one *headroom-less* slot per plaintext, risking
    /// undetected overflow into the modulus.
    pub fn slots_per_plaintext(&self) -> Result<usize, HeError> {
        let per = ((self.key_bits.saturating_sub(self.slot_bits as u64)) / self.slot_bits as u64)
            as usize;
        if per == 0 {
            return Err(HeError::SlotTooWide {
                slot_bits: self.slot_bits,
                key_bits: self.key_bits,
            });
        }
        Ok(per)
    }

    /// Maximum value a slot can hold.
    pub fn slot_capacity(&self) -> u64 {
        if self.slot_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.slot_bits) - 1
        }
    }

    /// Packs `values` into as few plaintexts as possible.
    ///
    /// Returns [`HeError::PackingOverflow`] if any value exceeds the slot
    /// capacity, and [`HeError::SlotTooWide`] if the slot width leaves no
    /// room in the plaintext.
    pub fn pack(&self, values: &[u64]) -> Result<Vec<BigUint>, HeError> {
        let cap = self.slot_capacity();
        for &v in values {
            if v > cap {
                return Err(HeError::PackingOverflow {
                    slot_bits: self.slot_bits,
                    value: v,
                });
            }
        }
        let per = self.slots_per_plaintext()?;
        let mut out = Vec::with_capacity(values.len().div_ceil(per));
        for chunk in values.chunks(per) {
            let mut acc = BigUint::zero();
            // Slot 0 occupies the least-significant bits.
            for (i, &v) in chunk.iter().enumerate() {
                acc |= BigUint::from(v) << (i as u32 * self.slot_bits);
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Unpacks plaintexts back into `count` slot values.
    ///
    /// # Panics
    /// Panics if the slot width is invalid for the key size; `pack` rejects
    /// such packers before any packed data can exist.
    pub fn unpack(&self, plaintexts: &[BigUint], count: usize) -> Vec<u64> {
        let per = self
            .slots_per_plaintext()
            .expect("unpacking data that could never have been packed");
        let mask = BigUint::from(self.slot_capacity());
        let mut out = Vec::with_capacity(count);
        'outer: for pt in plaintexts {
            for i in 0..per {
                if out.len() == count {
                    break 'outer;
                }
                let slot = (pt >> (i as u32 * self.slot_bits)) & &mask;
                let digits = slot.to_u64_digits();
                out.push(if digits.is_empty() { 0 } else { digits[0] });
            }
        }
        out.resize(count, 0);
        out
    }

    /// Packs and encrypts `values` under `public`, through the key's shared
    /// [`PrecomputedEncryptor`] fast path.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        public: &PublicKey,
        values: &[u64],
        rng: &mut R,
    ) -> Result<PackedCiphertext, HeError> {
        let plaintexts = self.pack(values)?;
        let cts = EncryptedVector::encrypt(public, &plaintexts, rng)?
            .elements()
            .to_vec();
        Ok(PackedCiphertext {
            ciphertexts: cts,
            count: values.len(),
            packer: *self,
        })
    }

    /// Packs and encrypts `values` with an explicit fast encryptor (amortises
    /// table setup across many clients of one epoch key).
    pub fn encrypt_with<R: Rng + ?Sized>(
        &self,
        encryptor: &PrecomputedEncryptor,
        values: &[u64],
        rng: &mut R,
    ) -> Result<PackedCiphertext, HeError> {
        let plaintexts = self.pack(values)?;
        let mut cts = Vec::with_capacity(plaintexts.len());
        for pt in &plaintexts {
            cts.push(encryptor.encrypt(pt, rng)?);
        }
        Ok(PackedCiphertext {
            ciphertexts: cts,
            count: values.len(),
            packer: *self,
        })
    }
}

/// A packed, encrypted vector of small counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedCiphertext {
    ciphertexts: Vec<Ciphertext>,
    count: usize,
    packer: Packer,
}

impl PackedCiphertext {
    /// Number of logical slots (original vector length).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of Paillier ciphertexts actually transmitted.
    pub fn ciphertext_count(&self) -> usize {
        self.ciphertexts.len()
    }

    /// Slot-wise homomorphic addition. The caller is responsible for ensuring
    /// that no slot overflows (in Dubhe: at most `N` additions of one-hot
    /// registries, far below the 2³²-1 capacity of the default packer).
    pub fn add(&self, other: &PackedCiphertext) -> Result<PackedCiphertext, HeError> {
        if self.count != other.count || self.ciphertexts.len() != other.ciphertexts.len() {
            return Err(HeError::LengthMismatch {
                left: self.count,
                right: other.count,
            });
        }
        let ciphertexts = self
            .ciphertexts
            .iter()
            .zip(&other.ciphertexts)
            .map(|(a, b)| a.add(b))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PackedCiphertext {
            ciphertexts,
            count: self.count,
            packer: self.packer,
        })
    }

    /// Decrypts (batch CRT) and unpacks back to the original counters.
    pub fn decrypt(&self, private: &PrivateKey) -> Vec<u64> {
        let plaintexts = private.decrypt_batch(&self.ciphertexts);
        self.packer.unpack(&plaintexts, self.count)
    }

    /// Serialized ciphertext bytes (overhead accounting).
    pub fn byte_len(&self) -> usize {
        self.ciphertexts.iter().map(Ciphertext::byte_len).sum()
    }
}

/// Default packer used by the overhead experiments: 32-bit slots dimensioned
/// for the paper's 2048-bit keys.
pub fn default_packer() -> Packer {
    Packer::new(32, crate::PAPER_KEY_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn pack_unpack_round_trip() {
        let p = Packer::new(16, 256);
        let values: Vec<u64> = vec![0, 1, 2, 65535, 42, 7, 0, 9, 100];
        let packed = p.pack(&values).unwrap();
        assert_eq!(p.unpack(&packed, values.len()), values);
    }

    #[test]
    fn slots_per_plaintext_reserves_headroom() {
        let p = Packer::new(32, 2048);
        assert_eq!(p.slots_per_plaintext().unwrap(), (2048 - 32) / 32);
        let p = Packer::new(16, 256);
        assert_eq!(p.slots_per_plaintext().unwrap(), (256 - 16) / 16);
    }

    #[test]
    fn slot_width_at_or_above_key_size_is_an_error_not_a_silent_slot() {
        // 64-bit slots in a 64-bit plaintext: no room for slot + headroom.
        for (slot_bits, key_bits) in [(64u32, 64u64), (64, 127), (32, 63), (60, 100)] {
            let p = Packer::new(slot_bits, key_bits);
            assert_eq!(
                p.slots_per_plaintext(),
                Err(HeError::SlotTooWide {
                    slot_bits,
                    key_bits
                })
            );
            assert_eq!(
                p.pack(&[1, 2, 3]),
                Err(HeError::SlotTooWide {
                    slot_bits,
                    key_bits
                }),
                "pack must refuse to emit headroom-less slots"
            );
        }
        // One slot plus headroom is exactly the boundary case that stays ok.
        assert_eq!(Packer::new(32, 64).slots_per_plaintext().unwrap(), 1);
    }

    #[test]
    fn overflowing_slot_is_rejected() {
        let p = Packer::new(16, 256);
        assert_eq!(
            p.pack(&[70_000]),
            Err(HeError::PackingOverflow {
                slot_bits: 16,
                value: 70_000
            })
        );
    }

    #[test]
    fn encrypted_packed_round_trip() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let values: Vec<u64> = (0..40).map(|i| i * 3).collect();
        let enc = p.encrypt(&pk, &values, &mut rng).unwrap();
        assert_eq!(enc.decrypt(&sk), values);
        assert!(
            enc.ciphertext_count() < values.len(),
            "packing must reduce ciphertext count"
        );
    }

    #[test]
    fn packed_addition_is_slotwise() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let a: Vec<u64> = vec![1, 0, 3, 0, 5, 6];
        let b: Vec<u64> = vec![0, 2, 0, 4, 5, 6];
        let ea = p.encrypt(&pk, &a, &mut rng).unwrap();
        let eb = p.encrypt(&pk, &b, &mut rng).unwrap();
        let sum = ea.add(&eb).unwrap();
        assert_eq!(sum.decrypt(&sk), vec![1, 2, 3, 4, 10, 12]);
    }

    #[test]
    fn repeated_additions_stay_below_slot_capacity() {
        let (pk, sk, mut rng) = setup();
        let p = Packer::new(32, crate::TEST_KEY_BITS);
        let one_hot: Vec<u64> = vec![0, 1, 0];
        let mut acc = p.encrypt(&pk, &[0, 0, 0], &mut rng).unwrap();
        for _ in 0..50 {
            let c = p.encrypt(&pk, &one_hot, &mut rng).unwrap();
            acc = acc.add(&c).unwrap();
        }
        assert_eq!(acc.decrypt(&sk), vec![0, 50, 0]);
    }

    #[test]
    fn mismatched_counts_rejected() {
        let (pk, _sk, mut rng) = setup();
        let p = Packer::new(16, crate::TEST_KEY_BITS);
        let a = p.encrypt(&pk, &[1, 2, 3], &mut rng).unwrap();
        let b = p.encrypt(&pk, &[1, 2], &mut rng).unwrap();
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn packing_reduces_transport_size_vs_elementwise() {
        let (pk, _sk, mut rng) = setup();
        let values = vec![1u64; 56]; // registry length from the paper's group 1
        let elementwise = crate::EncryptedVector::encrypt_u64(&pk, &values, &mut rng);
        let packed = Packer::new(16, crate::TEST_KEY_BITS)
            .encrypt(&pk, &values, &mut rng)
            .unwrap();
        assert!(packed.byte_len() < elementwise.byte_len() / 4);
    }

    #[test]
    #[should_panic(expected = "slot width")]
    fn invalid_slot_width_panics() {
        let _ = Packer::new(4, 256);
    }

    #[test]
    fn default_packer_matches_paper_key_size() {
        let p = default_packer();
        assert_eq!(p.key_bits, crate::PAPER_KEY_BITS);
        assert_eq!(p.slot_bits, 32);
    }
}
