//! A single Paillier ciphertext and its homomorphic operations.

use num_bigint::BigUint;
use num_traits::One;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::HeError;
use crate::keys::PublicKey;

/// An encryption of one integer under a [`PublicKey`].
///
/// The additive homomorphism of Paillier maps plaintext addition to ciphertext
/// multiplication modulo `n²`:
///
/// * [`Ciphertext::add`] — `Enc(a) ⊕ Enc(b) = Enc(a + b)`
/// * [`Ciphertext::add_plain`] — `Enc(a) ⊕ b = Enc(a + b)` without encrypting `b`
/// * [`Ciphertext::mul_plain`] — `Enc(a)^k = Enc(a · k)`
///
/// These are exactly the operations the Dubhe server performs on registries and
/// on encrypted label distributions: it can *sum* contributions but can never
/// read them.
///
/// The stored key is a shared [`PublicKey`] *handle* — one `Arc` pointer, not
/// an owned copy of the modulus — so a vector of ciphertexts stores its key
/// material exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    value: BigUint,
    public: PublicKey,
}

impl Ciphertext {
    /// Wraps a raw ciphertext value. Intended for use by key / vector code in
    /// this crate and by deserialisation paths.
    pub fn from_raw(value: BigUint, public: PublicKey) -> Self {
        Ciphertext { value, public }
    }

    /// The raw group element in `Z*_{n²}`.
    pub fn raw(&self) -> &BigUint {
        &self.value
    }

    /// The public key this ciphertext was produced under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    fn check_same_key(&self, other: &Ciphertext) -> Result<(), HeError> {
        if !self.public.same_key(&other.public) {
            Err(HeError::KeyMismatch)
        } else {
            Ok(())
        }
    }

    /// Homomorphic addition of two ciphertexts: `Dec(a ⊕ b) = Dec(a) + Dec(b) (mod n)`.
    pub fn add(&self, other: &Ciphertext) -> Result<Ciphertext, HeError> {
        self.check_same_key(other)?;
        let value = (&self.value * &other.value) % self.public.n_squared();
        Ok(Ciphertext {
            value,
            public: self.public.clone(),
        })
    }

    /// Adds a plaintext constant to the encrypted value.
    pub fn add_plain(&self, plain: &BigUint) -> Result<Ciphertext, HeError> {
        if plain >= self.public.n() {
            return Err(HeError::PlaintextTooLarge);
        }
        // Multiplying by g^plain = (1 + plain·n) adds `plain` to the plaintext.
        let g_to_m = (BigUint::one() + plain * self.public.n()) % self.public.n_squared();
        let value = (&self.value * g_to_m) % self.public.n_squared();
        Ok(Ciphertext {
            value,
            public: self.public.clone(),
        })
    }

    /// Adds a `u64` plaintext constant.
    pub fn add_plain_u64(&self, plain: u64) -> Ciphertext {
        self.add_plain(&BigUint::from(plain))
            .expect("u64 fits in the message space")
    }

    /// Multiplies the encrypted value by a plaintext scalar:
    /// `Dec(cᵏ) = k · Dec(c) (mod n)`.
    pub fn mul_plain(&self, k: &BigUint) -> Ciphertext {
        let value = self.public.pow_mod_n_squared(&self.value, k);
        Ciphertext {
            value,
            public: self.public.clone(),
        }
    }

    /// Multiplies the encrypted value by a `u64` scalar.
    pub fn mul_plain_u64(&self, k: u64) -> Ciphertext {
        self.mul_plain(&BigUint::from(k))
    }

    /// Re-randomises the ciphertext by multiplying with a fresh encryption of
    /// zero. The plaintext is unchanged but the ciphertext becomes unlinkable
    /// to the original — used when an agent forwards aggregated values.
    pub fn rerandomise<R: Rng + ?Sized>(&self, rng: &mut R) -> Ciphertext {
        let r = self.public.sample_randomness(rng);
        let r_to_n = self.public.pow_mod_n_squared(&r, self.public.n());
        let value = (&self.value * r_to_n) % self.public.n_squared();
        Ciphertext {
            value,
            public: self.public.clone(),
        }
    }

    /// Serialized byte length of the raw ciphertext (used by the overhead study).
    pub fn byte_len(&self) -> usize {
        self.value.to_bytes_be().len()
    }
}

/// Homomorphically sums an iterator of ciphertexts, returning `Enc(0)` for an
/// empty iterator.
pub fn sum_ciphertexts<'a, I>(public: &PublicKey, iter: I) -> Result<Ciphertext, HeError>
where
    I: IntoIterator<Item = &'a Ciphertext>,
{
    let mut acc = public.zero_ciphertext();
    for ct in iter {
        acc = acc.add(ct)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use rand::SeedableRng;

    fn setup() -> (crate::PublicKey, crate::PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn homomorphic_addition_matches_plaintext_addition() {
        let (pk, sk, mut rng) = setup();
        for (a, b) in [(0u64, 0u64), (1, 2), (1000, 999), (123456, 654321)] {
            let ca = pk.encrypt_u64(a, &mut rng);
            let cb = pk.encrypt_u64(b, &mut rng);
            let sum = ca.add(&cb).unwrap();
            assert_eq!(sk.decrypt_u64(&sum), a + b);
        }
    }

    #[test]
    fn add_plain_matches() {
        let (pk, sk, mut rng) = setup();
        let c = pk.encrypt_u64(41, &mut rng);
        assert_eq!(sk.decrypt_u64(&c.add_plain_u64(1)), 42);
        assert_eq!(sk.decrypt_u64(&c.add_plain_u64(0)), 41);
    }

    #[test]
    fn mul_plain_matches() {
        let (pk, sk, mut rng) = setup();
        let c = pk.encrypt_u64(7, &mut rng);
        assert_eq!(sk.decrypt_u64(&c.mul_plain_u64(6)), 42);
        assert_eq!(sk.decrypt_u64(&c.mul_plain_u64(0)), 0);
        assert_eq!(sk.decrypt_u64(&c.mul_plain_u64(1)), 7);
    }

    #[test]
    fn signed_addition_wraps_correctly() {
        let (pk, sk, mut rng) = setup();
        let a = pk.encrypt_i64(-5, &mut rng);
        let b = pk.encrypt_i64(3, &mut rng);
        assert_eq!(sk.decrypt_i64(&a.add(&b).unwrap()).unwrap(), -2);
        let c = pk.encrypt_i64(10, &mut rng);
        assert_eq!(sk.decrypt_i64(&a.add(&c).unwrap()).unwrap(), 5);
    }

    #[test]
    fn rerandomise_preserves_plaintext_but_changes_ciphertext() {
        let (pk, sk, mut rng) = setup();
        let c = pk.encrypt_u64(99, &mut rng);
        let r = c.rerandomise(&mut rng);
        assert_ne!(c.raw(), r.raw());
        assert_eq!(sk.decrypt_u64(&r), 99);
    }

    #[test]
    fn mixing_keys_is_rejected() {
        let (pk1, _sk1, mut rng) = setup();
        let kp2 = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let c1 = pk1.encrypt_u64(1, &mut rng);
        let c2 = kp2.public.encrypt_u64(1, &mut rng);
        assert_eq!(c1.add(&c2), Err(HeError::KeyMismatch));
    }

    #[test]
    fn add_plain_rejects_oversized_plaintext() {
        let (pk, _sk, mut rng) = setup();
        let c = pk.encrypt_u64(1, &mut rng);
        let too_big = pk.n().clone();
        assert_eq!(c.add_plain(&too_big), Err(HeError::PlaintextTooLarge));
    }

    #[test]
    fn sum_of_many_ciphertexts() {
        let (pk, sk, mut rng) = setup();
        let values: Vec<u64> = (0..25).collect();
        let cts: Vec<_> = values
            .iter()
            .map(|&v| pk.encrypt_u64(v, &mut rng))
            .collect();
        let total = sum_ciphertexts(&pk, &cts).unwrap();
        assert_eq!(sk.decrypt_u64(&total), values.iter().sum::<u64>());
    }

    #[test]
    fn empty_sum_is_zero() {
        let (pk, sk, _rng) = setup();
        let total = sum_ciphertexts(&pk, std::iter::empty::<&Ciphertext>()).unwrap();
        assert_eq!(sk.decrypt_u64(&total), 0);
    }

    #[test]
    fn byte_len_close_to_twice_key_size() {
        let (pk, _sk, mut rng) = setup();
        let c = pk.encrypt_u64(123, &mut rng);
        // Ciphertext lives mod n², i.e. about 2 × key bits.
        let expected = (2 * crate::TEST_KEY_BITS as usize) / 8;
        assert!(c.byte_len() <= expected && c.byte_len() >= expected - 8);
    }

    #[test]
    fn ciphertexts_share_the_key_handle() {
        let (pk, _sk, mut rng) = setup();
        let a = pk.encrypt_u64(1, &mut rng);
        let b = pk.encrypt_u64(2, &mut rng);
        // Cloning a ciphertext copies a pointer-sized key handle, not the
        // multi-kilobit modulus: all ciphertexts alias one key allocation.
        assert!(a.public_key().same_key(b.public_key()));
        let c = a.clone();
        assert!(std::ptr::eq(
            c.public_key().n() as *const _,
            a.public_key().n() as *const _,
        ));
    }
}
