//! Error type shared by all dubhe-he operations.

use std::fmt;

/// Errors produced by the homomorphic-encryption layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeError {
    /// Two ciphertexts (or vectors) were combined under different public keys.
    KeyMismatch,
    /// Vector operands have different lengths.
    LengthMismatch { left: usize, right: usize },
    /// A plaintext does not fit into the message space of the key.
    PlaintextTooLarge,
    /// A decrypted plaintext is wider than the integer type the caller asked
    /// for (e.g. a registry counter that no longer fits in a `u64`).
    PlaintextTooWide {
        /// Number of significant bits of the decrypted plaintext.
        bits: u64,
        /// Width in bits of the requested integer type.
        max_bits: u64,
    },
    /// A packed word would overflow its slot width.
    PackingOverflow { slot_bits: u32, value: u64 },
    /// The packing slot width leaves no room for even one slot (plus the
    /// overflow-headroom slot) in a plaintext of the given key size.
    SlotTooWide { slot_bits: u32, key_bits: u64 },
    /// A declared packing configuration cannot guarantee lane isolation:
    /// `max_clients · max_counter` reaches `2^slot_bits`, so a worst-case
    /// fold could carry into the neighboring slot. Refused at configuration
    /// time — before any ciphertext exists.
    HeadroomExceeded {
        /// The slot width the configuration declared.
        slot_bits: u32,
        /// The declared maximum cohort size.
        max_clients: u64,
        /// The declared per-lane maximum of one contribution.
        max_counter: u64,
    },
    /// A packed fold was asked to absorb more contributions than the
    /// headroom model's declared client budget. Folding past the budget
    /// could overflow a lane silently, so the fold refuses instead.
    ClientBudgetExhausted {
        /// Contributions the fold would hold after this one.
        folded: u64,
        /// The declared maximum cohort size.
        max_clients: u64,
    },
    /// Two packed operands (or a packed message and the receiver's declared
    /// policy) disagree on slot layout — combining them lane-wise would
    /// scramble counters across slot boundaries.
    PackerMismatch {
        /// Expected slot width in bits.
        expected_slot_bits: u32,
        /// Expected key size the layout is dimensioned for.
        expected_key_bits: u64,
        /// The offending slot width.
        got_slot_bits: u32,
        /// The offending key size.
        got_key_bits: u64,
    },
    /// The requested key size is too small to be usable.
    KeyTooSmall { bits: u64, minimum: u64 },
    /// Decryption produced a value outside the expected signed range.
    SignedRangeOverflow,
    /// A vector slice was requested outside the vector's bounds.
    SliceOutOfRange {
        /// Requested start position.
        start: usize,
        /// Requested end position (exclusive).
        end: usize,
        /// The vector's actual length.
        len: usize,
    },
    /// A value needs more bytes than the fixed field width the canonical
    /// binary encoding assigns it (see [`crate::codec`]).
    ValueTooWide {
        /// Minimal big-endian byte length of the value.
        bytes: usize,
        /// The fixed field width it had to fit.
        width: usize,
    },
    /// A canonical binary encoding could not be decoded: truncated input,
    /// an out-of-range field, or trailing garbage.
    MalformedEncoding {
        /// What was wrong with the bytes.
        detail: &'static str,
    },
    /// Private-key material failed validation (factors that do not multiply
    /// to the modulus, even "primes", or a non-invertible `L` value).
    MalformedKey {
        /// What was wrong with the key material.
        detail: &'static str,
    },
}

impl fmt::Display for HeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeError::KeyMismatch => {
                write!(f, "ciphertexts were produced under different public keys")
            }
            HeError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "encrypted vectors have different lengths: {left} vs {right}"
                )
            }
            HeError::PlaintextTooLarge => {
                write!(f, "plaintext does not fit in the Paillier message space")
            }
            HeError::PlaintextTooWide { bits, max_bits } => {
                write!(
                    f,
                    "decrypted plaintext needs {bits} bits but the caller asked \
                     for a {max_bits}-bit integer"
                )
            }
            HeError::PackingOverflow { slot_bits, value } => {
                write!(
                    f,
                    "value {value} does not fit in a {slot_bits}-bit packing slot"
                )
            }
            HeError::SlotTooWide {
                slot_bits,
                key_bits,
            } => {
                write!(
                    f,
                    "{slot_bits}-bit slots do not fit into a {key_bits}-bit plaintext \
                     (need at least one slot plus one slot of headroom)"
                )
            }
            HeError::HeadroomExceeded {
                slot_bits,
                max_clients,
                max_counter,
            } => {
                write!(
                    f,
                    "{max_clients} clients × counter {max_counter} can overflow a \
                     {slot_bits}-bit slot (lane sums must stay below 2^{slot_bits})"
                )
            }
            HeError::ClientBudgetExhausted {
                folded,
                max_clients,
            } => {
                write!(
                    f,
                    "packed fold refuses contribution {folded}: the headroom model \
                     declares at most {max_clients} clients"
                )
            }
            HeError::PackerMismatch {
                expected_slot_bits,
                expected_key_bits,
                got_slot_bits,
                got_key_bits,
            } => {
                write!(
                    f,
                    "packed slot layout mismatch: expected {expected_slot_bits}-bit slots \
                     for {expected_key_bits}-bit keys, got {got_slot_bits}-bit slots for \
                     {got_key_bits}-bit keys"
                )
            }
            HeError::KeyTooSmall { bits, minimum } => {
                write!(
                    f,
                    "key size {bits} bits is below the supported minimum {minimum}"
                )
            }
            HeError::SignedRangeOverflow => {
                write!(f, "decrypted value falls outside the signed encoding range")
            }
            HeError::SliceOutOfRange { start, end, len } => {
                write!(
                    f,
                    "slice {start}..{end} is out of range for a length-{len} encrypted vector"
                )
            }
            HeError::ValueTooWide { bytes, width } => {
                write!(
                    f,
                    "value needs {bytes} bytes but its canonical field is {width} bytes wide"
                )
            }
            HeError::MalformedEncoding { detail } => {
                write!(f, "malformed canonical encoding: {detail}")
            }
            HeError::MalformedKey { detail } => {
                write!(f, "invalid private-key material: {detail}")
            }
        }
    }
}

impl std::error::Error for HeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HeError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = HeError::PackingOverflow {
            slot_bits: 16,
            value: 70000,
        };
        assert!(e.to_string().contains("70000"));
        assert!(HeError::KeyMismatch.to_string().contains("public keys"));
        assert!(HeError::KeyTooSmall {
            bits: 8,
            minimum: 64
        }
        .to_string()
        .contains("minimum"));
        let e = HeError::SlotTooWide {
            slot_bits: 64,
            key_bits: 64,
        };
        assert!(e.to_string().contains("64-bit slots"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&HeError::KeyMismatch);
    }
}
