//! Canonical binary encoding of the HE objects that cross the wire.
//!
//! The `DBH2` payload codec of the protocol layer bottoms out here: every
//! ciphertext is emitted as a **fixed-width big-endian limb** of exactly
//! [`ciphertext_size_bytes`] bytes (⌈2·|n|/8⌉ — the width of its residue
//! class), and a public key as its ⌈|n|/8⌉-byte modulus. These are the same
//! widths [`crate::transport`] models, which is what makes *measured* frame
//! bytes line up with the *modeled* canonical accounting: an encoded vector
//! is its canonical ciphertext payload plus a constant-size header, instead
//! of the ~2.5× expansion of decimal-string JSON.
//!
//! Layouts (all integers big-endian):
//!
//! ```text
//! public key   := u32 len | n (len = ⌈|n|/8⌉ bytes, minimal big-endian)
//! ciphertext   := value, zero-padded to ⌈2·|n|/8⌉ bytes (width from the key)
//! vector       := public key | u32 count | count × ciphertext
//! private key  := public key | u32 len | p | u32 len | q
//! ```
//!
//! Decoding is defensive: truncated input, counts that overrun the payload,
//! residues `≥ n²` and key material that fails validation all surface as
//! typed [`HeError`]s — never a panic, never an unbounded allocation (the
//! element count is checked against the remaining payload *before* any
//! buffer is reserved).

use num_bigint::BigUint;
use num_traits::Zero;

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::keys::{PrivateKey, PublicKey};
use crate::packing::{PackedEncryptedVector, Packer};
use crate::transport::ciphertext_size_bytes;
use crate::vector::EncryptedVector;

/// Appends `v` as 4 big-endian bytes.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends `v` as 8 big-endian bytes.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends `x` left-padded with zeros to exactly `width` bytes.
///
/// Returns [`HeError::ValueTooWide`] if `x` does not fit.
pub fn put_biguint_fixed(out: &mut Vec<u8>, x: &BigUint, width: usize) -> Result<(), HeError> {
    let bytes = x.to_bytes_be();
    // `to_bytes_be` renders zero as one 0x00 byte; canonically it needs none.
    let bytes: &[u8] = if x.is_zero() { &[] } else { &bytes };
    if bytes.len() > width {
        return Err(HeError::ValueTooWide {
            bytes: bytes.len(),
            width,
        });
    }
    out.resize(out.len() + (width - bytes.len()), 0);
    out.extend_from_slice(bytes);
    Ok(())
}

/// Takes the next `n` bytes off the cursor.
pub fn take_bytes<'a>(cur: &mut &'a [u8], n: usize) -> Result<&'a [u8], HeError> {
    if cur.len() < n {
        return Err(HeError::MalformedEncoding {
            detail: "truncated: fewer bytes than the encoding announces",
        });
    }
    let (head, tail) = cur.split_at(n);
    *cur = tail;
    Ok(head)
}

/// Takes a big-endian `u32` off the cursor.
pub fn take_u32(cur: &mut &[u8]) -> Result<u32, HeError> {
    let b = take_bytes(cur, 4)?;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

/// Takes a big-endian `u64` off the cursor.
pub fn take_u64(cur: &mut &[u8]) -> Result<u64, HeError> {
    let b = take_bytes(cur, 8)?;
    Ok(u64::from_be_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Encodes a public key: `u32` length + the minimal big-endian modulus.
///
/// The length always equals
/// [`public_key_size_bytes`](crate::transport::public_key_size_bytes) for
/// the key, so the modulus portion matches the transport model exactly.
pub fn encode_public_key(public: &PublicKey, out: &mut Vec<u8>) {
    let n = public.n().to_bytes_be();
    put_u32(out, n.len() as u32);
    out.extend_from_slice(&n);
}

/// Decodes a public key. Rejects a zero modulus and non-minimal encodings
/// (leading zero bytes), so one key has exactly one encoding.
pub fn decode_public_key(cur: &mut &[u8]) -> Result<PublicKey, HeError> {
    let len = take_u32(cur)? as usize;
    let bytes = take_bytes(cur, len)?;
    if bytes.is_empty() || bytes[0] == 0 {
        return Err(HeError::MalformedEncoding {
            detail: "public key modulus must be non-zero and minimally encoded",
        });
    }
    Ok(PublicKey::new(BigUint::from_bytes_be(bytes)))
}

/// Encodes one ciphertext at the fixed width of its key's residue class.
///
/// The key itself is *not* emitted — vectors carry it once, and single
/// ciphertexts travel alongside a key the receiver already holds.
pub fn encode_ciphertext(ct: &Ciphertext, out: &mut Vec<u8>) -> Result<(), HeError> {
    put_biguint_fixed(out, ct.raw(), ciphertext_size_bytes(ct.public_key()))
}

/// Decodes one fixed-width ciphertext under `public`, rejecting residues
/// outside `Z_{n²}`.
pub fn decode_ciphertext(cur: &mut &[u8], public: &PublicKey) -> Result<Ciphertext, HeError> {
    let bytes = take_bytes(cur, ciphertext_size_bytes(public))?;
    let value = BigUint::from_bytes_be(bytes);
    if &value >= public.n_squared() {
        return Err(HeError::MalformedEncoding {
            detail: "ciphertext residue is not below n²",
        });
    }
    Ok(Ciphertext::from_raw(value, public.clone()))
}

/// Encodes an element-wise encrypted vector: the key once, then `count`
/// fixed-width ciphertexts. The ciphertext portion is exactly
/// [`vector_wire_bytes`](crate::transport::vector_wire_bytes).
pub fn encode_vector(vector: &EncryptedVector, out: &mut Vec<u8>) -> Result<(), HeError> {
    out.reserve(encoded_vector_bytes(vector));
    encode_public_key(vector.public_key(), out);
    put_u32(out, vector.len() as u32);
    let width = ciphertext_size_bytes(vector.public_key());
    for ct in vector.elements() {
        put_biguint_fixed(out, ct.raw(), width)?;
    }
    Ok(())
}

/// Exact encoded size of [`encode_vector`]'s output, from the transport size
/// model: the key header plus `count` fixed-width ciphertexts. Encoders
/// reserve this up front so a registry never grows its buffer element by
/// element.
pub fn encoded_vector_bytes(vector: &EncryptedVector) -> usize {
    4 + crate::transport::public_key_size_bytes(vector.public_key())
        + 4
        + crate::transport::vector_wire_bytes(vector)
}

/// A decoded-but-not-materialised encrypted vector: the public key plus a
/// borrowed, fully validated fixed-width residue block still inside the
/// buffer it arrived in.
///
/// Produced by [`decode_vector_view`], which performs every check
/// [`decode_vector`] does (header shape, count-vs-payload, residues `< n²`)
/// without allocating a [`BigUint`] per element. A view is therefore safe to
/// fold directly — `RunningFold::fold_view` multiplies the residue bytes
/// into its accumulators with zero per-element heap traffic — or to
/// [`materialize`](Self::materialize) into an owned [`EncryptedVector`]
/// when it must outlive the frame buffer.
#[derive(Debug, Clone)]
pub struct EncryptedVectorView<'a> {
    public: PublicKey,
    /// `count` residues of exactly `width` bytes each, all `< n²`.
    residues: &'a [u8],
    count: usize,
    width: usize,
}

impl<'a> EncryptedVectorView<'a> {
    /// The key every element was encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` if the vector has no positions.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The fixed big-endian width of each residue
    /// ([`ciphertext_size_bytes`] of the key).
    pub fn residue_width(&self) -> usize {
        self.width
    }

    /// The big-endian bytes of position `i`'s residue (validated `< n²`).
    ///
    /// # Panics
    ///
    /// If `i >= self.len()`.
    pub fn residue_bytes(&self, i: usize) -> &'a [u8] {
        &self.residues[i * self.width..(i + 1) * self.width]
    }

    /// The borrowed residue block for positions `start..end` — the per-shard
    /// slice of a sharded fold.
    ///
    /// # Panics
    ///
    /// If the range is out of bounds.
    pub fn residue_range(&self, start: usize, end: usize) -> EncryptedVectorView<'a> {
        EncryptedVectorView {
            public: self.public.clone(),
            residues: &self.residues[start * self.width..end * self.width],
            count: end - start,
            width: self.width,
        }
    }

    /// Total size of the residue block in bytes (`count × width`) — the
    /// canonical ciphertext payload the transport model accounts.
    pub fn ciphertext_payload_bytes(&self) -> usize {
        self.residues.len()
    }

    /// Copies the view out into an owned [`EncryptedVector`], bit-identical
    /// to what [`decode_vector`] returns for the same bytes. The escape
    /// hatch for ciphertexts that must outlive the frame buffer.
    pub fn materialize(&self) -> EncryptedVector {
        let elements = (0..self.count)
            .map(|i| {
                Ciphertext::from_raw(
                    BigUint::from_bytes_be(self.residue_bytes(i)),
                    self.public.clone(),
                )
            })
            .collect();
        EncryptedVector::from_raw_parts(elements, self.public.clone())
    }
}

/// Decodes an encrypted vector as a borrowed [`EncryptedVectorView`] over
/// the input buffer — same validation and cursor discipline as
/// [`decode_vector`], but no per-element allocation.
///
/// Residues are range-checked against `n²` by fixed-width big-endian byte
/// comparison (equivalent to the numeric comparison), so a returned view
/// upholds the same invariants as a decoded vector.
pub fn decode_vector_view<'a>(cur: &mut &'a [u8]) -> Result<EncryptedVectorView<'a>, HeError> {
    let public = decode_public_key(cur)?;
    let count = take_u32(cur)? as usize;
    let width = ciphertext_size_bytes(&public);
    if count
        .checked_mul(width)
        .is_none_or(|total| total > cur.len())
    {
        return Err(HeError::MalformedEncoding {
            detail: "vector element count overruns the payload",
        });
    }
    let residues = take_bytes(cur, count * width)?;
    let mut bound = Vec::with_capacity(width);
    put_biguint_fixed(&mut bound, public.n_squared(), width)
        .expect("n² fits the residue width derived from it");
    for chunk in residues.chunks_exact(width) {
        if chunk >= bound.as_slice() {
            return Err(HeError::MalformedEncoding {
                detail: "ciphertext residue is not below n²",
            });
        }
    }
    Ok(EncryptedVectorView {
        public,
        residues,
        count,
        width,
    })
}

/// Decodes an encrypted vector. The announced element count is checked
/// against the remaining payload before anything is allocated.
pub fn decode_vector(cur: &mut &[u8]) -> Result<EncryptedVector, HeError> {
    let public = decode_public_key(cur)?;
    let count = take_u32(cur)? as usize;
    let width = ciphertext_size_bytes(&public);
    if count
        .checked_mul(width)
        .is_none_or(|total| total > cur.len())
    {
        return Err(HeError::MalformedEncoding {
            detail: "vector element count overruns the payload",
        });
    }
    let mut elements = Vec::with_capacity(count);
    for _ in 0..count {
        elements.push(decode_ciphertext(cur, &public)?);
    }
    Ok(EncryptedVector::from_raw_parts(elements, public))
}

/// Encodes a packed encrypted vector: the slot layout header, the lane
/// count, then the inner vector in its canonical form.
///
/// ```text
/// packed vector := u32 slot_bits | u64 key_bits | u64 count | vector
/// ```
pub fn encode_packed_vector(
    packed: &PackedEncryptedVector,
    out: &mut Vec<u8>,
) -> Result<(), HeError> {
    out.reserve(encoded_packed_vector_bytes(packed));
    let packer = packed.packer();
    put_u32(out, packer.slot_bits);
    put_u64(out, packer.key_bits);
    put_u64(out, packed.count() as u64);
    encode_vector(packed.vector(), out)
}

/// Exact encoded size of [`encode_packed_vector`]'s output: the 20-byte slot
/// layout header plus the inner vector's encoding.
pub fn encoded_packed_vector_bytes(packed: &PackedEncryptedVector) -> usize {
    4 + 8 + 8 + encoded_vector_bytes(packed.vector())
}

/// Decodes a packed encrypted vector. Beyond the inner vector's defenses,
/// the slot layout is validated against the decoded key and lane count —
/// hostile widths, foreign key sizes and ciphertext counts that disagree
/// with the layout are all typed errors.
pub fn decode_packed_vector(cur: &mut &[u8]) -> Result<PackedEncryptedVector, HeError> {
    let slot_bits = take_u32(cur)?;
    let key_bits = take_u64(cur)?;
    let count = take_u64(cur)?;
    if count > u32::MAX as u64 {
        return Err(HeError::MalformedEncoding {
            detail: "packed lane count overruns the u32 element space",
        });
    }
    let packer = Packer::try_new(slot_bits, key_bits)?;
    let vector = decode_vector(cur)?;
    PackedEncryptedVector::from_vector(vector, count as usize, packer)
}

/// Encodes a private key: its public key, then the two length-prefixed prime
/// factors (together one modulus width — the transport model's
/// `private_key_size_bytes`).
pub fn encode_private_key(private: &PrivateKey, out: &mut Vec<u8>) {
    encode_public_key(&private.public, out);
    let (p, q) = private.primes();
    for factor in [p, q] {
        let bytes = factor.to_bytes_be();
        put_u32(out, bytes.len() as u32);
        out.extend_from_slice(&bytes);
    }
}

/// Decodes and *validates* a private key: factors that do not multiply to
/// the modulus (or otherwise fail the CRT precomputation) are rejected with
/// [`HeError::MalformedKey`].
pub fn decode_private_key(cur: &mut &[u8]) -> Result<PrivateKey, HeError> {
    let public = decode_public_key(cur)?;
    let mut factors = Vec::with_capacity(2);
    for _ in 0..2 {
        let len = take_u32(cur)? as usize;
        if len > cur.len() {
            return Err(HeError::MalformedEncoding {
                detail: "private-key factor overruns the payload",
            });
        }
        factors.push(BigUint::from_bytes_be(take_bytes(cur, len)?));
    }
    let q = factors.pop().expect("two factors pushed");
    let p = factors.pop().expect("two factors pushed");
    PrivateKey::try_new(public, p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use crate::transport::{public_key_size_bytes, vector_wire_bytes};
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn vector_round_trips_and_matches_the_size_model_exactly() {
        let (pk, sk, mut rng) = setup();
        let values = vec![0u64, 1, 5, 1_000_000, 0, 42, 7, 9];
        let v = EncryptedVector::encrypt_u64(&pk, &values, &mut rng);

        let mut buf = Vec::new();
        encode_vector(&v, &mut buf).unwrap();
        // Header (4 + |n| + 4) + exactly the canonical ciphertext payload.
        assert_eq!(
            buf.len(),
            4 + public_key_size_bytes(&pk) + 4 + vector_wire_bytes(&v),
            "measured encoding must equal the transport model plus a constant header"
        );

        let mut cur = &buf[..];
        let back = decode_vector(&mut cur).unwrap();
        assert!(cur.is_empty(), "decoding must consume the whole encoding");
        assert_eq!(back, v);
        assert_eq!(back.decrypt_u64(&sk).unwrap(), values);
    }

    #[test]
    fn keys_round_trip_through_the_binary_codec() {
        let (pk, sk, mut rng) = setup();
        let mut buf = Vec::new();
        encode_public_key(&pk, &mut buf);
        assert_eq!(buf.len(), 4 + public_key_size_bytes(&pk));
        let back_pk = decode_public_key(&mut &buf[..]).unwrap();
        assert_eq!(back_pk, pk);

        let mut buf = Vec::new();
        encode_private_key(&sk, &mut buf);
        let back_sk = decode_private_key(&mut &buf[..]).unwrap();
        assert_eq!(back_sk, sk);
        let ct = back_pk.encrypt_u64(123, &mut rng);
        assert_eq!(back_sk.decrypt_u64(&ct), 123);
    }

    #[test]
    fn truncated_and_oversized_inputs_are_typed_errors() {
        let (pk, _sk, mut rng) = setup();
        let v = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        let mut buf = Vec::new();
        encode_vector(&v, &mut buf).unwrap();

        // Every strict prefix fails with a typed error, never a panic.
        for cut in [0, 3, 5, buf.len() / 2, buf.len() - 1] {
            let err = decode_vector(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, HeError::MalformedEncoding { .. }),
                "cut {cut}: {err}"
            );
        }

        // A hostile element count larger than the payload is rejected before
        // any allocation happens.
        let mut hostile = Vec::new();
        encode_public_key(&pk, &mut hostile);
        put_u32(&mut hostile, u32::MAX);
        let err = decode_vector(&mut &hostile[..]).unwrap_err();
        assert!(matches!(err, HeError::MalformedEncoding { .. }), "{err}");
    }

    #[test]
    fn out_of_range_residues_and_forged_keys_are_rejected() {
        let (pk, _sk, _rng) = setup();
        // A ciphertext field of all 0xFF is ≥ n² at the fixed width.
        let mut buf = Vec::new();
        encode_public_key(&pk, &mut buf);
        put_u32(&mut buf, 1);
        buf.resize(buf.len() + ciphertext_size_bytes(&pk), 0xFF);
        let err = decode_vector(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, HeError::MalformedEncoding { .. }), "{err}");

        // Private-key factors that do not multiply to n are refused.
        let mut forged = Vec::new();
        encode_public_key(&pk, &mut forged);
        for _ in 0..2 {
            put_u32(&mut forged, 1);
            forged.push(35);
        }
        let err = decode_private_key(&mut &forged[..]).unwrap_err();
        assert!(matches!(err, HeError::MalformedKey { .. }), "{err}");

        // A non-minimal (zero-padded) modulus is not a valid encoding.
        let n = pk.n().to_bytes_be();
        let mut padded = Vec::new();
        put_u32(&mut padded, (n.len() + 1) as u32);
        padded.push(0);
        padded.extend_from_slice(&n);
        let err = decode_public_key(&mut &padded[..]).unwrap_err();
        assert!(matches!(err, HeError::MalformedEncoding { .. }), "{err}");
    }

    #[test]
    fn packed_vector_round_trips_and_matches_its_size_model() {
        let (pk, sk, mut rng) = setup();
        let packer = Packer::new(16, crate::TEST_KEY_BITS);
        let values: Vec<u64> = (0..23).map(|i| i * 9).collect();
        let packed = PackedEncryptedVector::encrypt(packer, &pk, &values, &mut rng).unwrap();

        let mut buf = Vec::new();
        encode_packed_vector(&packed, &mut buf).unwrap();
        assert_eq!(buf.len(), encoded_packed_vector_bytes(&packed));

        let mut cur = &buf[..];
        let back = decode_packed_vector(&mut cur).unwrap();
        assert!(cur.is_empty(), "decoding must consume the whole encoding");
        assert_eq!(back, packed);
        assert_eq!(back.decrypt_u64(&sk), values);
    }

    #[test]
    fn truncated_and_hostile_packed_encodings_are_typed_errors() {
        let (pk, _sk, mut rng) = setup();
        let packer = Packer::new(16, crate::TEST_KEY_BITS);
        let packed = PackedEncryptedVector::encrypt(packer, &pk, &[1, 2, 3], &mut rng).unwrap();
        let mut buf = Vec::new();
        encode_packed_vector(&packed, &mut buf).unwrap();

        for cut in [0, 3, 11, 19, buf.len() / 2, buf.len() - 1] {
            let err = decode_packed_vector(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, HeError::MalformedEncoding { .. }),
                "cut {cut}: {err}"
            );
        }

        // A hostile slot width never panics the packer.
        let mut bad = buf.clone();
        bad[..4].copy_from_slice(&77u32.to_be_bytes());
        assert!(decode_packed_vector(&mut &bad[..]).is_err());

        // A lane count that disagrees with the ciphertext count is refused.
        let mut bad = buf.clone();
        bad[12..20].copy_from_slice(&500u64.to_be_bytes());
        assert!(decode_packed_vector(&mut &bad[..]).is_err());

        // A layout header claiming a foreign key size is refused.
        let mut bad = buf;
        bad[4..12].copy_from_slice(&1024u64.to_be_bytes());
        assert!(matches!(
            decode_packed_vector(&mut &bad[..]).unwrap_err(),
            HeError::PackerMismatch { .. }
        ));
    }

    #[test]
    fn vector_view_agrees_with_the_owned_decoder() {
        let (pk, sk, mut rng) = setup();
        let values = vec![9u64, 0, 1 << 40, 3, 77];
        let v = EncryptedVector::encrypt_u64(&pk, &values, &mut rng);
        let mut buf = Vec::new();
        encode_vector(&v, &mut buf).unwrap();
        // Trailing bytes prove the two decoders consume identically.
        buf.extend_from_slice(&[0xAB, 0xCD]);

        let mut owned_cur = &buf[..];
        let owned = decode_vector(&mut owned_cur).unwrap();
        let mut view_cur = &buf[..];
        let view = decode_vector_view(&mut view_cur).unwrap();
        assert_eq!(owned_cur, view_cur, "cursor positions must agree");
        assert_eq!(view.len(), owned.len());
        assert_eq!(view.residue_width(), ciphertext_size_bytes(&pk));
        assert_eq!(
            view.ciphertext_payload_bytes(),
            vector_wire_bytes(&owned),
            "payload accounting must match the transport model"
        );
        assert_eq!(view.materialize(), owned);
        assert_eq!(view.materialize().decrypt_u64(&sk).unwrap(), values);

        // Per-position residue bytes are the canonical fixed-width limbs.
        let width = view.residue_width();
        for (i, ct) in owned.elements().iter().enumerate() {
            let mut canonical = Vec::new();
            put_biguint_fixed(&mut canonical, ct.raw(), width).unwrap();
            assert_eq!(view.residue_bytes(i), &canonical[..], "position {i}");
        }

        // A sub-range view materializes to the matching element window.
        let sub = view.residue_range(1, 4);
        assert_eq!(sub.len(), 3);
        for (i, ct) in sub.materialize().elements().iter().enumerate() {
            assert_eq!(ct.raw(), owned.elements()[1 + i].raw());
        }
    }

    #[test]
    fn vector_view_rejects_exactly_what_the_owned_decoder_rejects() {
        let (pk, _sk, mut rng) = setup();
        let v = EncryptedVector::encrypt_u64(&pk, &[5, 6, 7], &mut rng);
        let mut buf = Vec::new();
        encode_vector(&v, &mut buf).unwrap();

        for cut in 0..buf.len() {
            let owned = decode_vector(&mut &buf[..cut]);
            let view = decode_vector_view(&mut &buf[..cut]).map(|v| v.materialize());
            assert_eq!(owned, view, "cut {cut}: decoders must agree");
        }

        // An out-of-range residue is refused by both, with the same error.
        let mut hostile = buf.clone();
        let tail = hostile.len();
        let width = ciphertext_size_bytes(&pk);
        hostile[tail - width..].fill(0xFF);
        assert_eq!(
            decode_vector(&mut &hostile[..]).unwrap_err(),
            decode_vector_view(&mut &hostile[..]).unwrap_err(),
        );

        // A hostile count is refused before any allocation.
        let mut hostile = Vec::new();
        encode_public_key(&pk, &mut hostile);
        put_u32(&mut hostile, u32::MAX);
        assert!(matches!(
            decode_vector_view(&mut &hostile[..]).unwrap_err(),
            HeError::MalformedEncoding { .. }
        ));
    }

    #[test]
    fn fixed_width_field_rejects_overflow() {
        let mut out = Vec::new();
        let err = put_biguint_fixed(&mut out, &BigUint::from(0x1_0000u64), 2).unwrap_err();
        assert_eq!(err, HeError::ValueTooWide { bytes: 3, width: 2 });
        put_biguint_fixed(&mut out, &BigUint::from(7u64), 4).unwrap();
        assert_eq!(out, vec![0, 0, 0, 7]);
        out.clear();
        put_biguint_fixed(&mut out, &BigUint::zero(), 3).unwrap();
        assert_eq!(out, vec![0, 0, 0]);
    }
}
