//! Element-wise encrypted integer vectors.
//!
//! The two encrypted objects exchanged in Dubhe are vectors:
//!
//! * the **registry** `R^(t,k)` — a one-hot vector of length
//!   `l = Σ_{i∈G} C-choose-i` filled in by each client during registration, and
//! * the **scaled label distribution** `p_l` sent by tentatively selected
//!   clients during multi-time selection.
//!
//! Both are encrypted element-by-element under the epoch public key; the server
//! adds the vectors of all clients without decrypting anything.

use num_bigint::BigUint;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::keys::{PrivateKey, PublicKey};

/// A vector of Paillier ciphertexts sharing one public key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptedVector {
    elements: Vec<Ciphertext>,
    public: PublicKey,
}

impl EncryptedVector {
    /// Encrypts a slice of `u64` values element-by-element.
    pub fn encrypt_u64<R: Rng + ?Sized>(public: &PublicKey, values: &[u64], rng: &mut R) -> Self {
        let elements = values.iter().map(|&v| public.encrypt_u64(v, rng)).collect();
        EncryptedVector { elements, public: public.clone() }
    }

    /// Encrypts a slice of arbitrary-precision values.
    pub fn encrypt<R: Rng + ?Sized>(
        public: &PublicKey,
        values: &[BigUint],
        rng: &mut R,
    ) -> Result<Self, HeError> {
        let mut elements = Vec::with_capacity(values.len());
        for v in values {
            elements.push(public.encrypt(v, rng)?);
        }
        Ok(EncryptedVector { elements, public: public.clone() })
    }

    /// An all-zero encrypted vector of the given length (identity for sums).
    pub fn zeros(public: &PublicKey, len: usize) -> Self {
        let elements = (0..len).map(|_| public.zero_ciphertext()).collect();
        EncryptedVector { elements, public: public.clone() }
    }

    /// Number of encrypted elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The public key the vector was encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Access to the individual ciphertexts (e.g. for transport accounting).
    pub fn elements(&self) -> &[Ciphertext] {
        &self.elements
    }

    /// Element-wise homomorphic addition.
    pub fn add(&self, other: &EncryptedVector) -> Result<EncryptedVector, HeError> {
        if self.len() != other.len() {
            return Err(HeError::LengthMismatch { left: self.len(), right: other.len() });
        }
        if self.public.n != other.public.n {
            return Err(HeError::KeyMismatch);
        }
        let elements = self
            .elements
            .iter()
            .zip(&other.elements)
            .map(|(a, b)| a.add(b))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EncryptedVector { elements, public: self.public.clone() })
    }

    /// Element-wise plaintext-scalar multiplication.
    pub fn mul_plain_u64(&self, k: u64) -> EncryptedVector {
        let elements = self.elements.iter().map(|c| c.mul_plain_u64(k)).collect();
        EncryptedVector { elements, public: self.public.clone() }
    }

    /// Decrypts every element to a `u64`.
    pub fn decrypt_u64(&self, private: &PrivateKey) -> Vec<u64> {
        self.elements.iter().map(|c| private.decrypt_u64(c)).collect()
    }

    /// Decrypts every element to an arbitrary-precision integer.
    pub fn decrypt(&self, private: &PrivateKey) -> Vec<BigUint> {
        self.elements.iter().map(|c| private.decrypt(c)).collect()
    }

    /// Total serialized size of the ciphertexts in bytes (overhead accounting).
    pub fn byte_len(&self) -> usize {
        self.elements.iter().map(Ciphertext::byte_len).sum()
    }
}

/// Homomorphically sums a collection of encrypted vectors.
///
/// Returns `None` for an empty collection (there is no well-defined length).
pub fn sum_vectors(vectors: &[EncryptedVector]) -> Result<Option<EncryptedVector>, HeError> {
    let mut iter = vectors.iter();
    let Some(first) = iter.next() else { return Ok(None) };
    let mut acc = first.clone();
    for v in iter {
        acc = acc.add(v)?;
    }
    Ok(Some(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn vector_round_trip() {
        let (pk, sk, mut rng) = setup();
        let values = vec![0u64, 1, 2, 3, 4, 1000];
        let enc = EncryptedVector::encrypt_u64(&pk, &values, &mut rng);
        assert_eq!(enc.decrypt_u64(&sk), values);
        assert_eq!(enc.len(), 6);
        assert!(!enc.is_empty());
    }

    #[test]
    fn vector_addition_is_elementwise() {
        let (pk, sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        let b = EncryptedVector::encrypt_u64(&pk, &[10, 20, 30], &mut rng);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.decrypt_u64(&sk), vec![11, 22, 33]);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let (pk, _sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        let b = EncryptedVector::encrypt_u64(&pk, &[1, 2], &mut rng);
        assert_eq!(a.add(&b), Err(HeError::LengthMismatch { left: 3, right: 2 }));
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let (pk, _sk, mut rng) = setup();
        let kp2 = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let a = EncryptedVector::encrypt_u64(&pk, &[1], &mut rng);
        let b = EncryptedVector::encrypt_u64(&kp2.public, &[1], &mut rng);
        assert_eq!(a.add(&b), Err(HeError::KeyMismatch));
    }

    #[test]
    fn zeros_are_identity() {
        let (pk, sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[5, 6, 7], &mut rng);
        let z = EncryptedVector::zeros(&pk, 3);
        assert_eq!(a.add(&z).unwrap().decrypt_u64(&sk), vec![5, 6, 7]);
        assert_eq!(z.decrypt_u64(&sk), vec![0, 0, 0]);
    }

    #[test]
    fn scalar_multiplication() {
        let (pk, sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        assert_eq!(a.mul_plain_u64(4).decrypt_u64(&sk), vec![4, 8, 12]);
    }

    #[test]
    fn sum_vectors_aggregates_all_clients() {
        let (pk, sk, mut rng) = setup();
        let regs: Vec<EncryptedVector> = (0..10)
            .map(|i| {
                let mut v = vec![0u64; 8];
                v[i % 8] = 1;
                EncryptedVector::encrypt_u64(&pk, &v, &mut rng)
            })
            .collect();
        let total = sum_vectors(&regs).unwrap().unwrap();
        assert_eq!(total.decrypt_u64(&sk), vec![2, 2, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn sum_vectors_empty_is_none() {
        assert!(sum_vectors(&[]).unwrap().is_none());
    }

    #[test]
    fn vector_cannot_exceed_message_space() {
        let (pk, _sk, mut rng) = setup();
        let too_big = vec![pk.n.clone()];
        assert_eq!(
            EncryptedVector::encrypt(&pk, &too_big, &mut rng),
            Err(HeError::PlaintextTooLarge)
        );
    }

    #[test]
    fn byte_len_scales_with_length() {
        let (pk, _sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1; 4], &mut rng);
        let b = EncryptedVector::encrypt_u64(&pk, &[1; 8], &mut rng);
        assert!(b.byte_len() > a.byte_len());
    }
}
