//! Element-wise encrypted integer vectors.
//!
//! The two encrypted objects exchanged in Dubhe are vectors:
//!
//! * the **registry** `R^(t,k)` — a one-hot vector of length
//!   `l = Σ_{i∈G} C-choose-i` filled in by each client during registration, and
//! * the **scaled label distribution** `p_l` sent by tentatively selected
//!   clients during multi-time selection.
//!
//! Both are encrypted element-by-element under the epoch public key; the server
//! adds the vectors of all clients without decrypting anything.
//!
//! ## Hot path
//!
//! Vector encryption goes through the [`PrecomputedEncryptor`] by default: one
//! shared fixed-base table per key, short-exponent randomness per element
//! (see [`crate::fast`]). With the `parallel` feature (default-on) the
//! per-element exponentiations of `encrypt`, `decrypt`, `add` and
//! [`sum_vectors`] additionally fan out over all cores. Every fast/parallel
//! path is bit-for-bit equivalent to the serial naive one, which the property
//! tests assert.

use std::sync::Mutex;

use num_bigint::{BigUint, MontgomeryScratch};
use num_traits::Zero;
use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::fast::{sample_exponents, Encryptor, PrecomputedEncryptor};
use crate::keys::{PrivateKey, PublicKey};

/// Minimum number of elements before vector operations fan out over cores
/// (below this the thread hand-off costs more than the modular arithmetic).
pub(crate) const PARALLEL_THRESHOLD: usize = 8;

/// Number of chunks (and pooled scratch arenas) a fold splits its
/// accumulator slice into. Fixed — not a function of the element count — so
/// the bookkeeping a steady-state fold allocates is O(1) in the vector
/// length, which the counting-allocator test pins.
pub(crate) const FOLD_CHUNKS: usize = 8;

/// A fixed pool of CIOS scratch arenas, one per fold chunk. The arenas warm
/// up on first use and are reused for every subsequent multiplication, which
/// is what takes the steady-state fold to zero heap allocations per element.
///
/// The lanes sit behind uncontended `Mutex`es purely so disjoint parallel
/// chunks can each borrow their own arena mutably through a shared pool
/// reference; locks are taken once per chunk, not per element.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    lanes: Vec<Mutex<MontgomeryScratch>>,
}

impl ScratchPool {
    pub(crate) fn new() -> Self {
        ScratchPool {
            lanes: (0..FOLD_CHUNKS).map(|_| Mutex::default()).collect(),
        }
    }
}

impl Clone for ScratchPool {
    /// Cloning yields a fresh (cold) pool: scratch contents are meaningless
    /// between operations, only the warmed capacity would carry over.
    fn clone(&self) -> Self {
        ScratchPool::new()
    }
}

/// Runs `f` over contiguous chunks of `items` (at most [`FOLD_CHUNKS`] of
/// them), each chunk with exclusive use of one pooled scratch arena; chunks
/// run in parallel when the `parallel` feature is on and the slice is large
/// enough. `f` receives the chunk's element offset, the chunk itself and its
/// arena.
pub(crate) fn for_each_chunk_with_scratch<T, F>(items: &mut [T], pool: &ScratchPool, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T], &mut MontgomeryScratch) + Sync,
{
    if items.is_empty() {
        return;
    }
    let chunk = items.len().div_ceil(FOLD_CHUNKS).max(1);
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        if items.len() >= PARALLEL_THRESHOLD {
            items
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, block)| {
                    let mut scratch = pool.lanes[ci].lock().expect("scratch lane poisoned");
                    f(ci * chunk, block, &mut scratch);
                });
            return;
        }
    }
    let mut scratch = pool.lanes[0].lock().expect("scratch lane poisoned");
    for (ci, block) in items.chunks_mut(chunk).enumerate() {
        f(ci * chunk, block, &mut scratch);
    }
}

/// Runs `f` over every index in `0..len`, in parallel when the `parallel`
/// feature is on and the workload is large enough. Results keep input order.
pub(crate) fn map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        if len >= PARALLEL_THRESHOLD {
            let indices: Vec<usize> = (0..len).collect();
            return indices.par_iter().map(|&i| f(i)).collect();
        }
    }
    (0..len).map(f).collect()
}

/// A vector of Paillier ciphertexts sharing one public key.
///
/// The key is stored once as a shared handle; elements alias it rather than
/// owning per-element copies (see [`PublicKey`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptedVector {
    elements: Vec<Ciphertext>,
    public: PublicKey,
}

impl EncryptedVector {
    /// Assembles a vector from decoded parts (the canonical codec's
    /// deserialisation path). Callers must ensure every element was produced
    /// under `public`.
    pub(crate) fn from_raw_parts(elements: Vec<Ciphertext>, public: PublicKey) -> Self {
        EncryptedVector { elements, public }
    }

    /// Assembles a vector from ciphertexts that were produced individually
    /// (e.g. synthetic residues in benchmarks, or ciphertexts collected from
    /// several single-value encryptions). Every element must have been
    /// produced under `public`; a stray key is [`HeError::KeyMismatch`].
    pub fn from_ciphertexts(
        public: &PublicKey,
        elements: Vec<Ciphertext>,
    ) -> Result<Self, HeError> {
        for ct in &elements {
            if !ct.public_key().same_key(public) {
                return Err(HeError::KeyMismatch);
            }
        }
        Ok(EncryptedVector {
            elements,
            public: public.clone(),
        })
    }

    /// Encrypts a slice of `u64` values element-by-element.
    ///
    /// Uses the key's shared [`PrecomputedEncryptor`] fast path (building the
    /// fixed-base table on the key's first vector encryption) and fans the
    /// per-element work out over cores under the `parallel` feature.
    pub fn encrypt_u64<R: Rng + ?Sized>(public: &PublicKey, values: &[u64], rng: &mut R) -> Self {
        let encryptor = PrecomputedEncryptor::new(public, rng);
        Self::encrypt_u64_with(&encryptor, values, rng)
    }

    /// Encrypts a slice of `u64` values with an explicit fast encryptor —
    /// any [`Encryptor`]: the public-key-only [`PrecomputedEncryptor`], or
    /// the [`CrtEncryptor`](crate::CrtEncryptor) /
    /// [`EpochEncryptor`](crate::EpochEncryptor) when the keypair is in
    /// hand. All produce bit-identical vectors from the same randomness.
    ///
    /// # Panics
    /// Panics if a value does not fit in the message space — only possible
    /// at the 64-bit minimum key size, and the same contract as the naive
    /// [`PublicKey::encrypt_u64`] path.
    pub fn encrypt_u64_with<E, R>(encryptor: &E, values: &[u64], rng: &mut R) -> Self
    where
        E: Encryptor + ?Sized,
        R: Rng + ?Sized,
    {
        let public = encryptor.public_key().clone();
        // n >= 2^64 makes every u64 a valid plaintext; only smaller moduli
        // need the explicit range check.
        if public.bits() <= 64 {
            for &v in values {
                assert!(
                    &BigUint::from(v) < public.n(),
                    "plaintext {v} exceeds the {}-bit Paillier message space",
                    public.bits()
                );
            }
        }
        // RNG draws are sequential (cheap); the randomness components are
        // the heavy part and go through the batch multi-exponentiation
        // evaluator in one call (which parallelises internally).
        let exponents = sample_exponents(values.len(), rng);
        let randomizers = encryptor.randomizers_for(&exponents);
        let elements = map_indexed(values.len(), |i| {
            // g⁰ = 1 and the randomizer is already reduced below n², so the
            // zero elements that dominate one-hot registries skip the
            // full-width multiply-and-divide entirely.
            let value = if values[i] == 0 {
                randomizers[i].clone()
            } else {
                let g_to_m = public.g_to_m(&BigUint::from(values[i]));
                (g_to_m * &randomizers[i]) % public.n_squared()
            };
            Ciphertext::from_raw(value, public.clone())
        });
        EncryptedVector { elements, public }
    }

    /// Encrypts a slice of `u64` values with per-element textbook `rⁿ`
    /// randomness — the reference path the benches compare the fast path
    /// against. Semantically identical to [`encrypt_u64`], just slower.
    ///
    /// [`encrypt_u64`]: EncryptedVector::encrypt_u64
    pub fn encrypt_u64_naive<R: Rng + ?Sized>(
        public: &PublicKey,
        values: &[u64],
        rng: &mut R,
    ) -> Self {
        let elements = values.iter().map(|&v| public.encrypt_u64(v, rng)).collect();
        EncryptedVector {
            elements,
            public: public.clone(),
        }
    }

    /// Encrypts a slice of arbitrary-precision values (fast path).
    pub fn encrypt<R: Rng + ?Sized>(
        public: &PublicKey,
        values: &[BigUint],
        rng: &mut R,
    ) -> Result<Self, HeError> {
        let encryptor = PrecomputedEncryptor::new(public, rng);
        Self::encrypt_with(&encryptor, values, rng)
    }

    /// Encrypts a slice of arbitrary-precision values with an explicit fast
    /// encryptor — any [`Encryptor`], so packed multi-slot plaintexts get the
    /// same CRT-split tier as `u64` registries when the keypair is in hand.
    /// Values at or above the modulus are [`HeError::PlaintextTooLarge`].
    pub fn encrypt_with<E, R>(
        encryptor: &E,
        values: &[BigUint],
        rng: &mut R,
    ) -> Result<Self, HeError>
    where
        E: Encryptor + ?Sized,
        R: Rng + ?Sized,
    {
        let public = encryptor.public_key().clone();
        for v in values {
            if v >= public.n() {
                return Err(HeError::PlaintextTooLarge);
            }
        }
        let exponents = sample_exponents(values.len(), rng);
        let randomizers = encryptor.randomizers_for(&exponents);
        let elements = map_indexed(values.len(), |i| {
            // Same zero shortcut as the `u64` path: g⁰ = 1 makes the
            // randomizer the finished ciphertext.
            let value = if values[i].is_zero() {
                randomizers[i].clone()
            } else {
                let g_to_m = public.g_to_m(&values[i]);
                (g_to_m * &randomizers[i]) % public.n_squared()
            };
            Ciphertext::from_raw(value, public.clone())
        });
        Ok(EncryptedVector { elements, public })
    }

    /// An all-zero encrypted vector of the given length (identity for sums).
    pub fn zeros(public: &PublicKey, len: usize) -> Self {
        let elements = (0..len).map(|_| public.zero_ciphertext()).collect();
        EncryptedVector {
            elements,
            public: public.clone(),
        }
    }

    /// Number of encrypted elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The public key the vector was encrypted under.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Access to the individual ciphertexts (e.g. for transport accounting).
    pub fn elements(&self) -> &[Ciphertext] {
        &self.elements
    }

    /// Element-wise homomorphic addition.
    pub fn add(&self, other: &EncryptedVector) -> Result<EncryptedVector, HeError> {
        if self.len() != other.len() {
            return Err(HeError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        if !self.public.same_key(&other.public) {
            return Err(HeError::KeyMismatch);
        }
        let n_squared = self.public.n_squared();
        let elements = map_indexed(self.len(), |i| {
            let value = (self.elements[i].raw() * other.elements[i].raw()) % n_squared;
            Ciphertext::from_raw(value, self.public.clone())
        });
        Ok(EncryptedVector {
            elements,
            public: self.public.clone(),
        })
    }

    /// Element-wise plaintext-scalar multiplication.
    pub fn mul_plain_u64(&self, k: u64) -> EncryptedVector {
        let k = BigUint::from(k);
        let elements = map_indexed(self.len(), |i| self.elements[i].mul_plain(&k));
        EncryptedVector {
            elements,
            public: self.public.clone(),
        }
    }

    /// Decrypts every element to a `u64` (batch CRT decryption, parallel
    /// under the `parallel` feature).
    ///
    /// Returns [`HeError::PlaintextTooWide`] if any decrypted element does
    /// not fit in a `u64` — e.g. a sum whose counters overflowed the word, or
    /// a ciphertext that was never a small-integer encryption. A hostile or
    /// corrupted vector therefore surfaces as a typed error, never a panic.
    pub fn decrypt_u64(&self, private: &PrivateKey) -> Result<Vec<u64>, HeError> {
        private
            .decrypt_batch(&self.elements)
            .into_iter()
            .map(|m| {
                let digits = m.to_u64_digits();
                match digits.len() {
                    0 => Ok(0),
                    1 => Ok(digits[0]),
                    _ => Err(HeError::PlaintextTooWide {
                        bits: m.bits(),
                        max_bits: 64,
                    }),
                }
            })
            .collect()
    }

    /// Decrypts every element to an arbitrary-precision integer.
    pub fn decrypt(&self, private: &PrivateKey) -> Vec<BigUint> {
        private.decrypt_batch(&self.elements)
    }

    /// Total serialized size of the ciphertexts in bytes (overhead accounting).
    pub fn byte_len(&self) -> usize {
        self.elements.iter().map(Ciphertext::byte_len).sum()
    }

    /// The sub-vector of positions `start..end` (ciphertexts are cheap to
    /// clone: they alias the shared key handle).
    ///
    /// A sharded coordinator partitions registry positions across server
    /// instances with this: shard `i` folds only its slice of every arriving
    /// vector, and [`concat`](Self::concat) reassembles the full sum.
    ///
    /// Returns [`HeError::SliceOutOfRange`] when the range does not fit.
    pub fn slice(&self, start: usize, end: usize) -> Result<EncryptedVector, HeError> {
        if start > end || end > self.len() {
            return Err(HeError::SliceOutOfRange {
                start,
                end,
                len: self.len(),
            });
        }
        Ok(EncryptedVector {
            elements: self.elements[start..end].to_vec(),
            public: self.public.clone(),
        })
    }

    /// Concatenates per-shard sub-vectors back into one vector. The inverse
    /// of [`slice`](Self::slice) over a partition of `0..len`.
    ///
    /// Returns `None` for an empty part list (no key to attach), and
    /// [`HeError::KeyMismatch`] if the parts disagree on the key.
    pub fn concat(parts: &[EncryptedVector]) -> Result<Option<EncryptedVector>, HeError> {
        let Some(first) = parts.first() else {
            return Ok(None);
        };
        let mut elements = Vec::with_capacity(parts.iter().map(EncryptedVector::len).sum());
        for part in parts {
            if !part.public.same_key(&first.public) {
                return Err(HeError::KeyMismatch);
            }
            elements.extend_from_slice(&part.elements);
        }
        Ok(Some(EncryptedVector {
            elements,
            public: first.public.clone(),
        }))
    }
}

impl Serialize for EncryptedVector {
    fn to_value(&self) -> Value {
        // The shared-handle story extends to the wire: the key is emitted
        // once for the whole vector, never per element.
        Value::Object(vec![
            ("public".to_string(), self.public.to_value()),
            (
                "elements".to_string(),
                Value::Array(self.elements.iter().map(|c| c.raw().to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for EncryptedVector {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let public = PublicKey::from_value(serde::get_field(v, "public")?)?;
        let raw: Vec<BigUint> = Vec::from_value(serde::get_field(v, "elements")?)?;
        let elements = raw
            .into_iter()
            .map(|value| Ciphertext::from_raw(value, public.clone()))
            .collect();
        Ok(EncryptedVector { elements, public })
    }
}

/// Homomorphically sums a collection of encrypted vectors, fanning the
/// independent per-position folds out over cores when `parallel` is enabled.
///
/// The per-position product runs in the Montgomery domain of the key's
/// cached `n²` context: each residue costs one CIOS multiplication instead
/// of a full multiply plus a Knuth division, and the accumulated `R⁻¹`
/// deficit is cancelled by a single correction multiply per position (see
/// [`num_bigint::MontgomeryContext::montgomery_residue`]). The result is
/// bit-for-bit identical to [`sum_vectors_serial`] — a modular product does
/// not depend on the reduction route — which the property tests pin.
///
/// Returns `None` for an empty collection (there is no well-defined length).
pub fn sum_vectors(vectors: &[EncryptedVector]) -> Result<Option<EncryptedVector>, HeError> {
    let Some(first) = vectors.first() else {
        return Ok(None);
    };
    for v in &vectors[1..] {
        if v.len() != first.len() {
            return Err(HeError::LengthMismatch {
                left: first.len(),
                right: v.len(),
            });
        }
        if !v.public.same_key(&first.public) {
            return Err(HeError::KeyMismatch);
        }
    }
    let public = first.public.clone();
    let Some(ctx) = public.mont_n2() else {
        // A key with an even modulus (only possible for forged or corrupted
        // key material) has no Montgomery context; the serial reference
        // fold handles that case with plain reductions.
        return sum_vectors_serial(vectors);
    };
    // Folding V raw residues takes V − 1 in-domain multiplies (deficit
    // R^-(V-1)); multiplying by R^(V+1) and exiting restores the product.
    let correction = ctx.montgomery_residue(&ctx.r_power(vectors.len() as u64 + 1));
    // One accumulator per position, advanced in place through a pooled
    // scratch arena: allocations are O(positions) for the seeds and the
    // final exit, never O(positions × vectors).
    let pool = ScratchPool::new();
    let mut accs = map_indexed(first.len(), |i| {
        ctx.montgomery_residue(first.elements[i].raw())
    });
    for_each_chunk_with_scratch(&mut accs, &pool, |offset, block, scratch| {
        // Vector-major: one sequential pass over the inputs per chunk, so
        // the walk follows the heap layout of the vectors' limbs instead of
        // striding one position across every vector — the block's
        // accumulators stay resident while each input line is touched once.
        // The multiply sequence per accumulator is unchanged, so totals
        // stay bit-identical to the serial reference.
        for v in &vectors[1..] {
            for (j, acc) in block.iter_mut().enumerate() {
                ctx.montgomery_mul_residue_assign(acc, v.elements[offset + j].raw(), scratch);
            }
        }
        for acc in block.iter_mut() {
            ctx.montgomery_mul_assign(acc, &correction, scratch);
        }
    });
    let elements = accs
        .iter()
        .map(|acc| Ciphertext::from_raw(ctx.from_montgomery(acc), public.clone()))
        .collect();
    Ok(Some(EncryptedVector { elements, public }))
}

/// Reference implementation of [`sum_vectors`]: a strictly sequential
/// left-to-right fold of [`EncryptedVector::add`]. Kept as the oracle the
/// property tests compare the parallel path against bit-for-bit.
pub fn sum_vectors_serial(vectors: &[EncryptedVector]) -> Result<Option<EncryptedVector>, HeError> {
    let mut iter = vectors.iter();
    let Some(first) = iter.next() else {
        return Ok(None);
    };
    let mut acc = first.clone();
    for v in iter {
        if v.len() != acc.len() {
            return Err(HeError::LengthMismatch {
                left: acc.len(),
                right: v.len(),
            });
        }
        if !v.public.same_key(&acc.public) {
            return Err(HeError::KeyMismatch);
        }
        let n_squared = acc.public.n_squared();
        let elements = acc
            .elements
            .iter()
            .zip(&v.elements)
            .map(|(a, b)| Ciphertext::from_raw((a.raw() * b.raw()) % n_squared, acc.public.clone()))
            .collect();
        acc = EncryptedVector {
            elements,
            public: acc.public.clone(),
        };
    }
    Ok(Some(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let (pk, sk) = kp.split();
        (pk, sk, rng)
    }

    #[test]
    fn vector_round_trip() {
        let (pk, sk, mut rng) = setup();
        let values = vec![0u64, 1, 2, 3, 4, 1000];
        let enc = EncryptedVector::encrypt_u64(&pk, &values, &mut rng);
        assert_eq!(enc.decrypt_u64(&sk).unwrap(), values);
        assert_eq!(enc.len(), 6);
        assert!(!enc.is_empty());
    }

    #[test]
    fn naive_and_fast_paths_decrypt_identically() {
        let (pk, sk, mut rng) = setup();
        let values = vec![7u64, 0, 13, 99, 1_000_000, 42, 5, 6, 7, 8];
        let fast = EncryptedVector::encrypt_u64(&pk, &values, &mut rng);
        let naive = EncryptedVector::encrypt_u64_naive(&pk, &values, &mut rng);
        assert_eq!(fast.decrypt_u64(&sk).unwrap(), values);
        assert_eq!(naive.decrypt_u64(&sk).unwrap(), values);
        // Different randomness, same plaintexts: homomorphically compatible.
        let doubled = fast.add(&naive).unwrap();
        let expected: Vec<u64> = values.iter().map(|v| v * 2).collect();
        assert_eq!(doubled.decrypt_u64(&sk).unwrap(), expected);
    }

    #[test]
    fn vector_addition_is_elementwise() {
        let (pk, sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        let b = EncryptedVector::encrypt_u64(&pk, &[10, 20, 30], &mut rng);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.decrypt_u64(&sk).unwrap(), vec![11, 22, 33]);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let (pk, _sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        let b = EncryptedVector::encrypt_u64(&pk, &[1, 2], &mut rng);
        assert_eq!(
            a.add(&b),
            Err(HeError::LengthMismatch { left: 3, right: 2 })
        );
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let (pk, _sk, mut rng) = setup();
        let kp2 = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let a = EncryptedVector::encrypt_u64(&pk, &[1], &mut rng);
        let b = EncryptedVector::encrypt_u64(&kp2.public, &[1], &mut rng);
        assert_eq!(a.add(&b), Err(HeError::KeyMismatch));
    }

    #[test]
    fn zeros_are_identity() {
        let (pk, sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[5, 6, 7], &mut rng);
        let z = EncryptedVector::zeros(&pk, 3);
        assert_eq!(a.add(&z).unwrap().decrypt_u64(&sk).unwrap(), vec![5, 6, 7]);
        assert_eq!(z.decrypt_u64(&sk).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn scalar_multiplication() {
        let (pk, sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        assert_eq!(a.mul_plain_u64(4).decrypt_u64(&sk).unwrap(), vec![4, 8, 12]);
    }

    #[test]
    fn sum_vectors_aggregates_all_clients() {
        let (pk, sk, mut rng) = setup();
        let regs: Vec<EncryptedVector> = (0..10)
            .map(|i| {
                let mut v = vec![0u64; 8];
                v[i % 8] = 1;
                EncryptedVector::encrypt_u64(&pk, &v, &mut rng)
            })
            .collect();
        let total = sum_vectors(&regs).unwrap().unwrap();
        assert_eq!(
            total.decrypt_u64(&sk).unwrap(),
            vec![2, 2, 1, 1, 1, 1, 1, 1]
        );
    }

    #[test]
    fn parallel_and_serial_sums_agree_bit_for_bit() {
        let (pk, sk, mut rng) = setup();
        let regs: Vec<EncryptedVector> = (0..12)
            .map(|i| {
                let v: Vec<u64> = (0..20).map(|j| ((i * j) % 7) as u64).collect();
                EncryptedVector::encrypt_u64(&pk, &v, &mut rng)
            })
            .collect();
        let parallel = sum_vectors(&regs).unwrap().unwrap();
        let serial = sum_vectors_serial(&regs).unwrap().unwrap();
        for (p, s) in parallel.elements().iter().zip(serial.elements()) {
            assert_eq!(p.raw(), s.raw(), "parallel and serial sums diverged");
        }
        assert_eq!(
            parallel.decrypt_u64(&sk).unwrap(),
            serial.decrypt_u64(&sk).unwrap()
        );
    }

    #[test]
    fn sum_vectors_empty_is_none() {
        assert!(sum_vectors(&[]).unwrap().is_none());
        assert!(sum_vectors_serial(&[]).unwrap().is_none());
    }

    #[test]
    fn sum_vectors_rejects_mismatched_shapes() {
        let (pk, _sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1, 2], &mut rng);
        let b = EncryptedVector::encrypt_u64(&pk, &[1, 2, 3], &mut rng);
        assert!(sum_vectors(&[a, b]).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn fast_path_rejects_oversized_u64_at_minimum_key_size() {
        // At the 64-bit minimum key size, n < 2^64, so u64::MAX overflows the
        // message space; the fast path must refuse (like the naive path does)
        // instead of silently encrypting u64::MAX mod n.
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let kp = Keypair::generate(64, &mut rng);
        let _ = EncryptedVector::encrypt_u64(&kp.public, &[u64::MAX], &mut rng);
    }

    #[test]
    fn vector_cannot_exceed_message_space() {
        let (pk, _sk, mut rng) = setup();
        let too_big = vec![pk.n().clone()];
        assert_eq!(
            EncryptedVector::encrypt(&pk, &too_big, &mut rng),
            Err(HeError::PlaintextTooLarge)
        );
    }

    #[test]
    fn byte_len_scales_with_length() {
        let (pk, _sk, mut rng) = setup();
        let a = EncryptedVector::encrypt_u64(&pk, &[1; 4], &mut rng);
        let b = EncryptedVector::encrypt_u64(&pk, &[1; 8], &mut rng);
        assert!(b.byte_len() > a.byte_len());
    }

    #[test]
    fn serde_round_trip_emits_key_once() {
        let (pk, sk, mut rng) = setup();
        let values = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let enc = EncryptedVector::encrypt_u64(&pk, &values, &mut rng);
        let json = serde_json::to_string(&enc).unwrap();
        // One "n" field for the whole vector, not one per element.
        assert_eq!(json.matches("\"n\"").count(), 1);
        let back: EncryptedVector = serde_json::from_str(&json).unwrap();
        assert_eq!(back.decrypt_u64(&sk).unwrap(), values);
        assert_eq!(back, enc);
    }
}
