//! Transport-size accounting for the §6.4 overhead study.
//!
//! The paper reports that a length-56 registry is a 0.47–0.49 KB plaintext and
//! expands to 29.6–31.28 KB of ciphertext under 2048-bit Paillier, and that an
//! encrypted 52-class distribution is ≈ 29.1 KB. This module measures the same
//! quantities for our implementation so the `overhead_report` experiment can
//! print a like-for-like table.

use serde::{Deserialize, Serialize};

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::keys::PublicKey;
use crate::packing::{PackedCiphertext, PackedEncryptedVector, Packer};
use crate::vector::EncryptedVector;

/// Serialized sizes of one protocol object, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportSize {
    /// Size of the plaintext representation (e.g. a `Vec<u64>` registry).
    pub plaintext_bytes: usize,
    /// Size of the ciphertext payload actually transmitted.
    pub ciphertext_bytes: usize,
}

impl TransportSize {
    /// Ciphertext expansion factor relative to the plaintext.
    pub fn expansion_factor(&self) -> f64 {
        if self.plaintext_bytes == 0 {
            return 0.0;
        }
        self.ciphertext_bytes as f64 / self.plaintext_bytes as f64
    }
}

/// Size in bytes of a single raw ciphertext under a `bits`-bit modulus
/// (⌈2·|n|/8⌉). The single source of the ciphertext size model — callers
/// without a key in hand (e.g. the FL simulator's ledger) use this.
pub fn ciphertext_size_bytes_for(bits: u64) -> usize {
    (2 * bits as usize).div_ceil(8)
}

/// Size in bytes of a single raw ciphertext under `public` (⌈2·|n|/8⌉).
pub fn ciphertext_size_bytes(public: &PublicKey) -> usize {
    ciphertext_size_bytes_for(public.bits())
}

/// Size in bytes of the public key modulus.
pub fn public_key_size_bytes(public: &PublicKey) -> usize {
    (public.bits() as usize).div_ceil(8)
}

/// Size in bytes of the private-key material under `public`: the two prime
/// factors `p` and `q` of `n`, each half the modulus width, so together one
/// modulus width. Used to price the agent's keypair dispatch to clients.
pub fn private_key_size_bytes(public: &PublicKey) -> usize {
    (public.bits() as usize).div_ceil(8)
}

/// Canonical wire size of an element-wise encrypted vector: every ciphertext
/// is emitted at the fixed width ⌈2·|n|/8⌉ of its residue class, so the size
/// is a deterministic function of (length, key size) — unlike
/// [`EncryptedVector::byte_len`], which reports the variable big-integer
/// width of the particular residues. The protocol layer and the FL ledger
/// both use this model, which is what makes modeled and measured byte
/// accounting comparable.
pub fn vector_wire_bytes(vector: &EncryptedVector) -> usize {
    vector.len() * ciphertext_size_bytes(vector.public_key())
}

/// Canonical wire size of a packed encrypted vector: its
/// `⌈count / slots_per_plaintext⌉` ciphertexts at the fixed residue width.
/// The element-wise model divided by ~slots — the whole point of packing.
pub fn packed_vector_wire_bytes(packed: &PackedEncryptedVector) -> usize {
    packed.ciphertext_count() * ciphertext_size_bytes(packed.public_key())
}

/// [`packed_vector_wire_bytes`] from parameters alone, for callers without a
/// ciphertext in hand (the FL ledger's modeled accounting): `count` lanes of
/// `slot_bits`-bit slots under a `key_bits`-bit key. Errors when the slot
/// width fits no lane into the plaintext.
pub fn packed_vector_wire_bytes_for(
    count: usize,
    slot_bits: u32,
    key_bits: u64,
) -> Result<usize, HeError> {
    let per = Packer::try_new(slot_bits, key_bits)?.slots_per_plaintext()?;
    Ok(count.div_ceil(per) * ciphertext_size_bytes_for(key_bits))
}

/// Measures plaintext vs ciphertext size for a protocol-packed vector, at
/// the canonical fixed width.
pub fn measure_packed_vector(packed: &PackedEncryptedVector) -> TransportSize {
    TransportSize {
        plaintext_bytes: plaintext_vector_bytes(packed.count()),
        ciphertext_bytes: packed_vector_wire_bytes(packed),
    }
}

/// Plaintext size of an integer vector, counting 8 bytes per element (how the
/// paper's Python implementation would pickle a list of small ints is
/// environment-specific; 8 bytes/element is the natural Rust wire size).
pub fn plaintext_vector_bytes(len: usize) -> usize {
    len * std::mem::size_of::<u64>()
}

/// Measures plaintext vs ciphertext size for an element-wise encrypted vector.
pub fn measure_vector(vector: &EncryptedVector) -> TransportSize {
    TransportSize {
        plaintext_bytes: plaintext_vector_bytes(vector.len()),
        ciphertext_bytes: vector.byte_len(),
    }
}

/// Measures plaintext vs ciphertext size for a packed encrypted vector.
pub fn measure_packed(packed: &PackedCiphertext) -> TransportSize {
    TransportSize {
        plaintext_bytes: plaintext_vector_bytes(packed.count()),
        ciphertext_bytes: packed.byte_len(),
    }
}

/// Measures a single ciphertext.
pub fn measure_ciphertext(ct: &Ciphertext) -> TransportSize {
    TransportSize {
        plaintext_bytes: std::mem::size_of::<u64>(),
        ciphertext_bytes: ct.byte_len(),
    }
}

/// Communication-count model of one Dubhe round (paper §6.4):
///
/// * `K` check-in messages as in any FL system,
/// * `N` registry transfers whenever a (re-)registration happens,
/// * `≈ H·K` encrypted-distribution transfers when multi-time selection is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommunicationCount {
    /// Baseline selection check-ins per round (`K`).
    pub check_in: usize,
    /// Registry transfers in a registration epoch (`N`), zero otherwise.
    pub registration: usize,
    /// Multi-time selection transfers per round (`≈ H·K`), zero when `H = 1`
    /// and no tentative exchange happens.
    pub multi_time: usize,
}

impl CommunicationCount {
    /// Builds the per-round count model.
    pub fn per_round(k: usize, n: usize, h: usize, registration_round: bool) -> Self {
        CommunicationCount {
            check_in: k,
            registration: if registration_round { n } else { 0 },
            multi_time: if h > 1 { h * k } else { 0 },
        }
    }

    /// Total messages in the round.
    pub fn total(&self) -> usize {
        self.check_in + self.registration + self.multi_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;
    use crate::packing::Packer;
    use rand::SeedableRng;

    #[test]
    fn ciphertext_size_is_twice_key_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        assert_eq!(
            ciphertext_size_bytes(&kp.public),
            2 * crate::TEST_KEY_BITS as usize / 8
        );
        assert_eq!(
            public_key_size_bytes(&kp.public),
            crate::TEST_KEY_BITS as usize / 8
        );
    }

    #[test]
    fn key_and_wire_sizes_are_fixed_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(75);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        assert_eq!(
            private_key_size_bytes(&kp.public),
            public_key_size_bytes(&kp.public)
        );
        let v = EncryptedVector::encrypt_u64(&kp.public, &[0u64; 7], &mut rng);
        assert_eq!(vector_wire_bytes(&v), 7 * ciphertext_size_bytes(&kp.public));
        // The canonical width upper-bounds the variable big-integer width.
        assert!(vector_wire_bytes(&v) >= v.byte_len());
    }

    #[test]
    fn vector_measurement_reports_expansion() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let v = EncryptedVector::encrypt_u64(&kp.public, &[1u64; 56], &mut rng);
        let size = measure_vector(&v);
        assert_eq!(size.plaintext_bytes, 56 * 8);
        assert!(
            size.expansion_factor() > 1.0,
            "ciphertext must be larger than plaintext"
        );
    }

    #[test]
    fn packed_measurement_is_smaller_than_elementwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let values = vec![3u64; 56];
        let v = EncryptedVector::encrypt_u64(&kp.public, &values, &mut rng);
        let p = Packer::new(16, crate::TEST_KEY_BITS)
            .encrypt(&kp.public, &values, &mut rng)
            .unwrap();
        assert!(measure_packed(&p).ciphertext_bytes < measure_vector(&v).ciphertext_bytes);
    }

    #[test]
    fn single_ciphertext_measurement() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let kp = Keypair::generate(crate::TEST_KEY_BITS, &mut rng);
        let ct = kp.public.encrypt_u64(5, &mut rng);
        let size = measure_ciphertext(&ct);
        assert!(size.ciphertext_bytes > size.plaintext_bytes);
    }

    #[test]
    fn expansion_factor_of_empty_plaintext_is_zero() {
        let size = TransportSize {
            plaintext_bytes: 0,
            ciphertext_bytes: 10,
        };
        assert_eq!(size.expansion_factor(), 0.0);
    }

    #[test]
    fn communication_counts_match_paper_model() {
        // Plain round: only K check-ins.
        let plain = CommunicationCount::per_round(20, 1000, 1, false);
        assert_eq!(plain.total(), 20);
        // Registration round: + N registry transfers.
        let reg = CommunicationCount::per_round(20, 1000, 1, true);
        assert_eq!(reg.total(), 20 + 1000);
        // Multi-time selection with H=10: + H*K transfers.
        let mt = CommunicationCount::per_round(20, 1000, 10, false);
        assert_eq!(mt.total(), 20 + 200);
    }
}
