//! Paillier key material: generation, encryption and decryption.
//!
//! We use the common simplification `g = n + 1`, under which encryption of a
//! message `m` with randomness `r` is
//!
//! ```text
//! c = (1 + m·n) · rⁿ  mod n²
//! ```
//!
//! and decryption uses the Chinese Remainder Theorem over the prime factors
//! `p`, `q` of `n` for a ~4× speed-up compared to the textbook formula, exactly
//! as production Paillier implementations (e.g. python-paillier used by the
//! paper) do.

use num_bigint::{BigUint, RandBigInt};
use num_integer::Integer;
use num_traits::One;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::prime::{generate_prime_pair, mod_inverse};

/// Minimum supported modulus size in bits.
pub const MIN_KEY_BITS: u64 = 64;

/// The public (encryption) half of a Paillier keypair.
///
/// Everything a client needs to encrypt a registry, and everything the server
/// needs to homomorphically add ciphertexts, is contained here. The server in
/// Dubhe's honest-but-curious threat model holds *only* this key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    /// The modulus `n = p·q`.
    pub n: BigUint,
    /// Cached `n²`, the ciphertext modulus.
    pub n_squared: BigUint,
    /// Number of bits in `n` (the nominal key size).
    pub bits: u64,
}

impl PublicKey {
    fn new(n: BigUint) -> Self {
        let n_squared = &n * &n;
        let bits = n.bits();
        PublicKey { n, n_squared, bits }
    }

    /// Half of the message space: plaintexts in `[0, n/2)` are non-negative,
    /// plaintexts in `(n/2, n)` encode negative values.
    pub fn signed_boundary(&self) -> BigUint {
        &self.n >> 1u32
    }

    /// Encrypts an arbitrary-precision non-negative integer.
    ///
    /// Returns [`HeError::PlaintextTooLarge`] if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Result<Ciphertext, HeError> {
        if m >= &self.n {
            return Err(HeError::PlaintextTooLarge);
        }
        let r = self.sample_randomness(rng);
        Ok(self.encrypt_with_randomness(m, &r))
    }

    /// Encrypts a `u64` plaintext (the common case for registry counters).
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> Ciphertext {
        self.encrypt(&BigUint::from(m), rng)
            .expect("u64 always fits in a >=64-bit modulus")
    }

    /// Encrypts a signed integer using the `n/2` wrap-around convention.
    pub fn encrypt_i64<R: Rng + ?Sized>(&self, m: i64, rng: &mut R) -> Ciphertext {
        let encoded = if m >= 0 {
            BigUint::from(m as u64)
        } else {
            &self.n - BigUint::from(m.unsigned_abs())
        };
        self.encrypt(&encoded, rng).expect("encoded value is below n")
    }

    /// Deterministic encryption with caller-provided randomness `r ∈ Z*_n`.
    ///
    /// Exposed so tests and the transcript-replay tooling can produce
    /// reproducible ciphertexts; real protocol flows should use [`encrypt`].
    ///
    /// [`encrypt`]: PublicKey::encrypt
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        // g^m = (1 + n)^m = 1 + m·n (mod n²)
        let g_to_m = (BigUint::one() + m * &self.n) % &self.n_squared;
        let r_to_n = r.modpow(&self.n, &self.n_squared);
        let value = (g_to_m * r_to_n) % &self.n_squared;
        Ciphertext::from_raw(value, self.clone())
    }

    /// An encryption of zero with unit randomness. Useful as the identity for
    /// homomorphic summation folds.
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext::from_raw(BigUint::one(), self.clone())
    }

    /// Samples encryption randomness `r` uniformly from `Z*_n`.
    pub fn sample_randomness<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let r = rng.gen_biguint_below(&self.n);
            if !r.is_zero_like() && r.gcd(&self.n).is_one() {
                return r;
            }
        }
    }
}

/// Small helper so `sample_randomness` reads naturally.
trait ZeroLike {
    fn is_zero_like(&self) -> bool;
}
impl ZeroLike for BigUint {
    fn is_zero_like(&self) -> bool {
        use num_traits::Zero;
        self.is_zero()
    }
}

/// The private (decryption) half of a Paillier keypair.
///
/// In Dubhe this key is dispatched by a randomly chosen *agent* client to all
/// clients; the server never holds it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateKey {
    /// The public key this private key belongs to.
    pub public: PublicKey,
    /// Prime factor `p` of `n`.
    p: BigUint,
    /// Prime factor `q` of `n`.
    q: BigUint,
    /// `p²`.
    p_squared: BigUint,
    /// `q²`.
    q_squared: BigUint,
    /// `h_p = L_p(g^{p-1} mod p²)⁻¹ mod p` (CRT precomputation).
    h_p: BigUint,
    /// `h_q = L_q(g^{q-1} mod q²)⁻¹ mod q` (CRT precomputation).
    h_q: BigUint,
    /// `q⁻¹ mod p` for CRT recombination.
    q_inv_p: BigUint,
}

impl PrivateKey {
    fn new(public: PublicKey, p: BigUint, q: BigUint) -> Self {
        let p_squared = &p * &p;
        let q_squared = &q * &q;
        let one = BigUint::one();
        let g = &public.n + &one;

        let p_minus_1 = &p - &one;
        let q_minus_1 = &q - &one;

        let l_p = l_function(&g.modpow(&p_minus_1, &p_squared), &p);
        let l_q = l_function(&g.modpow(&q_minus_1, &q_squared), &q);
        let h_p = mod_inverse(&l_p, &p).expect("L_p invertible for valid key");
        let h_q = mod_inverse(&l_q, &q).expect("L_q invertible for valid key");
        let q_inv_p = mod_inverse(&(&q % &p), &p).expect("q invertible mod p");

        PrivateKey { public, p, q, p_squared, q_squared, h_p, h_q, q_inv_p }
    }

    /// Decrypts a ciphertext to its arbitrary-precision plaintext in `[0, n)`.
    pub fn decrypt(&self, ct: &Ciphertext) -> BigUint {
        let one = BigUint::one();
        let c = ct.raw();

        // m_p = L_p(c^{p-1} mod p²) · h_p mod p
        let m_p = (l_function(&c.modpow(&(&self.p - &one), &self.p_squared), &self.p) * &self.h_p)
            % &self.p;
        let m_q = (l_function(&c.modpow(&(&self.q - &one), &self.q_squared), &self.q) * &self.h_q)
            % &self.q;

        // CRT recombination: m = m_q + q·((m_p - m_q)·q⁻¹ mod p)
        let diff = if m_p >= m_q {
            (&m_p - &m_q) % &self.p
        } else {
            (&self.p - ((&m_q - &m_p) % &self.p)) % &self.p
        };
        let t = (diff * &self.q_inv_p) % &self.p;
        m_q + &self.q * t
    }

    /// Decrypts to `u64`, panicking if the plaintext does not fit. Registry
    /// counters always fit because they are bounded by the client count.
    pub fn decrypt_u64(&self, ct: &Ciphertext) -> u64 {
        let m = self.decrypt(ct);
        let digits = m.to_u64_digits();
        match digits.len() {
            0 => 0,
            1 => digits[0],
            _ => panic!("plaintext does not fit in u64: {m}"),
        }
    }

    /// Decrypts a signed integer encoded via the `n/2` wrap-around convention.
    pub fn decrypt_i64(&self, ct: &Ciphertext) -> Result<i64, HeError> {
        let m = self.decrypt(ct);
        let boundary = self.public.signed_boundary();
        if m < boundary {
            let digits = m.to_u64_digits();
            let v = match digits.len() {
                0 => 0u64,
                1 => digits[0],
                _ => return Err(HeError::SignedRangeOverflow),
            };
            i64::try_from(v).map_err(|_| HeError::SignedRangeOverflow)
        } else {
            let neg = &self.public.n - m;
            let digits = neg.to_u64_digits();
            let v = match digits.len() {
                0 => 0u64,
                1 => digits[0],
                _ => return Err(HeError::SignedRangeOverflow),
            };
            let v = i64::try_from(v).map_err(|_| HeError::SignedRangeOverflow)?;
            Ok(-v)
        }
    }
}

/// The Paillier `L` function: `L(x) = (x - 1) / d`.
fn l_function(x: &BigUint, d: &BigUint) -> BigUint {
    (x - BigUint::one()) / d
}

/// A freshly generated public/private keypair.
///
/// In the Dubhe protocol the keypair is generated per registration epoch by a
/// randomly selected agent and dispatched to all clients (public *and* private
/// key) while the server receives only the public key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Keypair {
    /// Public encryption key.
    pub public: PublicKey,
    /// Private decryption key.
    pub private: PrivateKey,
}

impl Keypair {
    /// Generates a keypair whose modulus `n` has (approximately) `bits` bits.
    ///
    /// # Panics
    /// Panics if `bits < MIN_KEY_BITS`.
    pub fn generate<R: Rng + ?Sized>(bits: u64, rng: &mut R) -> Self {
        assert!(
            bits >= MIN_KEY_BITS,
            "key size {bits} below minimum {MIN_KEY_BITS}"
        );
        let (p, q) = generate_prime_pair(bits / 2, rng);
        let n = &p * &q;
        let public = PublicKey::new(n);
        let private = PrivateKey::new(public.clone(), p, q);
        Keypair { public, private }
    }

    /// Splits the keypair into `(public, private)` halves.
    pub fn split(self) -> (PublicKey, PrivateKey) {
        (self.public, self.private)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn keypair() -> Keypair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        Keypair::generate(crate::TEST_KEY_BITS, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip_small_values() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for m in [0u64, 1, 2, 17, 1000, u32::MAX as u64, u64::MAX] {
            let ct = kp.public.encrypt_u64(m, &mut rng);
            assert_eq!(kp.private.decrypt_u64(&ct), m, "round trip failed for {m}");
        }
    }

    #[test]
    fn encryption_is_randomised() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let a = kp.public.encrypt_u64(5, &mut rng);
        let b = kp.public.encrypt_u64(5, &mut rng);
        assert_ne!(a.raw(), b.raw(), "two encryptions of the same value must differ");
        assert_eq!(kp.private.decrypt_u64(&a), kp.private.decrypt_u64(&b));
    }

    #[test]
    fn signed_round_trip() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for m in [0i64, 1, -1, 42, -42, i32::MAX as i64, -(i32::MAX as i64)] {
            let ct = kp.public.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private.decrypt_i64(&ct).unwrap(), m);
        }
    }

    #[test]
    fn plaintext_larger_than_modulus_is_rejected() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let too_big = kp.public.n.clone() + BigUint::one();
        assert_eq!(kp.public.encrypt(&too_big, &mut rng), Err(HeError::PlaintextTooLarge));
    }

    #[test]
    fn zero_ciphertext_decrypts_to_zero() {
        let kp = keypair();
        assert_eq!(kp.private.decrypt_u64(&kp.public.zero_ciphertext()), 0);
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn tiny_key_generation_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let _ = Keypair::generate(32, &mut rng);
    }

    #[test]
    fn signed_boundary_is_half_modulus() {
        let kp = keypair();
        assert_eq!(kp.public.signed_boundary(), &kp.public.n >> 1u32);
    }

    #[test]
    fn keys_serialize_round_trip() {
        let kp = keypair();
        let json = serde_json::to_string(&kp).unwrap();
        let back: Keypair = serde_json::from_str(&json).unwrap();
        assert_eq!(back.public, kp.public);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let ct = back.public.encrypt_u64(77, &mut rng);
        assert_eq!(kp.private.decrypt_u64(&ct), 77);
    }
}
