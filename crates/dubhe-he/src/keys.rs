//! Paillier key material: generation, encryption and decryption.
//!
//! We use the common simplification `g = n + 1`, under which encryption of a
//! message `m` with randomness `r` is
//!
//! ```text
//! c = (1 + m·n) · rⁿ  mod n²
//! ```
//!
//! and decryption uses the Chinese Remainder Theorem over the prime factors
//! `p`, `q` of `n` for a ~4× speed-up compared to the textbook formula, exactly
//! as production Paillier implementations (e.g. python-paillier used by the
//! paper) do.
//!
//! ## Shared key handles
//!
//! A [`PublicKey`] is a cheap handle (`Arc` around the actual key material):
//! cloning it — which every [`Ciphertext`] does — copies one pointer instead
//! of two multi-kilobit integers. An encrypted length-`l` registry therefore
//! stores the modulus once, not `l` times, which is what makes per-element
//! ciphertext vectors affordable at production client counts.
//!
//! The handle also carries the lazily built fixed-base table behind
//! [`PrecomputedEncryptor`](crate::PrecomputedEncryptor) (see [`crate::fast`]),
//! so every consumer of the same key shares one table.

use std::sync::{Arc, OnceLock};

use num_bigint::{BigUint, MontgomeryContext, RandBigInt};
use num_integer::Integer;
use num_traits::{One, Zero};
use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::ciphertext::Ciphertext;
use crate::error::HeError;
use crate::fast::FastBase;
use crate::prime::{generate_prime_pair, mod_inverse};

/// Minimum supported modulus size in bits.
pub const MIN_KEY_BITS: u64 = 64;

/// The actual public-key material, shared behind an [`Arc`] by every handle,
/// ciphertext and vector produced under the key.
#[derive(Debug)]
pub(crate) struct PublicKeyInner {
    /// The modulus `n = p·q`.
    pub(crate) n: BigUint,
    /// Cached `n²`, the ciphertext modulus.
    pub(crate) n_squared: BigUint,
    /// Number of bits in `n` (the nominal key size).
    pub(crate) bits: u64,
    /// Lazily sampled subgroup generator `h = g₀ⁿ mod n²` shared by every
    /// encryptor tier of the key (see `crate::fast`).
    pub(crate) subgroup_h: OnceLock<BigUint>,
    /// Lazily built fixed-base table for precomputed encryption.
    pub(crate) fast: OnceLock<FastBase>,
    /// Lazily built Montgomery context for `n²`, shared by every handle so
    /// the `R² mod n²` setup is paid once per key instead of once per
    /// exponentiation (`mul_plain`, `rerandomise`, textbook encryption).
    pub(crate) mont_n2: OnceLock<MontgomeryContext>,
}

/// The public (encryption) half of a Paillier keypair.
///
/// Everything a client needs to encrypt a registry, and everything the server
/// needs to homomorphically add ciphertexts, is contained here. The server in
/// Dubhe's honest-but-curious threat model holds *only* this key.
///
/// `PublicKey` is a shared handle: `clone()` is an `Arc` refcount bump, and
/// equality first compares handle identity before falling back to comparing
/// moduli.
#[derive(Debug, Clone)]
pub struct PublicKey {
    inner: Arc<PublicKeyInner>,
}

impl PublicKey {
    pub(crate) fn new(n: BigUint) -> Self {
        let n_squared = &n * &n;
        let bits = n.bits();
        PublicKey {
            inner: Arc::new(PublicKeyInner {
                n,
                n_squared,
                bits,
                subgroup_h: OnceLock::new(),
                fast: OnceLock::new(),
                mont_n2: OnceLock::new(),
            }),
        }
    }

    /// The modulus `n = p·q`.
    pub fn n(&self) -> &BigUint {
        &self.inner.n
    }

    /// The ciphertext modulus `n²`.
    pub fn n_squared(&self) -> &BigUint {
        &self.inner.n_squared
    }

    /// Number of bits in `n` (the nominal key size).
    pub fn bits(&self) -> u64 {
        self.inner.bits
    }

    /// `true` if both handles refer to the same key (pointer identity first,
    /// modulus comparison as the slow path for deserialized copies).
    pub fn same_key(&self, other: &PublicKey) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.n == other.inner.n
    }

    /// The key's shared subgroup generator `h = g₀ⁿ mod n²`, sampled on
    /// first use (with randomness from `rng`) and then reused by every
    /// handle — the precomputed and CRT encryption tiers both derive their
    /// tables from this one value, which is what keeps their ciphertexts
    /// bit-for-bit interchangeable.
    pub(crate) fn subgroup_h<R: Rng + ?Sized>(&self, rng: &mut R) -> &BigUint {
        self.inner
            .subgroup_h
            .get_or_init(|| crate::fast::sample_subgroup_h(self, rng))
    }

    /// The lazily initialised fixed-base table (expanded on first use from
    /// [`subgroup_h`](Self::subgroup_h), then shared by every handle to
    /// this key). Only the precomputed tier needs it; the CRT tier builds
    /// half-width tables of its own from the same `h`.
    pub(crate) fn fast_base<R: Rng + ?Sized>(&self, rng: &mut R) -> &FastBase {
        if let Some(table) = self.inner.fast.get() {
            return table;
        }
        let h = self.subgroup_h(rng).clone();
        self.inner.fast.get_or_init(|| FastBase::new(self, &h))
    }

    /// The key's cached Montgomery context for `n²`, built on first use.
    /// `None` for a (necessarily forged or corrupted) key whose modulus is
    /// even — Montgomery reduction needs `gcd(m, 2⁶⁴) = 1`. Consumers fall
    /// back to plain modular arithmetic in that case.
    pub(crate) fn mont_n2(&self) -> Option<&MontgomeryContext> {
        if self.inner.n_squared.is_even() {
            return None;
        }
        Some(
            self.inner
                .mont_n2
                .get_or_init(|| MontgomeryContext::new(&self.inner.n_squared)),
        )
    }

    /// `base^exponent mod n²` through the key's cached Montgomery context.
    ///
    /// `n²` is odd for every generated key (`p`, `q` are odd primes); a
    /// deserialized key with an even modulus falls back to the generic
    /// `modpow`, which handles even moduli without a context. Bit-for-bit
    /// identical to `base.modpow(exponent, n²)` either way (pinned by tests).
    pub(crate) fn pow_mod_n_squared(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        match self.mont_n2() {
            Some(ctx) => ctx.modpow(base, exponent),
            None => base.modpow(exponent, &self.inner.n_squared),
        }
    }

    /// Half of the message space: plaintexts in `[0, n/2)` are non-negative,
    /// plaintexts in `(n/2, n)` encode negative values.
    pub fn signed_boundary(&self) -> BigUint {
        self.n() >> 1u32
    }

    /// Encrypts an arbitrary-precision non-negative integer with textbook
    /// `rⁿ` randomness.
    ///
    /// This is the reference path; bulk callers should prefer
    /// [`PrecomputedEncryptor`](crate::PrecomputedEncryptor), which produces
    /// identically decryptable ciphertexts several times faster.
    ///
    /// Returns [`HeError::PlaintextTooLarge`] if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, HeError> {
        if m >= self.n() {
            return Err(HeError::PlaintextTooLarge);
        }
        let r = self.sample_randomness(rng);
        Ok(self.encrypt_with_randomness(m, &r))
    }

    /// Encrypts a `u64` plaintext (the common case for registry counters).
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> Ciphertext {
        self.encrypt(&BigUint::from(m), rng)
            .expect("u64 always fits in a >=64-bit modulus")
    }

    /// Encrypts a signed integer using the `n/2` wrap-around convention.
    pub fn encrypt_i64<R: Rng + ?Sized>(&self, m: i64, rng: &mut R) -> Ciphertext {
        let encoded = self.encode_i64(m);
        self.encrypt(&encoded, rng)
            .expect("encoded value is below n")
    }

    /// Maps a signed integer into the message space (`n/2` wrap-around).
    pub(crate) fn encode_i64(&self, m: i64) -> BigUint {
        if m >= 0 {
            BigUint::from(m as u64)
        } else {
            self.n() - BigUint::from(m.unsigned_abs())
        }
    }

    /// `g^m = (1 + n)^m = 1 + m·n (mod n²)` — the message component shared by
    /// every encryption path.
    pub(crate) fn g_to_m(&self, m: &BigUint) -> BigUint {
        (BigUint::one() + m * self.n()) % self.n_squared()
    }

    /// Deterministic encryption with caller-provided randomness `r ∈ Z*_n`.
    ///
    /// Exposed so tests and the transcript-replay tooling can produce
    /// reproducible ciphertexts; real protocol flows should use [`encrypt`].
    ///
    /// [`encrypt`]: PublicKey::encrypt
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        let g_to_m = self.g_to_m(m);
        let r_to_n = self.pow_mod_n_squared(r, self.n());
        let value = (g_to_m * r_to_n) % self.n_squared();
        Ciphertext::from_raw(value, self.clone())
    }

    /// An encryption of zero with unit randomness. Useful as the identity for
    /// homomorphic summation folds.
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext::from_raw(BigUint::one(), self.clone())
    }

    /// Samples encryption randomness `r` uniformly from `Z*_n`.
    pub fn sample_randomness<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let r = rng.gen_biguint_below(self.n());
            if !r.is_zero() && r.gcd(self.n()).is_one() {
                return r;
            }
        }
    }
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.same_key(other)
    }
}

impl Eq for PublicKey {}

impl Serialize for PublicKey {
    fn to_value(&self) -> Value {
        // `n²`, `bits` and the fast-base table are all derived from `n`;
        // serializing only the modulus keeps wire keys minimal.
        Value::Object(vec![("n".to_string(), self.n().to_value())])
    }
}

impl Deserialize for PublicKey {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = BigUint::from_value(serde::get_field(v, "n")?)?;
        if n.is_zero() {
            return Err(DeError::custom("public key modulus must be non-zero"));
        }
        Ok(PublicKey::new(n))
    }
}

/// The private (decryption) half of a Paillier keypair.
///
/// In Dubhe this key is dispatched by a randomly chosen *agent* client to all
/// clients; the server never holds it.
///
/// Serialization carries only the prime factors `p`, `q` (plus the public
/// modulus) — everything else, including the per-key Montgomery contexts for
/// `p²` and `q²`, is recomputed on deserialization. This keeps the wire form
/// aligned with the transport size model (two half-modulus factors) and lets
/// every decryption reuse cached contexts instead of re-deriving `R²`.
#[derive(Debug, Clone)]
pub struct PrivateKey {
    /// The public key this private key belongs to.
    pub public: PublicKey,
    /// Prime factor `p` of `n`.
    p: BigUint,
    /// Prime factor `q` of `n`.
    q: BigUint,
    /// Cached Montgomery context for `p²` (the modulus of the CRT leg).
    p_ctx: MontgomeryContext,
    /// Cached Montgomery context for `q²`.
    q_ctx: MontgomeryContext,
    /// `h_p = L_p(g^{p-1} mod p²)⁻¹ mod p` (CRT precomputation).
    h_p: BigUint,
    /// `h_q = L_q(g^{q-1} mod q²)⁻¹ mod q` (CRT precomputation).
    h_q: BigUint,
    /// `q⁻¹ mod p` for CRT recombination.
    q_inv_p: BigUint,
}

impl PartialEq for PrivateKey {
    fn eq(&self, other: &Self) -> bool {
        // Everything else is derived from (public, p, q).
        self.public == other.public && self.p == other.p && self.q == other.q
    }
}

impl Eq for PrivateKey {}

impl PrivateKey {
    /// Builds the CRT precomputation, validating the factors: deserialized
    /// or decoded key material that is not a factorisation of `n` (or whose
    /// `L` values are not invertible) is rejected instead of panicking.
    pub(crate) fn try_new(public: PublicKey, p: BigUint, q: BigUint) -> Result<Self, HeError> {
        let one = BigUint::one();
        if p.is_even() || q.is_even() || p <= one || q <= one {
            return Err(HeError::MalformedKey {
                detail: "prime factors must be odd and greater than 1",
            });
        }
        if &(&p * &q) != public.n() {
            return Err(HeError::MalformedKey {
                detail: "factors do not multiply to the public modulus",
            });
        }
        let p_ctx = MontgomeryContext::new(&(&p * &p));
        let q_ctx = MontgomeryContext::new(&(&q * &q));
        let g = public.n() + &one;

        let p_minus_1 = &p - &one;
        let q_minus_1 = &q - &one;

        let l_p = l_function(&p_ctx.modpow(&g, &p_minus_1), &p);
        let l_q = l_function(&q_ctx.modpow(&g, &q_minus_1), &q);
        let h_p = mod_inverse(&l_p, &p).ok_or(HeError::MalformedKey {
            detail: "L_p is not invertible modulo p",
        })?;
        let h_q = mod_inverse(&l_q, &q).ok_or(HeError::MalformedKey {
            detail: "L_q is not invertible modulo q",
        })?;
        let q_inv_p = mod_inverse(&(&q % &p), &p).ok_or(HeError::MalformedKey {
            detail: "q is not invertible modulo p",
        })?;

        Ok(PrivateKey {
            public,
            p,
            q,
            p_ctx,
            q_ctx,
            h_p,
            h_q,
            q_inv_p,
        })
    }

    fn new(public: PublicKey, p: BigUint, q: BigUint) -> Self {
        PrivateKey::try_new(public, p, q).expect("generated factors form a valid key")
    }

    /// The prime factors `(p, q)` — for the canonical codec only.
    pub(crate) fn primes(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }

    /// The cached Montgomery contexts for `p²` and `q²` (in that order) —
    /// the CRT encryptor evaluates its fixed-base tables through these, so
    /// no exponentiation under a live key re-derives `R²`.
    pub(crate) fn crt_contexts(&self) -> (&MontgomeryContext, &MontgomeryContext) {
        (&self.p_ctx, &self.q_ctx)
    }

    /// CRT decryption of a raw ciphertext value in `Z*_{n²}`.
    ///
    /// The two heavy exponentiations go through the per-key cached
    /// Montgomery contexts: batch decryption pays zero `R²` setups instead
    /// of two per element.
    fn decrypt_raw(&self, c: &BigUint) -> BigUint {
        let one = BigUint::one();

        // m_p = L_p(c^{p-1} mod p²) · h_p mod p
        let m_p =
            (l_function(&self.p_ctx.modpow(c, &(&self.p - &one)), &self.p) * &self.h_p) % &self.p;
        let m_q =
            (l_function(&self.q_ctx.modpow(c, &(&self.q - &one)), &self.q) * &self.h_q) % &self.q;

        // CRT recombination: m = m_q + q·((m_p - m_q)·q⁻¹ mod p)
        let diff = if m_p >= m_q {
            (&m_p - &m_q) % &self.p
        } else {
            (&self.p - ((&m_q - &m_p) % &self.p)) % &self.p
        };
        let t = (diff * &self.q_inv_p) % &self.p;
        m_q + &self.q * t
    }

    /// Decrypts a ciphertext to its arbitrary-precision plaintext in `[0, n)`.
    pub fn decrypt(&self, ct: &Ciphertext) -> BigUint {
        self.decrypt_raw(ct.raw())
    }

    /// Decrypts a batch of ciphertexts, fanning the per-element CRT
    /// exponentiations out over all cores when the `parallel` feature is
    /// enabled (it is by default).
    ///
    /// The CRT context (`h_p`, `h_q`, `q⁻¹ mod p`) is computed once per key at
    /// construction and shared by every element, so batching has no redundant
    /// setup; the win over a `decrypt` loop is pure parallelism.
    pub fn decrypt_batch(&self, cts: &[Ciphertext]) -> Vec<BigUint> {
        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            if cts.len() >= crate::vector::PARALLEL_THRESHOLD {
                return cts
                    .par_iter()
                    .map(|ct| self.decrypt_raw(ct.raw()))
                    .collect();
            }
        }
        cts.iter().map(|ct| self.decrypt_raw(ct.raw())).collect()
    }

    /// Decrypts to `u64`, panicking if the plaintext does not fit. Registry
    /// counters always fit because they are bounded by the client count.
    pub fn decrypt_u64(&self, ct: &Ciphertext) -> u64 {
        let m = self.decrypt(ct);
        let digits = m.to_u64_digits();
        match digits.len() {
            0 => 0,
            1 => digits[0],
            _ => panic!("plaintext does not fit in u64: {m}"),
        }
    }

    /// Decrypts a signed integer encoded via the `n/2` wrap-around convention.
    pub fn decrypt_i64(&self, ct: &Ciphertext) -> Result<i64, HeError> {
        let m = self.decrypt(ct);
        let boundary = self.public.signed_boundary();
        if m < boundary {
            let digits = m.to_u64_digits();
            let v = match digits.len() {
                0 => 0u64,
                1 => digits[0],
                _ => return Err(HeError::SignedRangeOverflow),
            };
            i64::try_from(v).map_err(|_| HeError::SignedRangeOverflow)
        } else {
            let neg = self.public.n() - m;
            let digits = neg.to_u64_digits();
            let v = match digits.len() {
                0 => 0u64,
                1 => digits[0],
                _ => return Err(HeError::SignedRangeOverflow),
            };
            let v = i64::try_from(v).map_err(|_| HeError::SignedRangeOverflow)?;
            Ok(-v)
        }
    }
}

impl Serialize for PrivateKey {
    fn to_value(&self) -> Value {
        // Only the factors travel: the CRT precomputation and Montgomery
        // contexts are derived again on the receiving side. This is the same
        // shape the canonical binary codec uses and what the transport model
        // prices (p and q, together one modulus width).
        Value::Object(vec![
            ("public".to_string(), self.public.to_value()),
            ("p".to_string(), self.p.to_value()),
            ("q".to_string(), self.q.to_value()),
        ])
    }
}

impl Deserialize for PrivateKey {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let public = PublicKey::from_value(serde::get_field(v, "public")?)?;
        let p = BigUint::from_value(serde::get_field(v, "p")?)?;
        let q = BigUint::from_value(serde::get_field(v, "q")?)?;
        PrivateKey::try_new(public, p, q).map_err(|e| DeError::custom(e.to_string()))
    }
}

/// The Paillier `L` function: `L(x) = (x - 1) / d`.
fn l_function(x: &BigUint, d: &BigUint) -> BigUint {
    (x - BigUint::one()) / d
}

/// A freshly generated public/private keypair.
///
/// In the Dubhe protocol the keypair is generated per registration epoch by a
/// randomly selected agent and dispatched to all clients (public *and* private
/// key) while the server receives only the public key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Keypair {
    /// Public encryption key.
    pub public: PublicKey,
    /// Private decryption key.
    pub private: PrivateKey,
}

impl Keypair {
    /// Generates a keypair whose modulus `n` has (approximately) `bits` bits.
    ///
    /// # Panics
    /// Panics if `bits < MIN_KEY_BITS`.
    pub fn generate<R: Rng + ?Sized>(bits: u64, rng: &mut R) -> Self {
        assert!(
            bits >= MIN_KEY_BITS,
            "key size {bits} below minimum {MIN_KEY_BITS}"
        );
        let (p, q) = generate_prime_pair(bits / 2, rng);
        let n = &p * &q;
        let public = PublicKey::new(n);
        let private = PrivateKey::new(public.clone(), p, q);
        Keypair { public, private }
    }

    /// Splits the keypair into `(public, private)` halves.
    pub fn split(self) -> (PublicKey, PrivateKey) {
        (self.public, self.private)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn keypair() -> Keypair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        Keypair::generate(crate::TEST_KEY_BITS, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip_small_values() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for m in [0u64, 1, 2, 17, 1000, u32::MAX as u64, u64::MAX] {
            let ct = kp.public.encrypt_u64(m, &mut rng);
            assert_eq!(kp.private.decrypt_u64(&ct), m, "round trip failed for {m}");
        }
    }

    #[test]
    fn encryption_is_randomised() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let a = kp.public.encrypt_u64(5, &mut rng);
        let b = kp.public.encrypt_u64(5, &mut rng);
        assert_ne!(
            a.raw(),
            b.raw(),
            "two encryptions of the same value must differ"
        );
        assert_eq!(kp.private.decrypt_u64(&a), kp.private.decrypt_u64(&b));
    }

    #[test]
    fn signed_round_trip() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for m in [0i64, 1, -1, 42, -42, i32::MAX as i64, -(i32::MAX as i64)] {
            let ct = kp.public.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private.decrypt_i64(&ct).unwrap(), m);
        }
    }

    #[test]
    fn plaintext_larger_than_modulus_is_rejected() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let too_big = kp.public.n().clone() + BigUint::one();
        assert_eq!(
            kp.public.encrypt(&too_big, &mut rng),
            Err(HeError::PlaintextTooLarge)
        );
    }

    #[test]
    fn zero_ciphertext_decrypts_to_zero() {
        let kp = keypair();
        assert_eq!(kp.private.decrypt_u64(&kp.public.zero_ciphertext()), 0);
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn tiny_key_generation_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let _ = Keypair::generate(32, &mut rng);
    }

    #[test]
    fn signed_boundary_is_half_modulus() {
        let kp = keypair();
        assert_eq!(kp.public.signed_boundary(), kp.public.n() >> 1u32);
    }

    #[test]
    fn keys_serialize_round_trip() {
        let kp = keypair();
        let json = serde_json::to_string(&kp).unwrap();
        let back: Keypair = serde_json::from_str(&json).unwrap();
        assert_eq!(back.public, kp.public);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let ct = back.public.encrypt_u64(77, &mut rng);
        assert_eq!(kp.private.decrypt_u64(&ct), 77);
    }

    #[test]
    fn cloned_handles_share_key_material() {
        let kp = keypair();
        let a = kp.public.clone();
        let b = kp.public.clone();
        assert!(a.same_key(&b));
        // Handle clones are pointer copies, not key-material copies.
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn deserialized_key_equals_original_without_sharing_storage() {
        let kp = keypair();
        let json = serde_json::to_string(&kp.public).unwrap();
        let back: PublicKey = serde_json::from_str(&json).unwrap();
        assert!(!Arc::ptr_eq(&back.inner, &kp.public.inner));
        assert_eq!(back, kp.public);
        assert_eq!(back.n_squared(), kp.public.n_squared());
        assert_eq!(back.bits(), kp.public.bits());
    }

    #[test]
    fn cached_montgomery_path_is_bit_identical_to_generic_modpow() {
        // The per-key contexts must reproduce the uncached arithmetic
        // exactly: same randomness in, same ciphertext residues out.
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..8 {
            let r = kp.public.sample_randomness(&mut rng);
            let e = rng.gen_biguint(192);
            assert_eq!(
                kp.public.pow_mod_n_squared(&r, &e),
                r.modpow(&e, kp.public.n_squared()),
                "cached n² context diverged from generic modpow"
            );
        }
        // Deterministic encryption (which routes through the cached context)
        // must keep producing the exact ciphertext of the textbook formula.
        let m = BigUint::from(123_456u64);
        let r = kp.public.sample_randomness(&mut rng);
        let ct = kp.public.encrypt_with_randomness(&m, &r);
        let textbook = (kp.public.g_to_m(&m) * r.modpow(kp.public.n(), kp.public.n_squared()))
            % kp.public.n_squared();
        assert_eq!(ct.raw(), &textbook);
        assert_eq!(kp.private.decrypt(&ct), m);
    }

    #[test]
    fn private_key_serializes_factors_only_and_rejects_garbage() {
        let kp = keypair();
        let json = serde_json::to_string(&kp.private).unwrap();
        // Only (public, p, q) travel; the CRT values are recomputed.
        assert!(!json.contains("h_p") && !json.contains("q_inv_p"), "{json}");
        let back: PrivateKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kp.private);
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let ct = kp.public.encrypt_u64(99, &mut rng);
        assert_eq!(back.decrypt_u64(&ct), 99);

        // Factors that do not multiply to n must be refused, not panic.
        let forged = format!(
            "{{\"public\":{{\"n\":\"{}\"}},\"p\":\"35\",\"q\":\"35\"}}",
            kp.public.n()
        );
        assert!(serde_json::from_str::<PrivateKey>(&forged).is_err());
    }

    #[test]
    fn batch_decrypt_matches_scalar_decrypt() {
        let kp = keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let cts: Vec<Ciphertext> = (0..40u64)
            .map(|m| kp.public.encrypt_u64(m * 11, &mut rng))
            .collect();
        let batch = kp.private.decrypt_batch(&cts);
        for (i, (ct, m)) in cts.iter().zip(&batch).enumerate() {
            assert_eq!(&kp.private.decrypt(ct), m, "element {i} diverged");
        }
    }
}
