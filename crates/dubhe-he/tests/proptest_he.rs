//! Property-based tests for the Paillier substrate.
//!
//! A single keypair is generated once (key generation dominates runtime) and all
//! properties are checked against it with randomly drawn plaintexts.

use std::sync::OnceLock;

use dubhe_he::packing::Packer;
use dubhe_he::{
    sum_vectors, sum_vectors_serial, EncryptedVector, FixedPointCodec, Keypair,
    PrecomputedEncryptor, PrivateKey, PublicKey,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn keys() -> &'static (PublicKey, PrivateKey) {
    static KEYS: OnceLock<(PublicKey, PrivateKey)> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD0BE);
        Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng).split()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encrypt_decrypt_identity(m in any::<u64>(), seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = pk.encrypt_u64(m, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ct), m);
    }

    #[test]
    fn homomorphic_add_matches_plain_add(a in 0u64..u32::MAX as u64,
                                         b in 0u64..u32::MAX as u64,
                                         seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ca = pk.encrypt_u64(a, &mut rng);
        let cb = pk.encrypt_u64(b, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ca.add(&cb).unwrap()), a + b);
    }

    #[test]
    fn scalar_multiplication_matches(a in 0u64..u32::MAX as u64,
                                     k in 0u64..1000,
                                     seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ca = pk.encrypt_u64(a, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ca.mul_plain_u64(k)), a * k);
    }

    #[test]
    fn signed_round_trip(m in -(i32::MAX as i64)..(i32::MAX as i64), seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = pk.encrypt_i64(m, &mut rng);
        prop_assert_eq!(sk.decrypt_i64(&ct).unwrap(), m);
    }

    #[test]
    fn vector_homomorphism(values_a in prop::collection::vec(0u64..10_000, 1..24),
                           seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values_b: Vec<u64> = values_a.iter().map(|v| v.wrapping_mul(3) % 10_000).collect();
        let ea = EncryptedVector::encrypt_u64(pk, &values_a, &mut rng);
        let eb = EncryptedVector::encrypt_u64(pk, &values_b, &mut rng);
        let sum = ea.add(&eb).unwrap().decrypt_u64(sk);
        let expected: Vec<u64> = values_a.iter().zip(&values_b).map(|(a, b)| a + b).collect();
        prop_assert_eq!(sum, expected);
    }

    #[test]
    fn packing_round_trip(values in prop::collection::vec(0u64..=u16::MAX as u64, 1..80),
                          seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let packer = Packer::new(16, dubhe_he::TEST_KEY_BITS);
        let packed = packer.encrypt(pk, &values, &mut rng).unwrap();
        prop_assert_eq!(packed.decrypt(sk), values);
    }

    #[test]
    fn packed_addition_is_slotwise(values in prop::collection::vec(0u64..1000, 1..40),
                                   seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let packer = Packer::new(32, dubhe_he::TEST_KEY_BITS);
        let doubled: Vec<u64> = values.iter().map(|v| v * 2).collect();
        let ea = packer.encrypt(pk, &values, &mut rng).unwrap();
        let eb = packer.encrypt(pk, &values, &mut rng).unwrap();
        prop_assert_eq!(ea.add(&eb).unwrap().decrypt(sk), doubled);
    }

    #[test]
    fn precomputed_encryptor_decrypts_like_explicit_randomness(m in any::<u64>(),
                                                              seed in any::<u64>()) {
        // The fast path must produce ciphertexts that decrypt to exactly the
        // plaintext the textbook `rⁿ` path (via encrypt_with_randomness)
        // produces for the same message.
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let encryptor = PrecomputedEncryptor::new(pk, &mut rng);
        let fast = encryptor.encrypt(&num_bigint::BigUint::from(m), &mut rng).unwrap();
        let r = pk.sample_randomness(&mut rng);
        let naive = pk.encrypt_with_randomness(&num_bigint::BigUint::from(m), &r);
        prop_assert_eq!(sk.decrypt(&fast), sk.decrypt(&naive));
        prop_assert_eq!(sk.decrypt_u64(&fast), m);
    }

    #[test]
    fn fast_and_naive_vectors_interoperate(values in prop::collection::vec(0u64..100_000, 1..24),
                                           seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fast = EncryptedVector::encrypt_u64(pk, &values, &mut rng);
        let naive = EncryptedVector::encrypt_u64_naive(pk, &values, &mut rng);
        prop_assert_eq!(fast.decrypt_u64(sk), values.clone());
        let sum = fast.add(&naive).unwrap().decrypt_u64(sk);
        let expected: Vec<u64> = values.iter().map(|v| v * 2).collect();
        prop_assert_eq!(sum, expected);
    }

    #[test]
    fn parallel_and_serial_sum_vectors_agree_bit_for_bit(
        lens in prop::collection::vec(0u64..50, 2..12),
        width in 1usize..24,
        seed in any::<u64>(),
    ) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vectors: Vec<EncryptedVector> = lens
            .iter()
            .map(|&base| {
                let v: Vec<u64> = (0..width as u64).map(|j| base + j).collect();
                EncryptedVector::encrypt_u64(pk, &v, &mut rng)
            })
            .collect();
        let parallel = sum_vectors(&vectors).unwrap().unwrap();
        let serial = sum_vectors_serial(&vectors).unwrap().unwrap();
        for (p, s) in parallel.elements().iter().zip(serial.elements()) {
            prop_assert_eq!(p.raw(), s.raw());
        }
        prop_assert_eq!(parallel.decrypt_u64(sk), serial.decrypt_u64(sk));
    }

    #[test]
    fn batch_decryption_matches_elementwise(values in prop::collection::vec(0u64..1_000_000, 1..40),
                                            seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let enc = EncryptedVector::encrypt_u64(pk, &values, &mut rng);
        let batch = enc.decrypt_u64(sk);
        let elementwise: Vec<u64> = enc.elements().iter().map(|c| sk.decrypt_u64(c)).collect();
        prop_assert_eq!(batch, elementwise);
    }

    #[test]
    fn fixed_point_error_bounded(values in prop::collection::vec(0.0f64..1.0, 1..64)) {
        let codec = FixedPointCodec::default();
        let decoded = codec.decode_vec(&codec.encode_vec(&values));
        for (orig, back) in values.iter().zip(&decoded) {
            prop_assert!((orig - back).abs() <= codec.max_error());
        }
    }
}
