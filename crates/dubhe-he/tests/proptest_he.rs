//! Property-based tests for the Paillier substrate.
//!
//! A single keypair is generated once (key generation dominates runtime) and all
//! properties are checked against it with randomly drawn plaintexts.

use std::sync::OnceLock;

use dubhe_he::packing::Packer;
use dubhe_he::{
    sum_vectors, sum_vectors_serial, CrtEncryptor, EncryptedVector, Encryptor, FixedPointCodec,
    HeadroomModel, Keypair, PackedEncryptedVector, PackedRunningFold, PrecomputedEncryptor,
    PrivateKey, PublicKey, RunningFold,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn keys() -> &'static (PublicKey, PrivateKey) {
    static KEYS: OnceLock<(PublicKey, PrivateKey)> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD0BE);
        Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng).split()
    })
}

/// A second, larger keypair so the multi-exp and decode pins cover two key
/// sizes (and with them two Montgomery limb widths), not just the CI size.
fn wide_keys() -> &'static (PublicKey, PrivateKey) {
    static KEYS: OnceLock<(PublicKey, PrivateKey)> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x71DE);
        Keypair::generate(2 * dubhe_he::TEST_KEY_BITS, &mut rng).split()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encrypt_decrypt_identity(m in any::<u64>(), seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = pk.encrypt_u64(m, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ct), m);
    }

    #[test]
    fn homomorphic_add_matches_plain_add(a in 0u64..u32::MAX as u64,
                                         b in 0u64..u32::MAX as u64,
                                         seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ca = pk.encrypt_u64(a, &mut rng);
        let cb = pk.encrypt_u64(b, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ca.add(&cb).unwrap()), a + b);
    }

    #[test]
    fn scalar_multiplication_matches(a in 0u64..u32::MAX as u64,
                                     k in 0u64..1000,
                                     seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ca = pk.encrypt_u64(a, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ca.mul_plain_u64(k)), a * k);
    }

    #[test]
    fn signed_round_trip(m in -(i32::MAX as i64)..(i32::MAX as i64), seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = pk.encrypt_i64(m, &mut rng);
        prop_assert_eq!(sk.decrypt_i64(&ct).unwrap(), m);
    }

    #[test]
    fn vector_homomorphism(values_a in prop::collection::vec(0u64..10_000, 1..24),
                           seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values_b: Vec<u64> = values_a.iter().map(|v| v.wrapping_mul(3) % 10_000).collect();
        let ea = EncryptedVector::encrypt_u64(pk, &values_a, &mut rng);
        let eb = EncryptedVector::encrypt_u64(pk, &values_b, &mut rng);
        let sum = ea.add(&eb).unwrap().decrypt_u64(sk).unwrap();
        let expected: Vec<u64> = values_a.iter().zip(&values_b).map(|(a, b)| a + b).collect();
        prop_assert_eq!(sum, expected);
    }

    #[test]
    fn packing_round_trip(values in prop::collection::vec(0u64..=u16::MAX as u64, 1..80),
                          seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let packer = Packer::new(16, dubhe_he::TEST_KEY_BITS);
        let packed = packer.encrypt(pk, &values, &mut rng).unwrap();
        prop_assert_eq!(packed.decrypt(sk), values);
    }

    #[test]
    fn packed_addition_is_slotwise(values in prop::collection::vec(0u64..1000, 1..40),
                                   seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let packer = Packer::new(32, dubhe_he::TEST_KEY_BITS);
        let doubled: Vec<u64> = values.iter().map(|v| v * 2).collect();
        let ea = packer.encrypt(pk, &values, &mut rng).unwrap();
        let eb = packer.encrypt(pk, &values, &mut rng).unwrap();
        prop_assert_eq!(ea.add(&eb).unwrap().decrypt(sk), doubled);
    }

    #[test]
    fn precomputed_encryptor_decrypts_like_explicit_randomness(m in any::<u64>(),
                                                              seed in any::<u64>()) {
        // The fast path must produce ciphertexts that decrypt to exactly the
        // plaintext the textbook `rⁿ` path (via encrypt_with_randomness)
        // produces for the same message.
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let encryptor = PrecomputedEncryptor::new(pk, &mut rng);
        let fast = encryptor.encrypt(&num_bigint::BigUint::from(m), &mut rng).unwrap();
        let r = pk.sample_randomness(&mut rng);
        let naive = pk.encrypt_with_randomness(&num_bigint::BigUint::from(m), &r);
        prop_assert_eq!(sk.decrypt(&fast), sk.decrypt(&naive));
        prop_assert_eq!(sk.decrypt_u64(&fast), m);
    }

    #[test]
    fn fast_and_naive_vectors_interoperate(values in prop::collection::vec(0u64..100_000, 1..24),
                                           seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fast = EncryptedVector::encrypt_u64(pk, &values, &mut rng);
        let naive = EncryptedVector::encrypt_u64_naive(pk, &values, &mut rng);
        prop_assert_eq!(fast.decrypt_u64(sk).unwrap(), values.clone());
        let sum = fast.add(&naive).unwrap().decrypt_u64(sk).unwrap();
        let expected: Vec<u64> = values.iter().map(|v| v * 2).collect();
        prop_assert_eq!(sum, expected);
    }

    #[test]
    fn parallel_and_serial_sum_vectors_agree_bit_for_bit(
        lens in prop::collection::vec(0u64..50, 2..12),
        width in 1usize..24,
        seed in any::<u64>(),
    ) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vectors: Vec<EncryptedVector> = lens
            .iter()
            .map(|&base| {
                let v: Vec<u64> = (0..width as u64).map(|j| base + j).collect();
                EncryptedVector::encrypt_u64(pk, &v, &mut rng)
            })
            .collect();
        let parallel = sum_vectors(&vectors).unwrap().unwrap();
        let serial = sum_vectors_serial(&vectors).unwrap().unwrap();
        for (p, s) in parallel.elements().iter().zip(serial.elements()) {
            prop_assert_eq!(p.raw(), s.raw());
        }
        prop_assert_eq!(parallel.decrypt_u64(sk).unwrap(), serial.decrypt_u64(sk).unwrap());
    }

    #[test]
    fn batch_decryption_matches_elementwise(values in prop::collection::vec(0u64..1_000_000, 1..40),
                                            seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let enc = EncryptedVector::encrypt_u64(pk, &values, &mut rng);
        let batch = enc.decrypt_u64(sk).unwrap();
        let elementwise: Vec<u64> = enc.elements().iter().map(|c| sk.decrypt_u64(c)).collect();
        prop_assert_eq!(batch, elementwise);
    }

    #[test]
    fn fixed_point_error_bounded(values in prop::collection::vec(0.0f64..1.0, 1..64)) {
        let codec = FixedPointCodec::default();
        let decoded = codec.decode_vec(&codec.encode_vec(&values));
        for (orig, back) in values.iter().zip(&decoded) {
            prop_assert!((orig - back).abs() <= codec.max_error());
        }
    }

    #[test]
    fn crt_encryptor_is_bit_identical_to_precomputed(m in any::<u64>(),
                                                     values in prop::collection::vec(0u64..1_000_000, 1..24),
                                                     seed in any::<u64>()) {
        // Same key handle (so both share the one fixed-base h) and the same
        // randomness stream must yield the same ciphertext bytes whichever
        // arithmetic route — full-width n² table or CRT-split p²/q² legs —
        // computes them.
        let (pk, sk) = keys();
        let mut warm = rand::rngs::StdRng::seed_from_u64(seed ^ 0xCC);
        let fast = PrecomputedEncryptor::new(pk, &mut warm);
        let crt = CrtEncryptor::from_keys(pk, sk, &mut warm).unwrap();

        let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
        let a = fast.encrypt_u64(m, &mut rng_a);
        let b = crt.encrypt_u64(m, &mut rng_b);
        prop_assert_eq!(a.raw(), b.raw(), "scalar ciphertexts diverged");
        prop_assert_eq!(sk.decrypt_u64(&b), m);

        let va = EncryptedVector::encrypt_u64_with(&fast, &values, &mut rng_a);
        let vb = EncryptedVector::encrypt_u64_with(&crt, &values, &mut rng_b);
        for (x, y) in va.elements().iter().zip(vb.elements()) {
            prop_assert_eq!(x.raw(), y.raw(), "vector ciphertexts diverged");
        }
        prop_assert_eq!(vb.decrypt_u64(sk).unwrap(), values);
    }

    #[test]
    fn packed_fold_preserves_every_lane_across_widths_and_cohorts(
        width_step in 0u32..4,
        len in 1usize..40,
        clients in 1usize..8,
        seed in any::<u64>(),
    ) {
        // The lane-preservation pin of the packed protocol: for random slot
        // widths (16/24/32/40 bits), lane counts straddling the parallel
        // threshold, and cohort sizes within the headroom proof, the full
        // pack -> encrypt -> homomorphic fold -> decrypt -> unpack pipeline
        // must equal the element-wise sums exactly — no lane may bleed into
        // its neighbor. Runs under both `parallel` feature states via the CI
        // matrix.
        let (pk, sk) = keys();
        let slot_bits = 16 + 8 * width_step;
        let packer = Packer::new(slot_bits, dubhe_he::TEST_KEY_BITS);
        // 8 clients x counters < 1000 stays far inside even 16-bit lanes.
        let model = HeadroomModel::new(packer, 8, 999).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let plain: Vec<Vec<u64>> = (0..clients)
            .map(|i| (0..len).map(|j| ((i * 131 + j * 17 + 3) % 1000) as u64).collect())
            .collect();
        let encrypted: Vec<PackedEncryptedVector> = plain
            .iter()
            .map(|v| PackedEncryptedVector::encrypt(packer, pk, v, &mut rng).unwrap())
            .collect();

        let mut fold = PackedRunningFold::new(&encrypted[0], model).unwrap();
        for v in &encrypted[1..] {
            fold.fold(v).unwrap();
        }
        prop_assert_eq!(fold.folded(), clients as u64);

        let expected: Vec<u64> = (0..len)
            .map(|j| plain.iter().map(|v| v[j]).sum())
            .collect();
        prop_assert_eq!(fold.total().decrypt_u64(sk), expected);

        // Pairwise `add` is the same slot-wise operation the fold uses.
        if clients >= 2 {
            let pair = encrypted[0].add(&encrypted[1]).unwrap();
            let pair_expected: Vec<u64> = plain[0]
                .iter()
                .zip(&plain[1])
                .map(|(a, b)| a + b)
                .collect();
            prop_assert_eq!(pair.decrypt_u64(sk), pair_expected);
        }
    }

    #[test]
    fn packed_encryptor_tiers_are_bit_identical_and_fold_together(
        len in 1usize..30,
        seed in any::<u64>(),
    ) {
        // The CRT-split and the full-width precomputed encryptor must pack
        // to byte-identical ciphertexts on the same randomness stream, and
        // vectors from either tier must fold together into the right lanes.
        let (pk, sk) = keys();
        let packer = Packer::new(32, dubhe_he::TEST_KEY_BITS);
        let mut warm = rand::rngs::StdRng::seed_from_u64(seed ^ 0xCC);
        let fast = PrecomputedEncryptor::new(pk, &mut warm);
        let crt = CrtEncryptor::from_keys(pk, sk, &mut warm).unwrap();

        let values: Vec<u64> = (0..len as u64).map(|j| (j * 37 + 5) % 4096).collect();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
        let a = PackedEncryptedVector::encrypt_with(packer, &fast, &values, &mut rng_a).unwrap();
        let b = PackedEncryptedVector::encrypt_with(packer, &crt, &values, &mut rng_b).unwrap();
        for (x, y) in a.vector().elements().iter().zip(b.vector().elements()) {
            prop_assert_eq!(x.raw(), y.raw(), "packed ciphertexts diverged across tiers");
        }

        let model = HeadroomModel::new(packer, 4, 4096).unwrap();
        let mut fold = PackedRunningFold::new(&a, model).unwrap();
        fold.fold(&b).unwrap();
        let expected: Vec<u64> = values.iter().map(|v| v * 2).collect();
        prop_assert_eq!(fold.total().decrypt_u64(sk), expected);
    }

    #[test]
    fn batch_multi_exp_matches_per_element_encryption_across_key_sizes(
        values in prop::collection::vec(0u64..1000, 1..60),
        seed in any::<u64>(),
    ) {
        // The simultaneous multi-exponentiation walk behind vector
        // encryption must be a pure evaluation-order change: batch and
        // per-element encryption draw the identical exponent stream, so the
        // same seed must yield bit-identical ciphertexts at every key size
        // (two Montgomery limb widths) and vector length (straddling the
        // interleaved-walk chunk size), for both encryptor tiers.
        for (pk, sk) in [keys(), wide_keys()] {
            let mut warm = rand::rngs::StdRng::seed_from_u64(seed ^ 0xCC);
            let fast = PrecomputedEncryptor::new(pk, &mut warm);
            let crt = CrtEncryptor::from_keys(pk, sk, &mut warm).unwrap();
            batch_matches_per_element(&fast, &values, seed);
            batch_matches_per_element(&crt, &values, seed);
        }
    }

    #[test]
    fn borrowed_view_decode_matches_owned_and_rejects_damage(
        values in prop::collection::vec(0u64..100_000, 1..24),
        cut_seed in any::<u64>(),
        flip_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        use dubhe_he::codec::{decode_vector, decode_vector_view, encode_vector};
        // The zero-copy borrowed decode must be observationally identical
        // to the owned decoder: same ciphertexts on intact bytes, typed
        // errors (never panics) on every truncation, and the same
        // accept/reject verdict on a corrupted byte.
        for (pk, sk) in [keys(), wide_keys()] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let vector = EncryptedVector::encrypt_u64(pk, &values, &mut rng);
            let mut bytes = Vec::new();
            encode_vector(&vector, &mut bytes).unwrap();

            let mut cur = bytes.as_slice();
            let owned = decode_vector(&mut cur).unwrap();
            prop_assert!(cur.is_empty());
            let mut cur = bytes.as_slice();
            let view = decode_vector_view(&mut cur).unwrap();
            prop_assert!(cur.is_empty());
            let materialized = view.materialize();
            for (a, b) in owned.elements().iter().zip(materialized.elements()) {
                prop_assert_eq!(a.raw(), b.raw(), "borrowed decode diverged from owned");
            }
            prop_assert_eq!(materialized.decrypt_u64(sk).unwrap(), values.clone());

            let cut = (cut_seed as usize) % bytes.len();
            let mut cur = &bytes[..cut];
            prop_assert!(decode_vector_view(&mut cur).is_err(), "view accepted a truncated buffer");
            let mut cur = &bytes[..cut];
            prop_assert!(decode_vector(&mut cur).is_err(), "owned decode accepted a truncated buffer");

            let mut damaged = bytes.clone();
            let flip_at = (flip_seed as usize) % damaged.len();
            damaged[flip_at] ^= 0x01;
            let mut cur = damaged.as_slice();
            let view_result = decode_vector_view(&mut cur).map(|v| v.materialize());
            let mut cur = damaged.as_slice();
            let owned_result = decode_vector(&mut cur);
            match (view_result, owned_result) {
                (Ok(v), Ok(o)) => {
                    for (a, b) in o.elements().iter().zip(v.elements()) {
                        prop_assert_eq!(a.raw(), b.raw(), "decoders accepted different residues");
                    }
                }
                (Err(_), Err(_)) => {}
                (v, o) => prop_assert!(
                    false,
                    "decoders disagreed on damaged bytes: view ok={} owned ok={}",
                    v.is_ok(),
                    o.is_ok()
                ),
            }
        }
    }

    #[test]
    fn running_fold_snapshot_resumes_bit_identically(len in 1usize..24,
                                                     count in 2usize..7,
                                                     cut_seed in any::<u64>(),
                                                     seed in any::<u64>()) {
        // Crash-recovery pin: fold `cut` vectors, serialize, "crash", restore
        // from the bytes alone and fold the rest. The resumed total must be
        // bit-identical to the uninterrupted fold — raw in-domain residues
        // survive the codec round-trip exactly.
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let plain: Vec<Vec<u64>> = (0..count)
            .map(|i| (0..len).map(|j| ((i * 31 + j * 17) % 1000) as u64).collect())
            .collect();
        let vectors: Vec<EncryptedVector> = plain
            .iter()
            .map(|v| EncryptedVector::encrypt_u64(pk, v, &mut rng))
            .collect();
        let cut = 1 + (cut_seed as usize) % count;

        let mut uninterrupted = RunningFold::new(&vectors[0]);
        for v in &vectors[1..] {
            uninterrupted.fold(v).unwrap();
        }

        let mut doomed = RunningFold::new(&vectors[0]);
        for v in &vectors[1..cut] {
            doomed.fold(v).unwrap();
        }
        let bytes = doomed.snapshot().unwrap();
        drop(doomed);
        let mut resumed = RunningFold::restore(&bytes).unwrap();
        prop_assert_eq!(resumed.folded(), cut as u64);
        for v in &vectors[cut..] {
            resumed.fold(v).unwrap();
        }

        let reference = uninterrupted.total();
        let total = resumed.total();
        for (a, b) in reference.elements().iter().zip(total.elements()) {
            prop_assert_eq!(a.raw(), b.raw(), "resumed fold diverged from the uninterrupted one");
        }
        let expected: Vec<u64> = (0..len)
            .map(|j| plain.iter().map(|v| v[j]).sum())
            .collect();
        prop_assert_eq!(total.decrypt_u64(sk).unwrap(), expected);
    }
}

/// Batch vector encryption against a per-element loop on the same encryptor
/// and randomness stream — the bit-identity pin of the multi-exp walk.
fn batch_matches_per_element<E: Encryptor>(enc: &E, values: &[u64], seed: u64) {
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
    let batch = EncryptedVector::encrypt_u64_with(enc, values, &mut rng_a);
    for (i, (&m, c)) in values.iter().zip(batch.elements()).enumerate() {
        let per = enc.encrypt_u64(m, &mut rng_b);
        assert_eq!(
            c.raw(),
            per.raw(),
            "batch multi-exp diverged from per-element encryption at element {i}"
        );
    }
}

/// The fold-equivalence grid the issue pins: every Montgomery-domain fold
/// route (batch [`sum_vectors`] and the coordinator-style [`RunningFold`])
/// must be bit-identical to the serial reference fold for registry lengths
/// {1, 7, 56} × vector counts {1, 2, 33}, at both key sizes. Runs under
/// both `parallel` states (the CI matrix includes `--no-default-features`).
#[test]
fn montgomery_folds_match_serial_reference_across_the_grid() {
    for (pk, _sk) in [keys(), wide_keys()] {
        montgomery_fold_grid(pk);
    }
}

fn montgomery_fold_grid(pk: &PublicKey) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA66);
    for &len in &[1usize, 7, 56] {
        for &count in &[1usize, 2, 33] {
            let vectors: Vec<EncryptedVector> = (0..count)
                .map(|i| {
                    let v: Vec<u64> = (0..len).map(|j| ((i * 13 + j * 7) % 11) as u64).collect();
                    EncryptedVector::encrypt_u64(pk, &v, &mut rng)
                })
                .collect();
            let serial = sum_vectors_serial(&vectors).unwrap().unwrap();

            let batch = sum_vectors(&vectors).unwrap().unwrap();
            let mut running = RunningFold::new(&vectors[0]);
            for v in &vectors[1..] {
                running.fold(v).unwrap();
            }
            let running = running.total();

            for (i, s) in serial.elements().iter().enumerate() {
                assert_eq!(
                    batch.elements()[i].raw(),
                    s.raw(),
                    "sum_vectors diverged at len {len} count {count} position {i}"
                );
                assert_eq!(
                    running.elements()[i].raw(),
                    s.raw(),
                    "RunningFold diverged at len {len} count {count} position {i}"
                );
            }
        }
    }
}
