//! Property-based tests for the Paillier substrate.
//!
//! A single keypair is generated once (key generation dominates runtime) and all
//! properties are checked against it with randomly drawn plaintexts.

use std::sync::OnceLock;

use dubhe_he::packing::Packer;
use dubhe_he::{EncryptedVector, FixedPointCodec, Keypair, PrivateKey, PublicKey};
use proptest::prelude::*;
use rand::SeedableRng;

fn keys() -> &'static (PublicKey, PrivateKey) {
    static KEYS: OnceLock<(PublicKey, PrivateKey)> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD0BE);
        Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng).split()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encrypt_decrypt_identity(m in any::<u64>(), seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = pk.encrypt_u64(m, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ct), m);
    }

    #[test]
    fn homomorphic_add_matches_plain_add(a in 0u64..u32::MAX as u64,
                                         b in 0u64..u32::MAX as u64,
                                         seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ca = pk.encrypt_u64(a, &mut rng);
        let cb = pk.encrypt_u64(b, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ca.add(&cb).unwrap()), a + b);
    }

    #[test]
    fn scalar_multiplication_matches(a in 0u64..u32::MAX as u64,
                                     k in 0u64..1000,
                                     seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ca = pk.encrypt_u64(a, &mut rng);
        prop_assert_eq!(sk.decrypt_u64(&ca.mul_plain_u64(k)), a * k);
    }

    #[test]
    fn signed_round_trip(m in -(i32::MAX as i64)..(i32::MAX as i64), seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = pk.encrypt_i64(m, &mut rng);
        prop_assert_eq!(sk.decrypt_i64(&ct).unwrap(), m);
    }

    #[test]
    fn vector_homomorphism(values_a in prop::collection::vec(0u64..10_000, 1..24),
                           seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values_b: Vec<u64> = values_a.iter().map(|v| v.wrapping_mul(3) % 10_000).collect();
        let ea = EncryptedVector::encrypt_u64(pk, &values_a, &mut rng);
        let eb = EncryptedVector::encrypt_u64(pk, &values_b, &mut rng);
        let sum = ea.add(&eb).unwrap().decrypt_u64(sk);
        let expected: Vec<u64> = values_a.iter().zip(&values_b).map(|(a, b)| a + b).collect();
        prop_assert_eq!(sum, expected);
    }

    #[test]
    fn packing_round_trip(values in prop::collection::vec(0u64..=u16::MAX as u64, 1..80),
                          seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let packer = Packer::new(16, dubhe_he::TEST_KEY_BITS);
        let packed = packer.encrypt(pk, &values, &mut rng).unwrap();
        prop_assert_eq!(packed.decrypt(sk), values);
    }

    #[test]
    fn packed_addition_is_slotwise(values in prop::collection::vec(0u64..1000, 1..40),
                                   seed in any::<u64>()) {
        let (pk, sk) = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let packer = Packer::new(32, dubhe_he::TEST_KEY_BITS);
        let doubled: Vec<u64> = values.iter().map(|v| v * 2).collect();
        let ea = packer.encrypt(pk, &values, &mut rng).unwrap();
        let eb = packer.encrypt(pk, &values, &mut rng).unwrap();
        prop_assert_eq!(ea.add(&eb).unwrap().decrypt(sk), doubled);
    }

    #[test]
    fn fixed_point_error_bounded(values in prop::collection::vec(0.0f64..1.0, 1..64)) {
        let codec = FixedPointCodec::default();
        let decoded = codec.decode_vec(&codec.encode_vec(&values));
        for (orig, back) in values.iter().zip(&decoded) {
            prop_assert!((orig - back).abs() <= codec.max_error());
        }
    }
}
