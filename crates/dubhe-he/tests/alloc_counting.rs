//! Counting-allocator proof of the scratch-arena fold contract.
//!
//! Wall-clock benches show the arena win; this test pins the *mechanism*: a
//! steady-state Montgomery fold performs **zero** heap allocations per folded
//! element, and the bookkeeping of a parallel fold is O(1) in the vector
//! length. An integration test gets its own binary, so installing a counting
//! `#[global_allocator]` here observes exactly this file's workload.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dubhe_he::{EncryptedVector, Keypair, RunningFold};
use rand::SeedableRng;

/// Forwards to the system allocator, counting every allocation entry point.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Tests in one binary run concurrently; the global counter forces them to
/// take turns (a poisoned lock just means a sibling failed — carry on).
static TURN: Mutex<()> = Mutex::new(());

/// Allocations performed while running `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

fn registry_vectors(count: usize, len: usize) -> Vec<EncryptedVector> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA110C);
    let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
    (0..count)
        .map(|i| {
            let v: Vec<u64> = (0..len).map(|j| ((i + j) % 3) as u64).collect();
            EncryptedVector::encrypt_u64(&kp.public, &v, &mut rng)
        })
        .collect()
}

#[test]
fn serial_steady_state_fold_allocates_exactly_zero() {
    let _turn = TURN.lock().unwrap_or_else(|e| e.into_inner());
    // Below the parallel threshold the fold runs on this thread through one
    // pooled arena: after the first fold warms it, the steady state must not
    // touch the heap at all.
    let vs = registry_vectors(6, 7);
    let mut fold = RunningFold::new(&vs[0]);
    fold.fold(&vs[1]).unwrap(); // warms the scratch arena
    for v in &vs[2..] {
        let n = allocs_during(|| fold.fold(v).unwrap());
        assert_eq!(n, 0, "steady-state serial fold touched the heap");
    }
    assert_eq!(fold.folded(), 6);
}

#[test]
fn parallel_fold_bookkeeping_is_constant_in_the_vector_length() {
    let _turn = TURN.lock().unwrap_or_else(|e| e.into_inner());
    // Above the threshold the fold fans out over a fixed number of chunks;
    // thread bookkeeping may allocate, but the count must not grow with the
    // element count — i.e. the per-element term is exactly zero.
    let steady = |len: usize| -> u64 {
        let vs = registry_vectors(5, len);
        let mut fold = RunningFold::new(&vs[0]);
        fold.fold(&vs[1]).unwrap(); // warm every chunk's arena
        let rounds = vs.len() as u64 - 2;
        let n = allocs_during(|| {
            for v in &vs[2..] {
                fold.fold(v).unwrap();
            }
        });
        n / rounds
    };
    let small = steady(64);
    let large = steady(640);
    assert!(
        large <= small + 8,
        "per-fold allocations grew with the vector length: {small} at 64 \
         elements vs {large} at 640"
    );
    assert!(
        large < 64,
        "per-fold allocations ({large}) approach one per element at 640 elements"
    );
}

#[test]
fn sum_vectors_allocations_do_not_scale_with_the_vector_count() {
    let _turn = TURN.lock().unwrap_or_else(|e| e.into_inner());
    // sum_vectors seeds and exits one accumulator per position; folding more
    // vectors into those positions must be allocation-free.
    let vs = registry_vectors(16, 24);
    let few = allocs_during(|| {
        dubhe_he::sum_vectors(&vs[..4]).unwrap().unwrap();
    });
    let many = allocs_during(|| {
        dubhe_he::sum_vectors(&vs).unwrap().unwrap();
    });
    assert!(
        many <= few + 64,
        "sum_vectors allocations scaled with the vector count: {few} for 4 \
         vectors vs {many} for 16"
    );
}
