//! # dubhe-bench — the experiment harness
//!
//! One binary per table / figure of the paper's evaluation section, plus
//! criterion micro-benchmarks for the HE, registry, selection and training
//! hot paths.
//!
//! Every binary:
//!
//! * runs at a laptop-scale default (finishes in seconds to a couple of
//!   minutes) and accepts `--full` for the paper-scale configuration;
//! * prints the same rows/series the paper reports, so the *shape* of the
//!   result (who wins, by roughly how much, where crossovers fall) can be
//!   compared directly with the original figures;
//! * is deterministic for a fixed `--seed`.
//!
//! The experiment index, with its paper anchor, lives in each binary's
//! module docs; `overhead_report` additionally cross-checks the in-memory,
//! sharded and TCP-loopback protocol paths against each other (see
//! `docs/ARCHITECTURE.md` at the repo root).
//!
//! ## Example: building a comparable federation for any method
//!
//! ```
//! use dubhe_bench::{dubhe_config_for, scaled_spec, Method};
//! use dubhe_data::federated::DatasetFamily;
//! use dubhe_select::ClientSelector;
//! use rand::SeedableRng;
//!
//! // The laptop-scale MNIST-like spec every binary shares (quick mode).
//! let spec = scaled_spec(DatasetFamily::MnistLike, 10.0, 1.5, false, 42);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let dists = spec.build_partition(&mut rng).client_distributions();
//!
//! // Each paper method yields a ready selector over the same population.
//! let config = dubhe_config_for(DatasetFamily::MnistLike);
//! for method in Method::all() {
//!     let mut selector = method.build(&dists, &config);
//!     assert!(!selector.select(&mut rng).is_empty(), "{}", method.name());
//! }
//! ```

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_data::ClassDistribution;
use dubhe_fl::models::small_mlp;
use dubhe_fl::{FlSimulation, History, LocalOptimizer, SimulationConfig};
use dubhe_select::{ClientSelector, DubheConfig, DubheSelector, GreedySelector, RandomSelector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Simple command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Run at paper scale instead of the quick laptop scale.
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Optional free-form part selector (e.g. `--part a`).
    pub part: Option<String>,
}

impl ExperimentArgs {
    /// Parses `--full`, `--seed <n>` and `--part <x>` from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--full");
        let seed = value_after(&args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let part = value_after(&args, "--part");
        ExperimentArgs { full, seed, part }
    }
}

fn value_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The three selection methods compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Method {
    /// Uniform random selection (baseline).
    Random,
    /// Dubhe (the paper's contribution).
    Dubhe,
    /// Greedy KL minimisation (the non-private "optimal" bound).
    Greedy,
}

impl Method {
    /// All three methods in the order the paper lists them.
    pub fn all() -> [Method; 3] {
        [Method::Random, Method::Dubhe, Method::Greedy]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Random => "Random",
            Method::Dubhe => "Dubhe",
            Method::Greedy => "Greedy",
        }
    }

    /// Builds the selector for a given client population.
    pub fn build(
        &self,
        distributions: &[ClassDistribution],
        config: &DubheConfig,
    ) -> Box<dyn ClientSelector> {
        match self {
            Method::Random => Box::new(RandomSelector::new(distributions.len(), config.k)),
            Method::Dubhe => Box::new(DubheSelector::new(distributions, config.clone())),
            Method::Greedy => Box::new(GreedySelector::new(distributions, config.k)),
        }
    }
}

/// A federation specification scaled for the harness: the paper-scale client
/// count when `full`, a reduced one otherwise.
pub fn scaled_spec(
    family: DatasetFamily,
    rho: f64,
    emd: f64,
    full: bool,
    seed: u64,
) -> FederatedSpec {
    let (clients, samples_per_client, test_per_class) = match (family, full) {
        (DatasetFamily::FemnistLike, true) => (8962, 32, 20),
        (DatasetFamily::FemnistLike, false) => (600, 32, 10),
        (_, true) => (1000, 128, 50),
        (_, false) => (200, 48, 25),
    };
    FederatedSpec {
        family,
        rho,
        emd_avg: emd,
        clients,
        samples_per_client,
        test_samples_per_class: test_per_class,
        seed,
    }
}

/// The Dubhe configuration matching a dataset family (group 1 vs group 2).
pub fn dubhe_config_for(family: DatasetFamily) -> DubheConfig {
    match family {
        DatasetFamily::FemnistLike => DubheConfig::group2(),
        _ => DubheConfig::group1(),
    }
}

/// Runs one federated training session with the given selection method.
pub fn run_training(
    spec: &FederatedSpec,
    method: Method,
    rounds: usize,
    eval_every: usize,
    multi_time_h: usize,
    seed: u64,
) -> History {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let data = spec.build_dataset(&mut rng);
    let dists = data.client_distributions();
    let config = dubhe_config_for(spec.family);
    let selector = method.build(&dists, &config);
    let model = small_mlp(data.test.feature_dim(), spec.classes(), seed);
    let mut sim_config = SimulationConfig::quick(rounds, seed);
    sim_config.eval_every = eval_every;
    sim_config.multi_time_h = multi_time_h;
    sim_config.local.optimizer = LocalOptimizer::Sgd { lr: 0.08 };
    let mut sim =
        FlSimulation::from_datasets(data.client_data, data.test, model, selector, sim_config);
    sim.run()
        .expect("experiment selectors always produce valid participant sets")
}

/// Prints a named series as `name: v0 v1 v2 ...` with three decimals, the
/// format used for every "curve" in the harness output.
pub fn print_series(name: &str, values: &[f64]) {
    let joined: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    println!("{name:<22} {}", joined.join(" "));
}

/// Synthetic encrypted registries for aggregation sweeps: vectors of
/// uniform residues below `n²`. Folding is arithmetic on residues, so
/// synthetic inputs measure exactly what real registries cost without
/// paying `count × len` encryptions to set a sweep up. Shared by the
/// `registry_agg` bench and `overhead_report`'s throughput line so both
/// generate identical inputs.
pub fn synthetic_registries(
    public: &dubhe_he::PublicKey,
    count: usize,
    len: usize,
    seed: u64,
) -> Vec<dubhe_he::EncryptedVector> {
    use num_bigint::RandBigInt;
    let mut rng = StdRng::seed_from_u64(seed);
    let n_squared = public.n_squared().clone();
    (0..count)
        .map(|_| {
            let elements: Vec<dubhe_he::Ciphertext> = (0..len)
                .map(|_| {
                    dubhe_he::Ciphertext::from_raw(
                        rng.gen_biguint_below(&n_squared),
                        public.clone(),
                    )
                })
                .collect();
            dubhe_he::EncryptedVector::from_ciphertexts(public, elements).expect("same key")
        })
        .collect()
}

/// The counting global allocator behind the `count-allocs` feature: every
/// allocation entry point bumps one relaxed atomic, so the aggregation
/// sweeps can report allocations/element alongside wall clock — the number
/// that catches a scratch-arena regression even when the clock is noisy.
#[cfg(feature = "count-allocs")]
mod alloc_meter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingAlloc;

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn allocation_count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Runs `f`, returning its result and — when the `count-allocs` feature is
/// enabled — how many heap allocations it performed. `None` means the
/// build carries no counter (the default), not "zero allocations".
pub fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    #[cfg(feature = "count-allocs")]
    {
        let before = alloc_meter::allocation_count();
        let out = f();
        (out, Some(alloc_meter::allocation_count() - before))
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        (f(), None)
    }
}

/// Writes any serialisable result object as JSON next to the binary output so
/// EXPERIMENTS.md can reference machine-readable results.
pub fn dump_json<T: Serialize>(experiment: &str, value: &T) {
    dump_json_at(std::path::Path::new("results"), experiment, value);
}

/// [`dump_json`] with an explicit results directory — benches run with the
/// package directory as cwd, so they pass the workspace-root `results/` to
/// keep every machine-readable artifact in one place.
pub fn dump_json_at<T: Serialize>(dir: &std::path::Path, experiment: &str, value: &T) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        println!("(results written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_builders_produce_the_right_selector() {
        let dists: Vec<ClassDistribution> = (0..30)
            .map(|i| {
                let mut c = vec![1u64; 10];
                c[i % 10] = 50;
                ClassDistribution::from_counts(c)
            })
            .collect();
        let config = DubheConfig::group1();
        for method in Method::all() {
            let selector = method.build(&dists, &config);
            assert_eq!(selector.name(), method.name());
            assert_eq!(selector.population(), 30);
            assert_eq!(selector.target_participants(), 20);
        }
    }

    #[test]
    fn scaled_specs_match_paper_populations_when_full() {
        let g1 = scaled_spec(DatasetFamily::MnistLike, 10.0, 1.5, true, 1);
        assert_eq!(g1.clients, 1000);
        let g2 = scaled_spec(DatasetFamily::FemnistLike, 13.64, 0.554, true, 1);
        assert_eq!(g2.clients, 8962);
        let quick = scaled_spec(DatasetFamily::CifarLike, 10.0, 1.5, false, 1);
        assert!(quick.clients < 1000);
    }

    #[test]
    fn dubhe_config_selection_follows_group() {
        assert_eq!(dubhe_config_for(DatasetFamily::MnistLike).classes, 10);
        assert_eq!(dubhe_config_for(DatasetFamily::FemnistLike).classes, 52);
    }

    #[test]
    fn a_tiny_training_run_completes() {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 2.0,
            emd_avg: 0.5,
            clients: 20,
            samples_per_client: 24,
            test_samples_per_class: 5,
            seed: 3,
        };
        let history = run_training(&spec, Method::Dubhe, 3, 1, 1, 7);
        assert_eq!(history.len(), 3);
        assert!(history.final_accuracy().is_some());
    }
}
