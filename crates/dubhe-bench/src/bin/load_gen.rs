//! `load_gen` — the network-layer load bench (`results/BENCH_net.json`).
//!
//! Drives 10³–10⁵ concurrent synthetic clients, each on its own persistent
//! framed connection, through a full selection session — public-key
//! dispatch, the registration epoch, `H` multi-time tries and the verdict —
//! against **both** coordinator listeners:
//!
//! * the thread-per-connection [`CoordinatorListener`], and
//! * the event-loop [`ReactorListener`] from `dubhe-net`.
//!
//! The client side is a single-threaded [`MuxClient`] multiplexing every
//! connection through one poller; the server side runs in a **subprocess**
//! (`--serve`), because a loopback connection costs one file descriptor on
//! each end and the default `RLIMIT_NOFILE` hard cap (20 000 here) would
//! otherwise halve the reachable connection count. The threaded listener
//! additionally holds a shutdown-clone per connection (two fds per client),
//! so its scale is capped (`--threaded-cap`, default 9 000) while the
//! reactor also runs at the full `--clients` scale.
//!
//! Every run is an acceptance check, not just a stopwatch: the parent folds
//! the identical envelope set into an in-process [`ShardedCoordinator`] and
//! compares a digest of the final ciphertext residues — the listeners must
//! be *bit-identical* to the reference, or the bench aborts.
//!
//! ```text
//! load_gen [--clients 10000] [--shards 4] [--key-bits 256] [--tries 3]
//!          [--select 2048] [--threaded-cap 9000] [--seed 42] [--channel]
//! ```
//!
//! `--channel` runs the whole bench over the authenticated channel: both
//! sides derive the listener's long-term identity deterministically from the
//! shared `--seed` (so the parent can pin it without extra IPC), every
//! connection runs the X25519 handshake, and every frame crosses the socket
//! AEAD-sealed. The digest acceptance check additionally asserts the
//! listener's auth counters: one completed handshake per connection, zero
//! failures, zero AEAD rejections, zero downgrades.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dubhe_bench::dump_json;
use dubhe_he::{EncryptedVector, Keypair, PublicKey};
use dubhe_net::{MuxClient, MuxConfig, ReactorConfig, ReactorListener};
use dubhe_select::protocol::stats::{LatencySummary, ListenerStats};
use dubhe_select::protocol::{
    ChannelPolicy, CodecKind, Coordinator, CoordinatorListener, Envelope, ListenerConfig,
    NodeIdentity, Party, ProtocolMsg, ShardedCoordinator, WireMsg,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Distinct ciphertexts are pooled and cycled across clients: the folds stay
/// real (every registry multiplies into the running total), but pool-sized
/// encryption cost keeps a 10⁴-client session affordable on one core.
const POOL: usize = 64;
/// Label classes of the synthetic registries/distributions.
const CLASSES: usize = 10;
const EPOCH: u64 = 0;
const VERDICT: (usize, f64) = (0, 0.25);
/// Salt folded into `--seed` to derive the listener's long-term channel
/// identity. Parent and `--serve` child share seed and salt, so the parent
/// can compute the public key to pin without an extra IPC line.
const IDENTITY_SALT: u64 = 0x5EA1_1DE0_57A7_1C5E;

fn server_identity_seed(seed: u64) -> u64 {
    seed ^ IDENTITY_SALT
}

fn value_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parsed_after<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    value_after(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------------------
// The deterministic session script, shared by the wire runs and the
// in-process reference so their folds can be compared bit-for-bit.
// ---------------------------------------------------------------------------

struct SessionScript {
    public_key: PublicKey,
    registries: Vec<EncryptedVector>,
    distributions: Vec<EncryptedVector>,
    tries: usize,
    select: usize,
}

impl SessionScript {
    fn build(key_bits: u64, tries: usize, select: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let keypair = Keypair::generate(key_bits, &mut rng);
        let public_key = keypair.public.clone();
        let registries = (0..POOL)
            .map(|i| {
                let mut onehot = vec![0u64; CLASSES];
                onehot[i % CLASSES] = 1;
                EncryptedVector::encrypt_u64(&public_key, &onehot, &mut rng)
            })
            .collect();
        let distributions = (0..POOL)
            .map(|i| {
                let scaled: Vec<u64> = (0..CLASSES).map(|c| ((i + c) % 97) as u64).collect();
                EncryptedVector::encrypt_u64(&public_key, &scaled, &mut rng)
            })
            .collect();
        SessionScript {
            public_key,
            registries,
            distributions,
            tries,
            select,
        }
    }

    fn key_dispatch(&self) -> Envelope {
        Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: EPOCH,
            msg: ProtocolMsg::PublicKeyDispatch {
                public_key: self.public_key.clone(),
                private_key: None,
            },
        }
    }

    fn registry(&self, client: usize) -> Envelope {
        Envelope {
            from: Party::Client(client),
            to: Party::Server,
            epoch: EPOCH,
            msg: ProtocolMsg::EncryptedRegistry {
                client,
                registry: self.registries[client % POOL].clone(),
            },
        }
    }

    fn participants(&self, try_index: usize, n: usize) -> Vec<usize> {
        let k = self.select.min(n);
        let start = (try_index * 997) % n;
        (0..k).map(|j| (start + j) % n).collect()
    }

    fn distribution(&self, client: usize, try_index: usize) -> Envelope {
        Envelope {
            from: Party::Client(client),
            to: Party::Server,
            epoch: EPOCH,
            msg: ProtocolMsg::EncryptedDistribution {
                client,
                try_index,
                distribution: self.distributions[(client + 7 * try_index) % POOL].clone(),
            },
        }
    }

    fn verdict(&self) -> Envelope {
        Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: EPOCH,
            msg: ProtocolMsg::TryVerdict {
                best_try: VERDICT.0,
                distance: VERDICT.1,
            },
        }
    }

    /// Folds the whole session into an in-process coordinator and returns
    /// `(digest, messages_received)` — the reference every wire run must hit.
    fn reference(&self, n: usize, shards: usize) -> (u64, usize) {
        let mut server = ShardedCoordinator::new(n, shards);
        server.deliver(self.key_dispatch()).expect("key dispatch");
        for client in 0..n {
            server.deliver(self.registry(client)).expect("registry");
        }
        for try_index in 0..self.tries {
            let participants = self.participants(try_index, n);
            Coordinator::announce_try(&mut server, try_index, &participants).expect("announce");
            for &client in &participants {
                server
                    .deliver(self.distribution(client, try_index))
                    .expect("distribution");
            }
        }
        server.deliver(self.verdict()).expect("verdict");
        (state_digest(&server), server.messages_received())
    }
}

/// FNV-1a over the final fold's ciphertext residues: equal digests ⇔ the
/// coordinator aggregated bit-identical totals.
fn state_digest(state: &ShardedCoordinator) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let total = state.encrypted_total().expect("registration completed");
    for ct in total.elements() {
        let bytes = ct.raw().to_bytes_be();
        eat(&(bytes.len() as u64).to_be_bytes());
        eat(&bytes);
    }
    hash
}

// ---------------------------------------------------------------------------
// --serve: the listener subprocess.
// ---------------------------------------------------------------------------

/// Serves one session: binds the requested listener, prints `ADDR`, waits
/// for the parent to finish (a line or EOF on stdin), then reports the final
/// coordinator digest and the listener's connection metrics.
fn serve(kind: &str, n: usize, shards: usize, channel: ChannelPolicy, seed: u64) {
    let coordinator = ShardedCoordinator::new(n, shards);
    let identity_seed = server_identity_seed(seed);
    let (addr, stats, state): (_, ListenerStats, ShardedCoordinator) = match kind {
        "threaded" => {
            let listener = CoordinatorListener::spawn_with(
                coordinator,
                ListenerConfig::default()
                    .with_channel(channel)
                    .with_identity_seed(identity_seed),
            )
            .expect("spawn listener");
            let addr = listener.addr();
            announce_ready(addr);
            wait_for_parent();
            let stats = listener.stats();
            let state = listener.shutdown().expect("coordinator state");
            (addr, stats, state)
        }
        "reactor" => {
            let listener = ReactorListener::spawn_with(
                coordinator,
                ReactorConfig::default()
                    .with_channel(channel)
                    .with_identity_seed(identity_seed),
            )
            .expect("spawn listener");
            let addr = listener.addr();
            announce_ready(addr);
            wait_for_parent();
            let stats = listener.stats();
            let state = listener.shutdown().expect("coordinator state");
            (addr, stats, state)
        }
        other => panic!("unknown --serve kind {other:?} (threaded|reactor)"),
    };
    let _ = addr;
    println!("MSGS {}", state.messages_received());
    let (best_try, distance) = state.last_verdict().expect("verdict recorded");
    println!("VERDICT {best_try} {distance}");
    println!("DIGEST {:016x}", state_digest(&state));
    println!(
        "STATS {}",
        serde_json::to_string(&stats).expect("stats serialize")
    );
}

fn announce_ready(addr: std::net::SocketAddr) {
    println!("ADDR {addr}");
    std::io::stdout().flush().expect("flush");
}

fn wait_for_parent() {
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
}

// ---------------------------------------------------------------------------
// The parent: drive one session over the wire and time its phases.
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct BackendReport {
    listener: String,
    clients: usize,
    connect_s: f64,
    registration_s: f64,
    registrations_per_s: f64,
    tries: usize,
    participants_per_try: usize,
    tries_s: f64,
    rounds_per_s: f64,
    latency_us: LatencySummary,
    server: ListenerStats,
    digest: String,
    bit_identical_to_reference: bool,
}

#[derive(Serialize)]
struct NetBenchReport {
    clients: usize,
    shards: usize,
    key_bits: u64,
    tries: usize,
    select: usize,
    threaded_cap: usize,
    codec: String,
    channel: String,
    ciphertext_pool: usize,
    seed: u64,
    runs: Vec<BackendReport>,
}

struct ServerChild {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: std::net::SocketAddr,
}

fn spawn_server(
    kind: &str,
    n: usize,
    shards: usize,
    channel: ChannelPolicy,
    seed: u64,
) -> ServerChild {
    let exe = std::env::current_exe().expect("current exe");
    let mut args = vec![
        "--serve".to_string(),
        kind.to_string(),
        "--clients".to_string(),
        n.to_string(),
        "--shards".to_string(),
        shards.to_string(),
        "--seed".to_string(),
        seed.to_string(),
    ];
    if channel.is_required() {
        args.push("--channel".to_string());
    }
    let mut child = Command::new(exe)
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn --serve subprocess");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read ADDR line");
    let addr = line
        .trim()
        .strip_prefix("ADDR ")
        .unwrap_or_else(|| panic!("expected ADDR line, got {line:?}"))
        .parse()
        .expect("parse listener address");
    ServerChild {
        child,
        stdout,
        addr,
    }
}

/// Replies must be `Ack`/`Batch`; a single `Error` frame fails the bench.
fn check_replies(phase: &str, replies: &[(usize, WireMsg)]) {
    for (conn, reply) in replies {
        if let WireMsg::Error { detail } = reply {
            panic!("{phase}: connection {conn} got an error reply: {detail}");
        }
    }
}

fn run_backend(
    kind: &str,
    n: usize,
    shards: usize,
    script: &SessionScript,
    references: &mut HashMap<usize, (u64, usize)>,
    channel: ChannelPolicy,
    seed: u64,
) -> BackendReport {
    let (ref_digest, ref_msgs) = *references
        .entry(n)
        .or_insert_with(|| script.reference(n, shards));

    println!("[{kind} n={n}] spawning listener subprocess...");
    let mut server = spawn_server(kind, n, shards, channel, seed);

    let mut mux_config = MuxConfig::default()
        .with_codec(CodecKind::Binary)
        .with_exchange_timeout(Duration::from_secs(300));
    if channel.is_required() {
        // The child derived its identity from the shared seed; pin it.
        let pin = NodeIdentity::from_seed(server_identity_seed(seed)).public_bytes();
        mux_config = mux_config
            .with_channel(ChannelPolicy::Required)
            .with_expected_server(pin);
    }
    let t = Instant::now();
    let mut mux = MuxClient::connect(server.addr, n, mux_config).expect("connect mux clients");
    let connect_s = t.elapsed().as_secs_f64();
    println!("[{kind} n={n}] {n} connections in {connect_s:.2}s");

    // Key dispatch: one control envelope from the agent, on connection 0.
    let replies = mux
        .exchange(&[(
            0,
            WireMsg::Envelope {
                envelope: script.key_dispatch(),
            },
        )])
        .expect("key dispatch");
    check_replies("key dispatch", &replies);

    // Registration epoch: every client uploads its encrypted registry on its
    // own connection; the upload completing the cohort pulls the broadcast.
    let t = Instant::now();
    for client in 0..n {
        mux.send(
            client,
            &WireMsg::Envelope {
                envelope: script.registry(client),
            },
        )
        .expect("queue registry");
    }
    let replies = mux.collect(n).expect("registration replies");
    check_replies("registration", &replies);
    let registration_s = t.elapsed().as_secs_f64();
    println!("[{kind} n={n}] registration epoch in {registration_s:.2}s");

    // Multi-time selection: H tries of announce → k contributions → sum.
    let k = script.select.min(n);
    let t = Instant::now();
    for try_index in 0..script.tries {
        let participants = script.participants(try_index, n);
        let replies = mux
            .exchange(&[(
                0,
                WireMsg::AnnounceTry {
                    try_index,
                    participants: participants.clone(),
                },
            )])
            .expect("announce try");
        check_replies("announce", &replies);
        for &client in &participants {
            mux.send(
                client,
                &WireMsg::Envelope {
                    envelope: script.distribution(client, try_index),
                },
            )
            .expect("queue distribution");
        }
        let replies = mux.collect(participants.len()).expect("try replies");
        check_replies("try", &replies);
    }
    let replies = mux
        .exchange(&[(
            0,
            WireMsg::Envelope {
                envelope: script.verdict(),
            },
        )])
        .expect("verdict");
    check_replies("verdict", &replies);
    let tries_s = t.elapsed().as_secs_f64();
    println!(
        "[{kind} n={n}] {} tries x {k} participants in {tries_s:.2}s",
        script.tries
    );

    let latency_us = mux.latency_summary();
    mux.shutdown();

    // Tell the child to wrap up, then read its report.
    let mut stdin = server.child.stdin.take().expect("child stdin");
    let _ = stdin.write_all(b"DONE\n");
    drop(stdin);
    let mut msgs = None;
    let mut verdict = None;
    let mut digest = None;
    let mut stats: Option<ListenerStats> = None;
    let mut line = String::new();
    while {
        line.clear();
        server.stdout.read_line(&mut line).expect("child report") > 0
    } {
        if let Some(v) = line.trim().strip_prefix("MSGS ") {
            msgs = v.parse::<usize>().ok();
        } else if let Some(v) = line.trim().strip_prefix("VERDICT ") {
            verdict = Some(v.to_string());
        } else if let Some(v) = line.trim().strip_prefix("DIGEST ") {
            digest = Some(v.to_string());
        } else if let Some(v) = line.trim().strip_prefix("STATS ") {
            stats = serde_json::from_str(v).ok();
        }
    }
    let status = server.child.wait().expect("child exit");
    assert!(status.success(), "[{kind} n={n}] server subprocess failed");
    let msgs = msgs.expect("MSGS line");
    let digest = digest.expect("DIGEST line");
    let verdict = verdict.expect("VERDICT line");
    let stats = stats.expect("STATS line");

    // The acceptance pins: the listener's folds must be bit-identical to the
    // in-process reference, with the identical message count and verdict.
    let expected_digest = format!("{ref_digest:016x}");
    assert_eq!(
        digest, expected_digest,
        "[{kind} n={n}] ciphertext folds diverged from the in-process reference"
    );
    assert_eq!(msgs, ref_msgs, "[{kind} n={n}] message count diverged");
    assert_eq!(
        verdict,
        format!("{} {}", VERDICT.0, VERDICT.1),
        "[{kind} n={n}] verdict diverged"
    );
    // The auth counters are part of the acceptance surface: with the channel
    // on, every connection authenticated exactly once and nothing was
    // rejected; with it off, no handshake ever ran.
    if channel.is_required() {
        assert_eq!(
            stats.handshakes_completed, n,
            "[{kind} n={n}] every connection must complete its handshake"
        );
    } else {
        assert_eq!(stats.handshakes_completed, 0, "[{kind} n={n}]");
    }
    assert_eq!(stats.handshakes_failed, 0, "[{kind} n={n}]");
    assert_eq!(stats.aead_rejections, 0, "[{kind} n={n}]");
    assert_eq!(stats.downgrades_refused, 0, "[{kind} n={n}]");
    println!(
        "[{kind} n={n}] bit-identical to reference (digest {digest}); p50 {:.0}us p99 {:.0}us, peak queue {}B",
        latency_us.p50_us, latency_us.p99_us, stats.peak_write_queue
    );

    BackendReport {
        listener: kind.to_string(),
        clients: n,
        connect_s,
        registration_s,
        registrations_per_s: n as f64 / registration_s,
        tries: script.tries,
        participants_per_try: k,
        tries_s,
        rounds_per_s: script.tries as f64 / tries_s,
        latency_us,
        server: stats,
        digest,
        bit_identical_to_reference: true,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = parsed_after(&args, "--clients", 10_000);
    let shards: usize = parsed_after(&args, "--shards", 4);
    let key_bits: u64 = parsed_after(&args, "--key-bits", 256);
    let tries: usize = parsed_after(&args, "--tries", 3);
    let select: usize = parsed_after(&args, "--select", 2048);
    let threaded_cap: usize = parsed_after(&args, "--threaded-cap", 9_000);
    let seed: u64 = parsed_after(&args, "--seed", 42);
    let channel = if args.iter().any(|a| a == "--channel") {
        ChannelPolicy::Required
    } else {
        ChannelPolicy::Plaintext
    };

    if let Some(kind) = value_after(&args, "--serve") {
        serve(&kind, clients, shards, channel, seed);
        return;
    }

    println!(
        "load_gen: {clients} clients, {shards} shards, {key_bits}-bit keys, \
         H={tries} tries of {select}, DBH2 framing, channel {channel:?}"
    );
    let script = SessionScript::build(key_bits, tries, select, seed);
    let mut references = HashMap::new();

    // Like-for-like comparison at the largest scale both listeners reach,
    // then the reactor alone at the full client count (the threaded listener
    // spends two fds per connection — its half of the fd budget caps it).
    let n_eq = clients.min(threaded_cap);
    let mut runs = Vec::new();
    runs.push(run_backend(
        "threaded",
        n_eq,
        shards,
        &script,
        &mut references,
        channel,
        seed,
    ));
    runs.push(run_backend(
        "reactor",
        n_eq,
        shards,
        &script,
        &mut references,
        channel,
        seed,
    ));
    if clients > n_eq {
        runs.push(run_backend(
            "reactor",
            clients,
            shards,
            &script,
            &mut references,
            channel,
            seed,
        ));
    }

    let report = NetBenchReport {
        clients,
        shards,
        key_bits,
        tries,
        select,
        threaded_cap,
        codec: "DBH2".to_string(),
        channel: format!("{channel:?}").to_lowercase(),
        ciphertext_pool: POOL,
        seed,
        runs,
    };
    dump_json("BENCH_net", &report);
}
