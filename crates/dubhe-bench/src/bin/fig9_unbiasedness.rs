//! Figure 9: data unbiasedness ||p_o - p_u||_1 (mean and standard deviation
//! over 100 selections) as a function of the participation K out of N = 1000,
//! for Random, Dubhe and Greedy, on the rho = 10 / EMD_avg = 1.5 federation.
//! Also reports the baseline ||p_g - p_u||_1 and the headline "reduced by
//! 64.4%" claim of Eq. (3) / §6.3.1.
//!
//! This experiment is selection-only (no training), so it runs at the paper's
//! full N = 1000 scale even without `--full`.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin fig9_unbiasedness
//! ```

use dubhe_bench::{dubhe_config_for, ExperimentArgs, Method};
use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_data::l1_distance;
use dubhe_select::selector::selection_stats;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    method: String,
    k: usize,
    mean: f64,
    std: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let repetitions = if args.full { 1000 } else { 100 };
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 1000,
        samples_per_client: 128,
        test_samples_per_class: 1,
        seed: args.seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let fp = spec.build_partition(&mut rng);
    let dists = fp.client_distributions();

    // Baseline: distance of the global distribution itself from uniform.
    let p_g = fp.global.proportions();
    let p_u = vec![1.0 / p_g.len() as f64; p_g.len()];
    let baseline = l1_distance(&p_g, &p_u);
    println!("Fig. 9: MNIST/CIFAR10-10/1.5, N = 1000, {repetitions} selections per point");
    println!("baseline ||p_g - p_u||_1 = {baseline:.4}\n");
    println!("{:<8} {:>6} {:>12} {:>12}", "method", "K", "mean", "std");

    let ks = [10usize, 20, 50, 100, 200, 500, 1000];
    let mut points = Vec::new();
    let mut reduction_at_k20: Option<f64> = None;
    let mut random_at_k20 = 0.0;
    for method in Method::all() {
        for &k in &ks {
            let mut config = dubhe_config_for(spec.family);
            config.k = k;
            let mut selector = method.build(&dists, &config);
            let stats = selection_stats(selector.as_mut(), &dists, repetitions, &mut rng)
                .expect("experiment selectors never return empty selections");
            println!(
                "{:<8} {:>6} {:>12.4} {:>12.4}",
                method.name(),
                k,
                stats.mean,
                stats.std
            );
            if k == 20 {
                match method {
                    Method::Random => random_at_k20 = stats.mean,
                    Method::Dubhe => {
                        reduction_at_k20 = Some(100.0 * (1.0 - stats.mean / random_at_k20))
                    }
                    Method::Greedy => {}
                }
            }
            points.push(Point {
                method: method.name().to_string(),
                k,
                mean: stats.mean,
                std: stats.std,
            });
        }
        println!();
    }

    if let Some(reduction) = reduction_at_k20 {
        println!(
            "Dubhe reduces ||p_o - p_u||_1 by {reduction:.1}% vs random at K = 20 \
             (paper reports up to 64.4% in this setting)."
        );
    }
    println!(
        "Expected shape: Random stays near the baseline at every K with large std at small K; \
         Greedy is near zero at low participation and converges back to the baseline as K -> N; \
         Dubhe suppresses the distance at low K and is robust to the participation rate."
    );
    dubhe_bench::dump_json("fig9_unbiasedness", &points);
}
