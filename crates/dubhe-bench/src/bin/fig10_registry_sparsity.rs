//! Figure 10: the overall registry and the resulting participated class
//! proportion, illustrating the registry-sparsity effect.
//!
//! Reproduces the paper's setting: N = 1000, rho = 10, EMD_avg = 1.5,
//! G = {1, 2, 10}, sigma_1 = 0.7, sigma_2 = 0.1, averaged over 100 selections.
//! Prints every occupied registry category with its client count, the empty
//! categories that cause minority classes to stay under-represented, and the
//! average population proportion per class.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin fig10_registry_sparsity
//! ```

use dubhe_bench::ExperimentArgs;
use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_select::registry::summarize;
use dubhe_select::selector::population_distribution;
use dubhe_select::{ClientSelector, DubheConfig, DubheSelector};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Fig10Result {
    occupied_categories: Vec<(Vec<usize>, u64)>,
    nonzero_categories: usize,
    class_coverage: Vec<u64>,
    average_population_proportion: Vec<f64>,
    global_proportion: Vec<f64>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let repetitions = 100;
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 1000,
        samples_per_client: 128,
        test_samples_per_class: 1,
        seed: args.seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let fp = spec.build_partition(&mut rng);
    let dists = fp.client_distributions();

    // The paper's searched optimum for this setting.
    let config = DubheConfig::group1().with_thresholds(vec![0.7, 0.1, 0.0]);
    let mut selector = DubheSelector::new(&dists, config.clone());
    let layout = selector.layout().clone();
    let summary = summarize(selector.overall_registry(), &layout);

    println!(
        "Fig. 10: overall registry for N = 1000, rho = 10, EMD = 1.5, G = {{1, 2, 10}}, \
         sigma_1 = 0.7, sigma_2 = 0.1"
    );
    println!(
        "occupied categories ({} of {} positions):",
        summary.nonzero_categories,
        layout.len()
    );
    for (cat, count) in &summary.occupied {
        println!("  categories {:?} -> {count} clients", cat.classes);
    }
    println!("\nper-class dominating-client coverage (zero means the class can never be");
    println!("balanced through client selection — the registry-sparsity effect):");
    for (class, &count) in summary.class_coverage.iter().enumerate() {
        println!("  class {class}: {count} clients");
    }

    // Average population proportion over repeated selections.
    let mut avg = vec![0.0f64; config.classes];
    for _ in 0..repetitions {
        let selected = selector.select(&mut rng);
        let p_o =
            population_distribution(&selected, &dists).expect("Dubhe selection is never empty");
        for (a, v) in avg.iter_mut().zip(&p_o) {
            *a += v;
        }
    }
    for a in &mut avg {
        *a /= repetitions as f64;
    }
    let global = fp.global.proportions();
    println!(
        "\naverage participated class proportion over {repetitions} selections (uniform = 0.100):"
    );
    println!("{:>6} {:>10} {:>10}", "class", "global", "Dubhe p_o");
    for class in 0..config.classes {
        println!("{class:>6} {:>10.4} {:>10.4}", global[class], avg[class]);
    }
    println!(
        "\nExpected shape: the participated proportion is far flatter than the global \
         proportion, but minority classes (8, 9) remain slightly under-represented whenever \
         no client lists them as dominating (paper: 0.075 and 0.063 instead of 0.1)."
    );

    dubhe_bench::dump_json(
        "fig10_registry_sparsity",
        &Fig10Result {
            occupied_categories: summary
                .occupied
                .iter()
                .map(|(c, n)| (c.classes.clone(), *n))
                .collect(),
            nonzero_categories: summary.nonzero_categories,
            class_coverage: summary.class_coverage,
            average_population_proportion: avg,
            global_proportion: global,
        },
    );
}
