//! Figure 7: average accuracy over the last 50 rounds for every (rho, EMD_avg)
//! combination and every selection method — the heat-map grid of the paper.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin fig7_accuracy_grid [-- --full]
//! ```

use dubhe_bench::{run_training, scaled_spec, ExperimentArgs, Method};
use dubhe_data::federated::DatasetFamily;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    family: String,
    method: String,
    rho: f64,
    emd: f64,
    avg_accuracy_last: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (rounds, eval_every, last_n) = if args.full { (200, 5, 50) } else { (25, 5, 5) };
    let rhos = [1.0, 2.0, 5.0, 10.0];
    let emds = [0.0, 0.5, 1.0, 1.5];

    // The paper shows the grid for both dataset groups; the quick run uses the
    // MNIST-like family only unless --full is given.
    let families: &[DatasetFamily] = if args.full {
        &[DatasetFamily::MnistLike, DatasetFamily::CifarLike]
    } else {
        &[DatasetFamily::MnistLike]
    };

    let mut cells = Vec::new();
    for &family in families {
        for method in Method::all() {
            println!(
                "=== {:?} / {} : avg accuracy over last {last_n} evals ===",
                family,
                method.name()
            );
            println!(
                "{:>8} {}",
                "rho\\EMD",
                emds.map(|e| format!("{e:>8.1}")).join(" ")
            );
            for &rho in &rhos {
                let mut row = Vec::new();
                for &emd in &emds {
                    let spec = scaled_spec(family, rho, emd, args.full, args.seed);
                    let history = run_training(&spec, method, rounds, eval_every, 1, args.seed);
                    let acc = history.average_accuracy_last(last_n).unwrap_or(0.0);
                    row.push(format!("{acc:>8.3}"));
                    cells.push(Cell {
                        family: format!("{family:?}"),
                        method: method.name().to_string(),
                        rho,
                        emd,
                        avg_accuracy_last: acc,
                    });
                }
                println!("{rho:>8.1} {}", row.join(" "));
            }
            println!();
        }
    }
    println!(
        "Expected shape: with Random selection accuracy falls as rho and EMD_avg grow; \
         Dubhe and Greedy hold accuracy roughly flat across the grid (they coincide with \
         Random in the degenerate rho = 1 / EMD = 0 cells where there is nothing to balance)."
    );
    dubhe_bench::dump_json("fig7_accuracy_grid", &cells);
}
