//! §6.4: encryption and communication overhead.
//!
//! Measures, on this machine and this Paillier implementation, the same
//! quantities the paper reports:
//!
//! * plaintext and ciphertext sizes of a length-56 registry (group 1) and a
//!   length-53 registry / 52-class distribution (group 2);
//! * encryption and decryption latency per registry;
//! * the communication-count model (K check-ins per round, N registry
//!   transfers per registration, ~H*K multi-time transfers);
//! * the BatchCrypt-style packed alternative, quantifying how much of the
//!   element-wise overhead packing removes;
//! * a full protocol round-trip through the role-separated actor API
//!   (registration + one multi-time round), with per-message-kind transport
//!   metering;
//! * an end-to-end `FlSimulation` in encrypted mode, cross-checked against
//!   the modeled ledger accounting.
//!
//! Uses 2048-bit keys like the paper by default; pass `--key-bits 512` for a
//! quick run.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin overhead_report [-- --key-bits 512]
//! ```

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_fl::models::small_mlp;
use dubhe_fl::{FlSimulation, ListenerKind, SecureMode, SimulationConfig};
use dubhe_he::packing::Packer;
use dubhe_he::transport::{measure_packed, measure_vector, CommunicationCount};
use dubhe_he::{
    CrtEncryptor, EncryptedVector, Encryptor, FixedPointCodec, Keypair, PrecomputedEncryptor,
    PrivateKey, PublicKey, RunningFold,
};
use dubhe_select::protocol::{
    client_handshake, pump, run_registration, run_registration_with, run_try,
    run_try_with_dropouts, ChannelPolicy, CodecKind, CoordinatorListener, CoordinatorServer,
    Envelope, InMemoryTransport, LinkStats, ListenerConfig, NodeIdentity, Party, ProtocolMsg,
    RegistryFrame, ShardedCoordinator, TcpConfig, TcpTransport, Transport, WireMsg,
    HANDSHAKE_WIRE_BYTES, MAX_FRAME_BYTES, SEALED_FRAME_OVERHEAD,
};
use dubhe_select::{DubheConfig, DubheSelector};
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct OverheadRow {
    object: String,
    length: usize,
    plaintext_bytes: usize,
    ciphertext_bytes: usize,
    expansion: f64,
    encrypt_ms: f64,
    decrypt_ms: f64,
}

/// One registration round of `clients` length-`registry_len` uploads, timed
/// stage by stage along the exact path the binary listeners take.
#[derive(Serialize)]
struct LatencyBudget {
    clients: usize,
    registry_len: usize,
    key_bits: u64,
    /// Client side: fixed-base multi-exp encryption of every registry.
    encrypt_ms: f64,
    /// `DBH2` payload encoding of every upload.
    wire_ms: f64,
    /// Zero-copy deferral: envelope-prefix parse plus in-place residue
    /// validation — no ciphertext bytes are copied or re-allocated.
    decode_ms: f64,
    /// Montgomery running fold straight over the borrowed frame views.
    fold_ms: f64,
    /// CRT batch decryption of the folded total.
    decrypt_ms: f64,
    total_ms: f64,
}

/// The multi-exponentiation acceptance measurement: the interleaved batch
/// walk over a length-56 registry against 56 independent per-element
/// encryptions of the same `CrtEncryptor`, at the paper-scale 1024-bit key.
#[derive(Serialize)]
struct MultiExpRow {
    key_bits: u64,
    registry_len: usize,
    per_element_ms: f64,
    multi_exp_ms: f64,
    speedup: f64,
}

/// What the authenticated channel costs on top of the plaintext protocol:
/// the one-time handshake (latency + its fixed wire bytes) and the 32-byte
/// seal every frame carries afterwards. The report asserts the total stays
/// within a 15% envelope over the inner protocol bytes — in practice the
/// ciphertext-heavy frames dwarf the seal by orders of magnitude.
#[derive(Serialize)]
struct ChannelOverheadRow {
    key_bits: u64,
    /// Mean X25519 handshake latency over loopback (connect excluded).
    handshake_ms: f64,
    /// Fixed handshake wire cost, both directions (`HANDSHAKE_WIRE_BYTES`).
    handshake_wire_bytes: usize,
    /// Sealed protocol frames the measured session exchanged.
    frames: usize,
    /// Inner protocol bytes (identical to the plaintext run by design).
    protocol_bytes: usize,
    /// Handshake + sealing bytes the channel added on top.
    channel_bytes: usize,
    /// Sealing bytes per frame (the constant `SEALED_FRAME_OVERHEAD`).
    sealed_overhead_per_frame: f64,
    /// (protocol + channel) / protocol — asserted ≤ 1.15.
    overhead_ratio: f64,
}

#[derive(Serialize)]
struct OverheadReport {
    sizes: Vec<OverheadRow>,
    latency_budget: LatencyBudget,
    multi_exp: MultiExpRow,
    channel: ChannelOverheadRow,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let key_bits: u64 = args
        .iter()
        .position(|a| a == "--key-bits")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2048);

    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    println!("generating a {key_bits}-bit Paillier keypair ...");
    let t = Instant::now();
    let keypair = Keypair::generate(key_bits, &mut rng);
    println!("keygen: {:.2?}\n", t.elapsed());
    let (pk, sk) = keypair.split();

    let mut rows = Vec::new();
    let mut measure = |object: &str, values: &[u64]| {
        let t = Instant::now();
        let enc = EncryptedVector::encrypt_u64(&pk, values, &mut rng);
        let encrypt_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let dec = enc.decrypt_u64(&sk).expect("registry counters fit in u64");
        let decrypt_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(dec, values, "round trip must be lossless");
        let size = measure_vector(&enc);
        rows.push(OverheadRow {
            object: object.to_string(),
            length: values.len(),
            plaintext_bytes: size.plaintext_bytes,
            ciphertext_bytes: size.ciphertext_bytes,
            expansion: size.expansion_factor(),
            encrypt_ms,
            decrypt_ms,
        });
    };

    // Group-1 registry (length 56) and group-2 registry (length 53), one-hot.
    let mut registry56 = vec![0u64; 56];
    registry56[10] = 1;
    measure("registry G={1,2,10} (l=56)", &registry56);
    let mut registry53 = vec![0u64; 53];
    registry53[17] = 1;
    measure("registry G={1,52} (l=53)", &registry53);

    // Encrypted label distribution p_l over 52 classes (multi-time selection).
    let codec = FixedPointCodec::default();
    let p_l: Vec<f64> = (0..52).map(|i| if i == 3 { 0.49 } else { 0.01 }).collect();
    measure("distribution p_l (C=52)", &codec.encode_vec(&p_l));

    println!(
        "{:<28} {:>4} {:>12} {:>13} {:>9} {:>11} {:>11}",
        "object", "len", "plain (B)", "cipher (B)", "expand", "encrypt ms", "decrypt ms"
    );
    for r in &rows {
        println!(
            "{:<28} {:>4} {:>12} {:>13} {:>8.1}x {:>11.2} {:>11.2}",
            r.object,
            r.length,
            r.plaintext_bytes,
            r.ciphertext_bytes,
            r.expansion,
            r.encrypt_ms,
            r.decrypt_ms
        );
    }
    println!(
        "\nPaper reference (python-paillier, 2048-bit): 0.47-0.49 KB plaintexts expand to \
         29.6-31.28 KB; encryption 6.9 s / decryption 1.9 s per registry. Our native \
         implementation is faster in absolute terms; the expansion factor and the \
         negligible-versus-training conclusion are what must match."
    );

    // Packed (BatchCrypt-style) alternative.
    let packer = Packer::new(32, key_bits);
    let packed = packer
        .encrypt(&pk, &registry56, &mut rng)
        .expect("packing fits");
    let packed_size = measure_packed(&packed);
    println!(
        "\npacked registry (32-bit slots): {} ciphertexts, {} B ({:.1}% of the element-wise payload)",
        packed.ciphertext_count(),
        packed_size.ciphertext_bytes,
        100.0 * packed_size.ciphertext_bytes as f64 / rows[0].ciphertext_bytes as f64
    );

    // Communication-count model (paper §6.4).
    println!("\ncommunication counts per round (K = 20, N = 1000, H = 10):");
    let plain = CommunicationCount::per_round(20, 1000, 1, false);
    let registration = CommunicationCount::per_round(20, 1000, 1, true);
    let multi = CommunicationCount::per_round(20, 1000, 10, false);
    println!("  classic FL round          : {} messages", plain.total());
    println!(
        "  + registration epoch      : {} messages",
        registration.total()
    );
    println!("  + multi-time selection    : {} messages", multi.total());

    let in_memory_stats = protocol_round_trip(key_bits);
    tcp_round_trip(key_bits, &in_memory_stats);
    let channel = channel_overhead(key_bits, &in_memory_stats);
    aggregation_throughput(&pk);
    let latency_budget = latency_budget_round(&pk, &sk);
    let multi_exp = multi_exp_acceptance();
    epoch_lifecycle(key_bits);
    encrypted_simulation(key_bits);

    dubhe_bench::dump_json(
        "overhead_report",
        &OverheadReport {
            sizes: rows,
            latency_budget,
            multi_exp,
            channel,
        },
    );
}

/// Measures what turning the authenticated channel on costs: handshake
/// latency in isolation, then the full TCP session from [`tcp_round_trip`]
/// re-run under `ChannelPolicy::Required` — same canonical traffic, plus a
/// metered handshake and a 32-byte seal per frame. Asserts the channel's
/// total wire cost stays within 15% of the inner protocol bytes.
fn channel_overhead(key_bits: u64, in_memory: &dubhe_select::TransportStats) -> ChannelOverheadRow {
    println!("\nauthenticated channel overhead (DBH2, 4-shard coordinator):");
    let listener = CoordinatorListener::spawn_with(
        ShardedCoordinator::new(30, 4),
        ListenerConfig::default().with_channel(ChannelPolicy::Required),
    )
    .expect("spawn channel listener");
    let pin = listener.public_identity().expect("identity resolved");

    // Handshake latency in isolation: raw connect first, then time only the
    // three-message exchange.
    let reps = 20;
    let t = Instant::now();
    let mut streams: Vec<std::net::TcpStream> = (0..reps)
        .map(|_| std::net::TcpStream::connect(listener.addr()).expect("connect"))
        .collect();
    let connect_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let t = Instant::now();
    for (i, stream) in streams.iter_mut().enumerate() {
        let identity = NodeIdentity::from_seed(7000 + i as u64);
        client_handshake(stream, &identity, Some(pin), MAX_FRAME_BYTES).expect("handshake");
    }
    let handshake_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
    drop(streams);

    // The full session, sealed end-to-end.
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 30,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed: 101,
    };
    let dists = spec.build_partition(&mut rng).client_distributions();
    let mut config = DubheConfig::group1();
    config.k = 10;
    let endpoint = TcpTransport::connect_with_config(
        listener.addr(),
        TcpConfig::default()
            .with_codec(CodecKind::Binary)
            .with_channel(ChannelPolicy::Required)
            .with_expected_server(pin),
    )
    .expect("sealed connect");
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration_with(
        &dists,
        &config,
        key_bits,
        endpoint,
        &mut transport,
        &mut rng,
    )
    .expect("registration epoch over the sealed channel");
    let mut selector = DubheSelector::new(&dists, config);
    run.agent.expect_tries(3);
    for try_index in 0..3 {
        let tentative = dubhe_select::ClientSelector::select(&mut selector, &mut rng);
        run_try(
            try_index,
            &tentative,
            &mut run.agent,
            &mut run.clients,
            &mut run.server,
            &mut transport,
            &mut rng,
        )
        .expect("multi-time try over the sealed channel");
    }
    assert_eq!(
        transport.stats(),
        in_memory,
        "the sealed session must meter the identical canonical traffic"
    );
    let wire = *run.server.wire_stats();
    run.server.shutdown().expect("polite shutdown");
    drop(listener);

    let frames = wire.frames_sent + wire.frames_received;
    let protocol_bytes = wire.total_bytes();
    let channel_bytes = wire.channel_overhead_bytes();
    let per_frame = wire.sealed_overhead_bytes as f64 / frames as f64;
    let ratio = (protocol_bytes + channel_bytes) as f64 / protocol_bytes as f64;
    assert_eq!(
        per_frame, SEALED_FRAME_OVERHEAD as f64,
        "every sealed frame carries exactly the constant seal"
    );
    assert_eq!(wire.handshake_bytes, HANDSHAKE_WIRE_BYTES);
    assert!(
        ratio <= 1.15,
        "channel overhead {ratio:.4}x exceeds the 1.15x budget over protocol bytes"
    );
    println!(
        "  handshake: {handshake_ms:.3} ms (TCP connect {connect_ms:.3} ms), \
         {HANDSHAKE_WIRE_BYTES} B on the wire"
    );
    println!(
        "  sealing: {frames} frames x {SEALED_FRAME_OVERHEAD} B seal = {} B on \
         {protocol_bytes} protocol B -> {ratio:.4}x total (budget 1.15x)",
        wire.sealed_overhead_bytes
    );
    ChannelOverheadRow {
        key_bits,
        handshake_ms,
        handshake_wire_bytes: HANDSHAKE_WIRE_BYTES,
        frames,
        protocol_bytes,
        channel_bytes,
        sealed_overhead_per_frame: per_frame,
        overhead_ratio: ratio,
    }
}

/// The end-to-end per-round latency budget: where one registration round of
/// K = 20 clients actually spends its time, stage by stage, along the path
/// the binary (`DBH2`) listeners take — multi-exp encryption on the clients,
/// payload encoding, the zero-copy deferred decode (the envelope prefix is
/// parsed and the residue block validated in place; the fold then reads
/// ciphertext residues straight out of the frame payload), the Montgomery
/// running fold over the borrowed views, and the CRT batch decrypt of the
/// folded total.
fn latency_budget_round(pk: &PublicKey, sk: &PrivateKey) -> LatencyBudget {
    let clients = 20usize;
    let registry_len = 56usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB0D6);

    // Client side: the shared fixed-base table is built once per epoch and
    // is not part of the per-round budget.
    let encryptor = PrecomputedEncryptor::new(pk, &mut rng);
    let t = Instant::now();
    let registries: Vec<EncryptedVector> = (0..clients)
        .map(|i| {
            let mut v = vec![0u64; registry_len];
            v[i % registry_len] = 1;
            EncryptedVector::encrypt_u64_with(&encryptor, &v, &mut rng)
        })
        .collect();
    let encrypt_ms = t.elapsed().as_secs_f64() * 1e3;

    let msgs: Vec<WireMsg> = registries
        .into_iter()
        .enumerate()
        .map(|(i, registry)| WireMsg::Envelope {
            envelope: Envelope {
                from: Party::Client(i),
                to: Party::Server,
                epoch: 0,
                msg: ProtocolMsg::EncryptedRegistry {
                    client: i,
                    registry,
                },
            },
        })
        .collect();
    let t = Instant::now();
    let payloads: Vec<Vec<u8>> = msgs
        .iter()
        .map(|m| {
            CodecKind::Binary
                .encode(m)
                .expect("DBH2 encodes registries")
        })
        .collect();
    let wire_ms = t.elapsed().as_secs_f64() * 1e3;

    // Server side: the frame payload arrives owned from the socket buffer;
    // deferral consumes it without copying, and `view()` validates the
    // residue block against `n²` in place.
    let t = Instant::now();
    let frames: Vec<RegistryFrame> = payloads
        .into_iter()
        .map(|p| RegistryFrame::try_from_payload(p).expect("registry uploads defer"))
        .collect();
    for frame in &frames {
        black_box(frame.view().expect("well-formed residue block"));
    }
    let decode_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let mut fold: Option<RunningFold> = None;
    for frame in &frames {
        let view = frame.view().expect("validated above");
        match &mut fold {
            None => fold = Some(RunningFold::from_view(&view)),
            Some(f) => f.fold_view(&view).expect("same key and length"),
        }
    }
    let total = fold.expect("non-empty round").total();
    let fold_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let sums = total.decrypt_u64(sk).expect("counters fit in u64");
    let decrypt_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        sums.iter().sum::<u64>(),
        clients as u64,
        "every one-hot registry must land in the folded total"
    );

    let budget = LatencyBudget {
        clients,
        registry_len,
        key_bits: pk.bits(),
        encrypt_ms,
        wire_ms,
        decode_ms,
        fold_ms,
        decrypt_ms,
        total_ms: encrypt_ms + wire_ms + decode_ms + fold_ms + decrypt_ms,
    };
    println!(
        "\nper-round latency budget ({clients} clients x length {registry_len}, {}-bit key):",
        budget.key_bits
    );
    println!("  {:<10} {:>10} {:>7}", "stage", "ms", "share");
    for (stage, ms) in [
        ("encrypt", budget.encrypt_ms),
        ("wire", budget.wire_ms),
        ("decode", budget.decode_ms),
        ("fold", budget.fold_ms),
        ("decrypt", budget.decrypt_ms),
    ] {
        println!(
            "  {:<10} {:>10.3} {:>6.1}%",
            stage,
            ms,
            100.0 * ms / budget.total_ms
        );
    }
    println!("  {:<10} {:>10.3}", "TOTAL", budget.total_ms);
    budget
}

/// The raw-speed acceptance bar for registry encryption: the simultaneous
/// multi-exponentiation walk must beat 56 independent per-element
/// encryptions of the same `CrtEncryptor` by at least 1.5× at 1024-bit
/// keys, while producing bit-identical ciphertexts on the same randomness
/// stream (batch and per-element draw the identical exponent sequence).
fn multi_exp_acceptance() -> MultiExpRow {
    const KEY_BITS: u64 = 1024;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x517);
    println!("\nmulti-exp acceptance: generating a {KEY_BITS}-bit keypair ...");
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let crt = CrtEncryptor::new(&kp, &mut rng).expect("valid keypair");
    let mut registry = vec![0u64; 56];
    registry[10] = 1;

    // Bit-identity: same seed, both routes draw the same short exponents.
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(7);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(7);
    let batch = EncryptedVector::encrypt_u64_with(&crt, &registry, &mut rng_a);
    let per: Vec<_> = registry
        .iter()
        .map(|&m| crt.encrypt_u64(m, &mut rng_b))
        .collect();
    for (a, b) in batch.elements().iter().zip(&per) {
        assert_eq!(
            a.raw(),
            b.raw(),
            "multi-exp and per-element ciphertexts must be bit-identical"
        );
    }

    // Steady state of an epoch encryptor: the batch evaluator upgrades to
    // its 8-bit wide tables once enough cumulative volume justifies the
    // build (~512 elements). Warm past that threshold so the timed loop
    // measures the per-round cost every subsequent batch pays, with the
    // one-off table expansion amortised away — exactly the regime a
    // coordinator-side or long-lived client encryptor runs in.
    for _ in 0..10 {
        black_box(EncryptedVector::encrypt_u64_with(&crt, &registry, &mut rng));
    }

    // Best-of-N timing: the minimum over repeated runs is the standard
    // latency estimator under scheduler noise — both routes get the same
    // treatment, so the ratio is the steady-state one.
    let time_min = |f: &mut dyn FnMut()| -> f64 {
        (0..12)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let multi_exp_ms = time_min(&mut || {
        black_box(EncryptedVector::encrypt_u64_with(&crt, &registry, &mut rng));
    });
    let per_element_ms = time_min(&mut || {
        for &m in &registry {
            black_box(crt.encrypt_u64(m, &mut rng));
        }
    });
    let speedup = per_element_ms / multi_exp_ms;
    println!(
        "  registry56 per-element {per_element_ms:.2} ms, multi-exp {multi_exp_ms:.2} ms \
         ({speedup:.2}x, bit-identical)"
    );
    assert!(
        speedup >= 1.5,
        "simultaneous multi-exp must clear 1.5x over per-element encryption \
         at {KEY_BITS}-bit keys (measured {speedup:.2}x)"
    );
    MultiExpRow {
        key_bits: KEY_BITS,
        registry_len: registry.len(),
        per_element_ms,
        multi_exp_ms,
        speedup,
    }
}

/// Prints the registry-aggregation throughput next to the codec table: how
/// fast the coordinator folds client registries with the reference
/// multiply-and-divide path vs the Montgomery-domain fold (the route
/// `sum_vectors`, `CoordinatorServer` and `ShardedCoordinator` actually
/// take). The full 10²…10⁵ sweep lives in the `registry_agg` bench
/// (`results/BENCH_agg.json`); this is the at-a-glance line for the report's
/// key size.
fn aggregation_throughput(pk: &dubhe_he::PublicKey) {
    use dubhe_he::{sum_vectors, sum_vectors_serial};

    let clients = 2000usize;
    let len = 56usize;
    let registries = dubhe_bench::synthetic_registries(pk, clients, len, 0xA66);

    let t = Instant::now();
    let serial = sum_vectors_serial(&registries)
        .expect("same shape")
        .expect("non-empty");
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mont = sum_vectors(&registries)
        .expect("same shape")
        .expect("non-empty");
    let mont_s = t.elapsed().as_secs_f64();
    assert_eq!(mont, serial, "Montgomery fold must be bit-identical");

    let elems = (clients * len) as f64;
    println!(
        "\nregistry aggregation ({clients} clients x length {len}, {}-bit key):\n  \
         serial fold {:>10.0} elems/s, Montgomery-domain fold {:>10.0} elems/s ({:.2}x)",
        pk.bits(),
        elems / serial_s,
        elems / mont_s,
        serial_s / mont_s,
    );
}

/// Drives one registration epoch plus one H=3 multi-time round through the
/// actor/transport API and prints the per-message-kind metering. Returns the
/// canonical stats so the TCP run can be cross-checked against them.
fn protocol_round_trip(key_bits: u64) -> dubhe_select::TransportStats {
    println!("\nprotocol round-trip through the actor API (N = 30, K = 10, H = 3):");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 30,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed: 101,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    let dists = spec.build_partition(&mut rng).client_distributions();
    let mut config = DubheConfig::group1();
    config.k = 10;

    let t = Instant::now();
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration(&dists, &config, key_bits, &mut transport, &mut rng)
        .expect("registration epoch");
    let registration_time = t.elapsed();

    let mut selector = DubheSelector::new(&dists, config);
    let t = Instant::now();
    run.agent.expect_tries(3);
    for try_index in 0..3 {
        let tentative = dubhe_select::ClientSelector::select(&mut selector, &mut rng);
        run_try(
            try_index,
            &tentative,
            &mut run.agent,
            &mut run.clients,
            &mut run.server,
            &mut transport,
            &mut rng,
        )
        .expect("multi-time try");
    }
    let multi_time = t.elapsed();
    let (best_try, distance) = run.agent.verdict().expect("verdict issued");

    let stats = transport.stats();
    let row = |name: &str, l: &LinkStats| {
        println!(
            "  {name:<22} {:>5} messages {:>12} bytes",
            l.messages, l.bytes
        );
    };
    row("key dispatch", &stats.key_dispatches);
    row("encrypted registries", &stats.registries);
    row("total broadcasts", &stats.total_broadcasts);
    row("distributions", &stats.distributions);
    row("distribution sums", &stats.distribution_sums);
    row("verdicts", &stats.verdicts);
    row("TOTAL", &stats.total());
    println!(
        "  registration {registration_time:.2?}, multi-time {multi_time:.2?}; \
         agent verdict: try {best_try} at L1 distance {distance:.4}"
    );
    *stats
}

/// The identical session over loopback TCP against a 4-shard coordinator,
/// once per payload codec: every server-bound message crosses a real socket
/// as a length-prefixed `DBH1` (JSON), `DBH2` (canonical binary) or `DBHZ`
/// (LZSS-compressed JSON) frame. The canonical byte totals must match the
/// in-memory run exactly for all three; the measured frame bytes show what
/// each codec's framing and encoding add on top. `DBH2` is asserted to stay
/// within 1.10× of the canonical bytes — the paper's communication model —
/// where `DBH1` pays ~2.5× and `DBHZ` sits between them.
fn tcp_round_trip(key_bits: u64, in_memory: &dubhe_select::TransportStats) {
    println!("\nsame session over loopback TCP (4-shard coordinator), per wire codec:");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 30,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed: 101,
    };

    println!(
        "  {:<6} {:>8} {:>16} {:>17} {:>10} {:>10}",
        "codec", "frames", "measured (B)", "canonical (B)", "overhead", "time"
    );
    let mut overheads = Vec::new();
    for codec in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let dists = spec.build_partition(&mut rng).client_distributions();
        let mut config = DubheConfig::group1();
        config.k = 10;

        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(30, 4))
            .expect("spawn loopback listener");
        let endpoint = TcpTransport::connect_with_codec(listener.addr(), codec).expect("connect");

        let t = Instant::now();
        let mut transport = InMemoryTransport::new();
        let mut run = run_registration_with(
            &dists,
            &config,
            key_bits,
            endpoint,
            &mut transport,
            &mut rng,
        )
        .expect("registration epoch over TCP");
        let mut selector = DubheSelector::new(&dists, config);
        run.agent.expect_tries(3);
        for try_index in 0..3 {
            let tentative = dubhe_select::ClientSelector::select(&mut selector, &mut rng);
            run_try(
                try_index,
                &tentative,
                &mut run.agent,
                &mut run.clients,
                &mut run.server,
                &mut transport,
                &mut rng,
            )
            .expect("multi-time try over TCP");
        }
        let elapsed = t.elapsed();

        let canonical = transport.stats();
        assert_eq!(
            canonical,
            in_memory,
            "{} TCP session must meter the identical canonical traffic",
            codec.name()
        );
        let wire = *run.server.wire_stats();
        let canonical_total = canonical.total();
        let overhead = wire.total_bytes() as f64 / canonical_total.bytes as f64;
        println!(
            "  {:<6} {:>8} {:>16} {:>17} {:>9.2}x {:>10.2?}",
            codec.name(),
            wire.frames_sent + wire.frames_received,
            wire.total_bytes(),
            canonical_total.bytes,
            overhead,
            elapsed,
        );
        overheads.push((codec, overhead));
        run.server.shutdown().expect("polite shutdown");
        drop(listener);
    }
    let dbh2 = overheads
        .iter()
        .find(|(c, _)| *c == CodecKind::Binary)
        .map(|(_, o)| *o)
        .expect("DBH2 measured");
    assert!(
        dbh2 <= 1.10,
        "DBH2 framing overhead {dbh2:.3}x exceeds the 1.10x budget over canonical bytes"
    );
    println!(
        "  DBH2 stays within the 1.10x canonical budget (measured {dbh2:.3}x): the binary \
         codec makes measured wire traffic match the paper's communication model."
    );
}

/// Measures the epoch-lifecycle machinery at the report's key size: a
/// mid-simulation key rotation (fresh keypair + full cohort
/// re-registration), coordinator crash recovery from a snapshot, and a
/// multi-time round explicitly closed on a partial cohort after a dropout.
fn epoch_lifecycle(key_bits: u64) {
    println!("\nepoch lifecycle (N = 30, K = 10):");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 30,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed: 107,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(107);
    let dists = spec.build_partition(&mut rng).client_distributions();
    let mut config = DubheConfig::group1();
    config.k = 10;

    let mut transport = InMemoryTransport::new();
    let mut run = run_registration(&dists, &config, key_bits, &mut transport, &mut rng)
        .expect("registration epoch");

    // Key rotation: fresh keypair, new epoch, full cohort re-registration.
    let t = Instant::now();
    for e in run.agent.rotate_epoch(30, &mut rng) {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .expect("re-registration under the rotated key");
    let rotation = t.elapsed();

    // Crash recovery: serialize the live coordinator, rebuild it from the
    // bytes alone, and check the restored fold is bit-identical.
    let t = Instant::now();
    let snapshot = run.server.snapshot().expect("snapshot");
    let restored = CoordinatorServer::restore(&snapshot).expect("restore");
    let recovery = t.elapsed();
    let original = run.server.encrypted_total().expect("epoch complete");
    let recovered = restored.encrypted_total().expect("epoch complete");
    for (a, b) in original.elements().iter().zip(recovered.elements()) {
        assert_eq!(a.raw(), b.raw(), "restored fold must be bit-identical");
    }

    // Partial-cohort round: one tentative participant silently drops, the
    // try is explicitly closed on the survivors.
    let mut selector = DubheSelector::new(&dists, config);
    run.agent.expect_tries(1);
    let tentative = dubhe_select::ClientSelector::select(&mut selector, &mut rng);
    let dropped = vec![tentative[0]];
    let t = Instant::now();
    run_try_with_dropouts(
        0,
        &tentative,
        &dropped,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut transport,
        &mut rng,
    )
    .expect("partial-cohort try");
    let partial = t.elapsed();
    let outcome = *run.server.cohort_outcomes().last().expect("recorded");
    assert!(outcome.partial && outcome.contributed == tentative.len() - 1);

    println!(
        "  key rotation + re-registration : {rotation:>10.2?}  (epoch {} live)",
        run.agent.epoch()
    );
    println!(
        "  snapshot + restore             : {recovery:>10.2?}  ({} B snapshot, fold bit-identical)",
        snapshot.len()
    );
    println!(
        "  partial-cohort round (1 drop)  : {partial:>10.2?}  ({}/{} contributed, closed explicitly)",
        outcome.contributed,
        outcome.expected
    );
}

/// Runs a miniature federated training with the real encrypted exchange
/// enabled and verifies the measured ledger equals the modeled accounting.
fn encrypted_simulation(key_bits: u64) {
    println!("\nFlSimulation in encrypted mode (N = 24, 3 rounds, H = 3):");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 24,
        samples_per_client: 32,
        test_samples_per_class: 10,
        seed: 103,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(103);
    let data = spec.build_dataset(&mut rng);
    let dists = data.client_distributions();

    let run_mode = |secure: SecureMode| {
        let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
        let model = small_mlp(data.test.feature_dim(), 10, 9);
        let mut config = SimulationConfig::quick(3, 29);
        config.multi_time_h = 3;
        config.secure = secure;
        let mut sim = FlSimulation::from_datasets(
            data.client_data.clone(),
            data.test.clone(),
            model,
            selector,
            config,
        );
        let t = Instant::now();
        sim.run().expect("simulation");
        (sim.ledger().clone(), t.elapsed())
    };

    let (modeled, modeled_time) = run_mode(SecureMode::Modeled { key_bits });
    let (encrypted, encrypted_time) = run_mode(SecureMode::Encrypted {
        key_bits,
        packing: None,
    });
    let (tcp_json, json_time) = run_mode(SecureMode::EncryptedTcp {
        key_bits,
        shards: 4,
        codec: CodecKind::Json,
        listener: ListenerKind::Threaded,
        packing: None,
        channel: ChannelPolicy::Plaintext,
    });
    let (tcp_binary, binary_time) = run_mode(SecureMode::EncryptedTcp {
        key_bits,
        shards: 4,
        codec: CodecKind::Binary,
        listener: ListenerKind::Threaded,
        packing: None,
        channel: ChannelPolicy::Plaintext,
    });
    println!(
        "  modeled   : {:>12} ciphertext bytes, {:>5} overhead messages ({modeled_time:.2?})",
        modeled.total_ciphertext_bytes(),
        modeled.dubhe_overhead_messages(),
    );
    println!(
        "  encrypted : {:>12} ciphertext bytes, {:>5} overhead messages ({encrypted_time:.2?})",
        encrypted.total_ciphertext_bytes(),
        encrypted.dubhe_overhead_messages(),
    );
    for (name, tcp, time) in [
        ("tcp DBH1", &tcp_json, json_time),
        ("tcp DBH2", &tcp_binary, binary_time),
    ] {
        println!(
            "  {name:<9} : {:>12} ciphertext bytes, {:>5} overhead messages, {:>12} framed bytes ({time:.2?})",
            tcp.total_ciphertext_bytes(),
            tcp.dubhe_overhead_messages(),
            tcp.total_wire_frame_bytes(),
        );
    }
    assert_eq!(
        modeled.total_ciphertext_bytes(),
        encrypted.total_ciphertext_bytes(),
        "measured transport bytes must match the modeled ledger"
    );
    assert_eq!(
        modeled.dubhe_overhead_messages(),
        encrypted.dubhe_overhead_messages()
    );
    for tcp in [&tcp_json, &tcp_binary] {
        assert_eq!(
            tcp.total_ciphertext_bytes(),
            modeled.total_ciphertext_bytes(),
            "canonical accounting must be transport- and codec-independent"
        );
        assert_eq!(
            tcp.dubhe_overhead_messages(),
            modeled.dubhe_overhead_messages()
        );
        assert!(
            tcp.total_wire_frame_bytes() > tcp.total_ciphertext_bytes(),
            "real frames include framing and encoding overhead"
        );
    }
    assert!(
        tcp_binary.total_wire_frame_bytes() < tcp_json.total_wire_frame_bytes(),
        "DBH2 must frame the identical run in fewer bytes than DBH1"
    );
    println!(
        "  ledgers match: in-memory and TCP exchanges reproduce the modeled accounting \
         (framing adds {:.2}x under DBH1, {:.2}x under DBH2, on uplink ciphertext bytes).",
        tcp_json.total_wire_frame_bytes() as f64 / tcp_json.total_ciphertext_bytes() as f64,
        tcp_binary.total_wire_frame_bytes() as f64 / tcp_binary.total_ciphertext_bytes() as f64
    );

    // The same runs under 32-bit slot packing: identical decisions, many
    // counters per Paillier plaintext, so every ciphertext-bearing message
    // (and with it the framed wire traffic) shrinks by the lane count.
    let (packed, packed_time) = run_mode(SecureMode::Encrypted {
        key_bits,
        packing: Some(32),
    });
    let (packed_tcp, packed_tcp_time) = run_mode(SecureMode::EncryptedTcp {
        key_bits,
        shards: 4,
        codec: CodecKind::Binary,
        listener: ListenerKind::Threaded,
        packing: Some(32),
        channel: ChannelPolicy::Plaintext,
    });
    let ct_reduction =
        encrypted.total_ciphertext_bytes() as f64 / packed.total_ciphertext_bytes() as f64;
    let wire_reduction =
        tcp_binary.total_wire_frame_bytes() as f64 / packed_tcp.total_wire_frame_bytes() as f64;
    println!("\npacked (32-bit slots) vs element-wise, same seeds and identical decisions:");
    println!(
        "  {:<22} {:>16} {:>10} {:>16} {:>10} {:>10}",
        "mode", "ciphertext (B)", "reduction", "DBH2 framed (B)", "reduction", "time"
    );
    println!(
        "  {:<22} {:>16} {:>10} {:>16} {:>10} {:>10.2?}",
        "element-wise",
        encrypted.total_ciphertext_bytes(),
        "1.00x",
        tcp_binary.total_wire_frame_bytes(),
        "1.00x",
        binary_time,
    );
    println!(
        "  {:<22} {:>16} {:>9.2}x {:>16} {:>9.2}x {:>10.2?}",
        "packed",
        packed.total_ciphertext_bytes(),
        ct_reduction,
        packed_tcp.total_wire_frame_bytes(),
        wire_reduction,
        packed_time.min(packed_tcp_time),
    );
    assert_eq!(
        packed.total_ciphertext_bytes(),
        packed_tcp.total_ciphertext_bytes(),
        "packed canonical accounting must be transport-independent"
    );
    assert!(
        ct_reduction >= 4.0,
        "32-bit slot packing must shrink uplink ciphertext bytes at least 4x (got {ct_reduction:.2}x)"
    );
    assert!(
        wire_reduction > 1.0,
        "packed frames must shrink the measured wire traffic (got {wire_reduction:.2}x)"
    );
}
