//! §6.4: encryption and communication overhead.
//!
//! Measures, on this machine and this Paillier implementation, the same
//! quantities the paper reports:
//!
//! * plaintext and ciphertext sizes of a length-56 registry (group 1) and a
//!   length-53 registry / 52-class distribution (group 2);
//! * encryption and decryption latency per registry;
//! * the communication-count model (K check-ins per round, N registry
//!   transfers per registration, ~H*K multi-time transfers);
//! * the BatchCrypt-style packed alternative, quantifying how much of the
//!   element-wise overhead packing removes.
//!
//! Uses 2048-bit keys like the paper by default; pass `--key-bits 512` for a
//! quick run.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin overhead_report [-- --key-bits 512]
//! ```

use dubhe_he::packing::Packer;
use dubhe_he::transport::{measure_packed, measure_vector, CommunicationCount};
use dubhe_he::{EncryptedVector, FixedPointCodec, Keypair};
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct OverheadRow {
    object: String,
    length: usize,
    plaintext_bytes: usize,
    ciphertext_bytes: usize,
    expansion: f64,
    encrypt_ms: f64,
    decrypt_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let key_bits: u64 = args
        .iter()
        .position(|a| a == "--key-bits")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2048);

    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    println!("generating a {key_bits}-bit Paillier keypair ...");
    let t = Instant::now();
    let keypair = Keypair::generate(key_bits, &mut rng);
    println!("keygen: {:.2?}\n", t.elapsed());
    let (pk, sk) = keypair.split();

    let mut rows = Vec::new();
    let mut measure = |object: &str, values: &[u64]| {
        let t = Instant::now();
        let enc = EncryptedVector::encrypt_u64(&pk, values, &mut rng);
        let encrypt_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let dec = enc.decrypt_u64(&sk);
        let decrypt_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(dec, values, "round trip must be lossless");
        let size = measure_vector(&enc);
        rows.push(OverheadRow {
            object: object.to_string(),
            length: values.len(),
            plaintext_bytes: size.plaintext_bytes,
            ciphertext_bytes: size.ciphertext_bytes,
            expansion: size.expansion_factor(),
            encrypt_ms,
            decrypt_ms,
        });
    };

    // Group-1 registry (length 56) and group-2 registry (length 53), one-hot.
    let mut registry56 = vec![0u64; 56];
    registry56[10] = 1;
    measure("registry G={1,2,10} (l=56)", &registry56);
    let mut registry53 = vec![0u64; 53];
    registry53[17] = 1;
    measure("registry G={1,52} (l=53)", &registry53);

    // Encrypted label distribution p_l over 52 classes (multi-time selection).
    let codec = FixedPointCodec::default();
    let p_l: Vec<f64> = (0..52).map(|i| if i == 3 { 0.49 } else { 0.01 }).collect();
    measure("distribution p_l (C=52)", &codec.encode_vec(&p_l));

    println!(
        "{:<28} {:>4} {:>12} {:>13} {:>9} {:>11} {:>11}",
        "object", "len", "plain (B)", "cipher (B)", "expand", "encrypt ms", "decrypt ms"
    );
    for r in &rows {
        println!(
            "{:<28} {:>4} {:>12} {:>13} {:>8.1}x {:>11.2} {:>11.2}",
            r.object,
            r.length,
            r.plaintext_bytes,
            r.ciphertext_bytes,
            r.expansion,
            r.encrypt_ms,
            r.decrypt_ms
        );
    }
    println!(
        "\nPaper reference (python-paillier, 2048-bit): 0.47-0.49 KB plaintexts expand to \
         29.6-31.28 KB; encryption 6.9 s / decryption 1.9 s per registry. Our native \
         implementation is faster in absolute terms; the expansion factor and the \
         negligible-versus-training conclusion are what must match."
    );

    // Packed (BatchCrypt-style) alternative.
    let packer = Packer::new(32, key_bits);
    let packed = packer
        .encrypt(&pk, &registry56, &mut rng)
        .expect("packing fits");
    let packed_size = measure_packed(&packed);
    println!(
        "\npacked registry (32-bit slots): {} ciphertexts, {} B ({:.1}% of the element-wise payload)",
        packed.ciphertext_count(),
        packed_size.ciphertext_bytes,
        100.0 * packed_size.ciphertext_bytes as f64 / rows[0].ciphertext_bytes as f64
    );

    // Communication-count model (paper §6.4).
    println!("\ncommunication counts per round (K = 20, N = 1000, H = 10):");
    let plain = CommunicationCount::per_round(20, 1000, 1, false);
    let registration = CommunicationCount::per_round(20, 1000, 1, true);
    let multi = CommunicationCount::per_round(20, 1000, 10, false);
    println!("  classic FL round          : {} messages", plain.total());
    println!(
        "  + registration epoch      : {} messages",
        registration.total()
    );
    println!("  + multi-time selection    : {} messages", multi.total());

    dubhe_bench::dump_json("overhead_report", &rows);
}
