//! §6.4: encryption and communication overhead.
//!
//! Measures, on this machine and this Paillier implementation, the same
//! quantities the paper reports:
//!
//! * plaintext and ciphertext sizes of a length-56 registry (group 1) and a
//!   length-53 registry / 52-class distribution (group 2);
//! * encryption and decryption latency per registry;
//! * the communication-count model (K check-ins per round, N registry
//!   transfers per registration, ~H*K multi-time transfers);
//! * the BatchCrypt-style packed alternative, quantifying how much of the
//!   element-wise overhead packing removes;
//! * a full protocol round-trip through the role-separated actor API
//!   (registration + one multi-time round), with per-message-kind transport
//!   metering;
//! * an end-to-end `FlSimulation` in encrypted mode, cross-checked against
//!   the modeled ledger accounting.
//!
//! Uses 2048-bit keys like the paper by default; pass `--key-bits 512` for a
//! quick run.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin overhead_report [-- --key-bits 512]
//! ```

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_fl::models::small_mlp;
use dubhe_fl::{FlSimulation, ListenerKind, SecureMode, SimulationConfig};
use dubhe_he::packing::Packer;
use dubhe_he::transport::{measure_packed, measure_vector, CommunicationCount};
use dubhe_he::{EncryptedVector, FixedPointCodec, Keypair};
use dubhe_select::protocol::{
    pump, run_registration, run_registration_with, run_try, run_try_with_dropouts, CodecKind,
    CoordinatorListener, CoordinatorServer, InMemoryTransport, LinkStats, ShardedCoordinator,
    TcpTransport, Transport,
};
use dubhe_select::{DubheConfig, DubheSelector};
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct OverheadRow {
    object: String,
    length: usize,
    plaintext_bytes: usize,
    ciphertext_bytes: usize,
    expansion: f64,
    encrypt_ms: f64,
    decrypt_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let key_bits: u64 = args
        .iter()
        .position(|a| a == "--key-bits")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2048);

    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    println!("generating a {key_bits}-bit Paillier keypair ...");
    let t = Instant::now();
    let keypair = Keypair::generate(key_bits, &mut rng);
    println!("keygen: {:.2?}\n", t.elapsed());
    let (pk, sk) = keypair.split();

    let mut rows = Vec::new();
    let mut measure = |object: &str, values: &[u64]| {
        let t = Instant::now();
        let enc = EncryptedVector::encrypt_u64(&pk, values, &mut rng);
        let encrypt_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let dec = enc.decrypt_u64(&sk).expect("registry counters fit in u64");
        let decrypt_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(dec, values, "round trip must be lossless");
        let size = measure_vector(&enc);
        rows.push(OverheadRow {
            object: object.to_string(),
            length: values.len(),
            plaintext_bytes: size.plaintext_bytes,
            ciphertext_bytes: size.ciphertext_bytes,
            expansion: size.expansion_factor(),
            encrypt_ms,
            decrypt_ms,
        });
    };

    // Group-1 registry (length 56) and group-2 registry (length 53), one-hot.
    let mut registry56 = vec![0u64; 56];
    registry56[10] = 1;
    measure("registry G={1,2,10} (l=56)", &registry56);
    let mut registry53 = vec![0u64; 53];
    registry53[17] = 1;
    measure("registry G={1,52} (l=53)", &registry53);

    // Encrypted label distribution p_l over 52 classes (multi-time selection).
    let codec = FixedPointCodec::default();
    let p_l: Vec<f64> = (0..52).map(|i| if i == 3 { 0.49 } else { 0.01 }).collect();
    measure("distribution p_l (C=52)", &codec.encode_vec(&p_l));

    println!(
        "{:<28} {:>4} {:>12} {:>13} {:>9} {:>11} {:>11}",
        "object", "len", "plain (B)", "cipher (B)", "expand", "encrypt ms", "decrypt ms"
    );
    for r in &rows {
        println!(
            "{:<28} {:>4} {:>12} {:>13} {:>8.1}x {:>11.2} {:>11.2}",
            r.object,
            r.length,
            r.plaintext_bytes,
            r.ciphertext_bytes,
            r.expansion,
            r.encrypt_ms,
            r.decrypt_ms
        );
    }
    println!(
        "\nPaper reference (python-paillier, 2048-bit): 0.47-0.49 KB plaintexts expand to \
         29.6-31.28 KB; encryption 6.9 s / decryption 1.9 s per registry. Our native \
         implementation is faster in absolute terms; the expansion factor and the \
         negligible-versus-training conclusion are what must match."
    );

    // Packed (BatchCrypt-style) alternative.
    let packer = Packer::new(32, key_bits);
    let packed = packer
        .encrypt(&pk, &registry56, &mut rng)
        .expect("packing fits");
    let packed_size = measure_packed(&packed);
    println!(
        "\npacked registry (32-bit slots): {} ciphertexts, {} B ({:.1}% of the element-wise payload)",
        packed.ciphertext_count(),
        packed_size.ciphertext_bytes,
        100.0 * packed_size.ciphertext_bytes as f64 / rows[0].ciphertext_bytes as f64
    );

    // Communication-count model (paper §6.4).
    println!("\ncommunication counts per round (K = 20, N = 1000, H = 10):");
    let plain = CommunicationCount::per_round(20, 1000, 1, false);
    let registration = CommunicationCount::per_round(20, 1000, 1, true);
    let multi = CommunicationCount::per_round(20, 1000, 10, false);
    println!("  classic FL round          : {} messages", plain.total());
    println!(
        "  + registration epoch      : {} messages",
        registration.total()
    );
    println!("  + multi-time selection    : {} messages", multi.total());

    let in_memory_stats = protocol_round_trip(key_bits);
    tcp_round_trip(key_bits, &in_memory_stats);
    aggregation_throughput(&pk);
    epoch_lifecycle(key_bits);
    encrypted_simulation(key_bits);

    dubhe_bench::dump_json("overhead_report", &rows);
}

/// Prints the registry-aggregation throughput next to the codec table: how
/// fast the coordinator folds client registries with the reference
/// multiply-and-divide path vs the Montgomery-domain fold (the route
/// `sum_vectors`, `CoordinatorServer` and `ShardedCoordinator` actually
/// take). The full 10²…10⁵ sweep lives in the `registry_agg` bench
/// (`results/BENCH_agg.json`); this is the at-a-glance line for the report's
/// key size.
fn aggregation_throughput(pk: &dubhe_he::PublicKey) {
    use dubhe_he::{sum_vectors, sum_vectors_serial};

    let clients = 2000usize;
    let len = 56usize;
    let registries = dubhe_bench::synthetic_registries(pk, clients, len, 0xA66);

    let t = Instant::now();
    let serial = sum_vectors_serial(&registries)
        .expect("same shape")
        .expect("non-empty");
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mont = sum_vectors(&registries)
        .expect("same shape")
        .expect("non-empty");
    let mont_s = t.elapsed().as_secs_f64();
    assert_eq!(mont, serial, "Montgomery fold must be bit-identical");

    let elems = (clients * len) as f64;
    println!(
        "\nregistry aggregation ({clients} clients x length {len}, {}-bit key):\n  \
         serial fold {:>10.0} elems/s, Montgomery-domain fold {:>10.0} elems/s ({:.2}x)",
        pk.bits(),
        elems / serial_s,
        elems / mont_s,
        serial_s / mont_s,
    );
}

/// Drives one registration epoch plus one H=3 multi-time round through the
/// actor/transport API and prints the per-message-kind metering. Returns the
/// canonical stats so the TCP run can be cross-checked against them.
fn protocol_round_trip(key_bits: u64) -> dubhe_select::TransportStats {
    println!("\nprotocol round-trip through the actor API (N = 30, K = 10, H = 3):");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 30,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed: 101,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    let dists = spec.build_partition(&mut rng).client_distributions();
    let mut config = DubheConfig::group1();
    config.k = 10;

    let t = Instant::now();
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration(&dists, &config, key_bits, &mut transport, &mut rng)
        .expect("registration epoch");
    let registration_time = t.elapsed();

    let mut selector = DubheSelector::new(&dists, config);
    let t = Instant::now();
    run.agent.expect_tries(3);
    for try_index in 0..3 {
        let tentative = dubhe_select::ClientSelector::select(&mut selector, &mut rng);
        run_try(
            try_index,
            &tentative,
            &mut run.agent,
            &mut run.clients,
            &mut run.server,
            &mut transport,
            &mut rng,
        )
        .expect("multi-time try");
    }
    let multi_time = t.elapsed();
    let (best_try, distance) = run.agent.verdict().expect("verdict issued");

    let stats = transport.stats();
    let row = |name: &str, l: &LinkStats| {
        println!(
            "  {name:<22} {:>5} messages {:>12} bytes",
            l.messages, l.bytes
        );
    };
    row("key dispatch", &stats.key_dispatches);
    row("encrypted registries", &stats.registries);
    row("total broadcasts", &stats.total_broadcasts);
    row("distributions", &stats.distributions);
    row("distribution sums", &stats.distribution_sums);
    row("verdicts", &stats.verdicts);
    row("TOTAL", &stats.total());
    println!(
        "  registration {registration_time:.2?}, multi-time {multi_time:.2?}; \
         agent verdict: try {best_try} at L1 distance {distance:.4}"
    );
    *stats
}

/// The identical session over loopback TCP against a 4-shard coordinator,
/// once per payload codec: every server-bound message crosses a real socket
/// as a length-prefixed `DBH1` (JSON) or `DBH2` (canonical binary) frame.
/// The canonical byte totals must match the in-memory run exactly for both;
/// the measured frame bytes show what each codec's framing and encoding add
/// on top. `DBH2` is asserted to stay within 1.10× of the canonical bytes —
/// the paper's communication model — where `DBH1` pays ~2.5×.
fn tcp_round_trip(key_bits: u64, in_memory: &dubhe_select::TransportStats) {
    println!("\nsame session over loopback TCP (4-shard coordinator), per wire codec:");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 30,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed: 101,
    };

    println!(
        "  {:<6} {:>8} {:>16} {:>17} {:>10} {:>10}",
        "codec", "frames", "measured (B)", "canonical (B)", "overhead", "time"
    );
    let mut overheads = Vec::new();
    for codec in [CodecKind::Json, CodecKind::Binary] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let dists = spec.build_partition(&mut rng).client_distributions();
        let mut config = DubheConfig::group1();
        config.k = 10;

        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(30, 4))
            .expect("spawn loopback listener");
        let endpoint = TcpTransport::connect_with_codec(listener.addr(), codec).expect("connect");

        let t = Instant::now();
        let mut transport = InMemoryTransport::new();
        let mut run = run_registration_with(
            &dists,
            &config,
            key_bits,
            endpoint,
            &mut transport,
            &mut rng,
        )
        .expect("registration epoch over TCP");
        let mut selector = DubheSelector::new(&dists, config);
        run.agent.expect_tries(3);
        for try_index in 0..3 {
            let tentative = dubhe_select::ClientSelector::select(&mut selector, &mut rng);
            run_try(
                try_index,
                &tentative,
                &mut run.agent,
                &mut run.clients,
                &mut run.server,
                &mut transport,
                &mut rng,
            )
            .expect("multi-time try over TCP");
        }
        let elapsed = t.elapsed();

        let canonical = transport.stats();
        assert_eq!(
            canonical,
            in_memory,
            "{} TCP session must meter the identical canonical traffic",
            codec.name()
        );
        let wire = *run.server.wire_stats();
        let canonical_total = canonical.total();
        let overhead = wire.total_bytes() as f64 / canonical_total.bytes as f64;
        println!(
            "  {:<6} {:>8} {:>16} {:>17} {:>9.2}x {:>10.2?}",
            codec.name(),
            wire.frames_sent + wire.frames_received,
            wire.total_bytes(),
            canonical_total.bytes,
            overhead,
            elapsed,
        );
        overheads.push((codec, overhead));
        run.server.shutdown().expect("polite shutdown");
        drop(listener);
    }
    let dbh2 = overheads
        .iter()
        .find(|(c, _)| *c == CodecKind::Binary)
        .map(|(_, o)| *o)
        .expect("DBH2 measured");
    assert!(
        dbh2 <= 1.10,
        "DBH2 framing overhead {dbh2:.3}x exceeds the 1.10x budget over canonical bytes"
    );
    println!(
        "  DBH2 stays within the 1.10x canonical budget (measured {dbh2:.3}x): the binary \
         codec makes measured wire traffic match the paper's communication model."
    );
}

/// Measures the epoch-lifecycle machinery at the report's key size: a
/// mid-simulation key rotation (fresh keypair + full cohort
/// re-registration), coordinator crash recovery from a snapshot, and a
/// multi-time round explicitly closed on a partial cohort after a dropout.
fn epoch_lifecycle(key_bits: u64) {
    println!("\nepoch lifecycle (N = 30, K = 10):");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 30,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed: 107,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(107);
    let dists = spec.build_partition(&mut rng).client_distributions();
    let mut config = DubheConfig::group1();
    config.k = 10;

    let mut transport = InMemoryTransport::new();
    let mut run = run_registration(&dists, &config, key_bits, &mut transport, &mut rng)
        .expect("registration epoch");

    // Key rotation: fresh keypair, new epoch, full cohort re-registration.
    let t = Instant::now();
    for e in run.agent.rotate_epoch(30, &mut rng) {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .expect("re-registration under the rotated key");
    let rotation = t.elapsed();

    // Crash recovery: serialize the live coordinator, rebuild it from the
    // bytes alone, and check the restored fold is bit-identical.
    let t = Instant::now();
    let snapshot = run.server.snapshot().expect("snapshot");
    let restored = CoordinatorServer::restore(&snapshot).expect("restore");
    let recovery = t.elapsed();
    let original = run.server.encrypted_total().expect("epoch complete");
    let recovered = restored.encrypted_total().expect("epoch complete");
    for (a, b) in original.elements().iter().zip(recovered.elements()) {
        assert_eq!(a.raw(), b.raw(), "restored fold must be bit-identical");
    }

    // Partial-cohort round: one tentative participant silently drops, the
    // try is explicitly closed on the survivors.
    let mut selector = DubheSelector::new(&dists, config);
    run.agent.expect_tries(1);
    let tentative = dubhe_select::ClientSelector::select(&mut selector, &mut rng);
    let dropped = vec![tentative[0]];
    let t = Instant::now();
    run_try_with_dropouts(
        0,
        &tentative,
        &dropped,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut transport,
        &mut rng,
    )
    .expect("partial-cohort try");
    let partial = t.elapsed();
    let outcome = *run.server.cohort_outcomes().last().expect("recorded");
    assert!(outcome.partial && outcome.contributed == tentative.len() - 1);

    println!(
        "  key rotation + re-registration : {rotation:>10.2?}  (epoch {} live)",
        run.agent.epoch()
    );
    println!(
        "  snapshot + restore             : {recovery:>10.2?}  ({} B snapshot, fold bit-identical)",
        snapshot.len()
    );
    println!(
        "  partial-cohort round (1 drop)  : {partial:>10.2?}  ({}/{} contributed, closed explicitly)",
        outcome.contributed,
        outcome.expected
    );
}

/// Runs a miniature federated training with the real encrypted exchange
/// enabled and verifies the measured ledger equals the modeled accounting.
fn encrypted_simulation(key_bits: u64) {
    println!("\nFlSimulation in encrypted mode (N = 24, 3 rounds, H = 3):");
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 24,
        samples_per_client: 32,
        test_samples_per_class: 10,
        seed: 103,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(103);
    let data = spec.build_dataset(&mut rng);
    let dists = data.client_distributions();

    let run_mode = |secure: SecureMode| {
        let selector = Box::new(DubheSelector::new(&dists, DubheConfig::group1()));
        let model = small_mlp(data.test.feature_dim(), 10, 9);
        let mut config = SimulationConfig::quick(3, 29);
        config.multi_time_h = 3;
        config.secure = secure;
        let mut sim = FlSimulation::from_datasets(
            data.client_data.clone(),
            data.test.clone(),
            model,
            selector,
            config,
        );
        let t = Instant::now();
        sim.run().expect("simulation");
        (sim.ledger().clone(), t.elapsed())
    };

    let (modeled, modeled_time) = run_mode(SecureMode::Modeled { key_bits });
    let (encrypted, encrypted_time) = run_mode(SecureMode::Encrypted {
        key_bits,
        packing: None,
    });
    let (tcp_json, json_time) = run_mode(SecureMode::EncryptedTcp {
        key_bits,
        shards: 4,
        codec: CodecKind::Json,
        listener: ListenerKind::Threaded,
        packing: None,
    });
    let (tcp_binary, binary_time) = run_mode(SecureMode::EncryptedTcp {
        key_bits,
        shards: 4,
        codec: CodecKind::Binary,
        listener: ListenerKind::Threaded,
        packing: None,
    });
    println!(
        "  modeled   : {:>12} ciphertext bytes, {:>5} overhead messages ({modeled_time:.2?})",
        modeled.total_ciphertext_bytes(),
        modeled.dubhe_overhead_messages(),
    );
    println!(
        "  encrypted : {:>12} ciphertext bytes, {:>5} overhead messages ({encrypted_time:.2?})",
        encrypted.total_ciphertext_bytes(),
        encrypted.dubhe_overhead_messages(),
    );
    for (name, tcp, time) in [
        ("tcp DBH1", &tcp_json, json_time),
        ("tcp DBH2", &tcp_binary, binary_time),
    ] {
        println!(
            "  {name:<9} : {:>12} ciphertext bytes, {:>5} overhead messages, {:>12} framed bytes ({time:.2?})",
            tcp.total_ciphertext_bytes(),
            tcp.dubhe_overhead_messages(),
            tcp.total_wire_frame_bytes(),
        );
    }
    assert_eq!(
        modeled.total_ciphertext_bytes(),
        encrypted.total_ciphertext_bytes(),
        "measured transport bytes must match the modeled ledger"
    );
    assert_eq!(
        modeled.dubhe_overhead_messages(),
        encrypted.dubhe_overhead_messages()
    );
    for tcp in [&tcp_json, &tcp_binary] {
        assert_eq!(
            tcp.total_ciphertext_bytes(),
            modeled.total_ciphertext_bytes(),
            "canonical accounting must be transport- and codec-independent"
        );
        assert_eq!(
            tcp.dubhe_overhead_messages(),
            modeled.dubhe_overhead_messages()
        );
        assert!(
            tcp.total_wire_frame_bytes() > tcp.total_ciphertext_bytes(),
            "real frames include framing and encoding overhead"
        );
    }
    assert!(
        tcp_binary.total_wire_frame_bytes() < tcp_json.total_wire_frame_bytes(),
        "DBH2 must frame the identical run in fewer bytes than DBH1"
    );
    println!(
        "  ledgers match: in-memory and TCP exchanges reproduce the modeled accounting \
         (framing adds {:.2}x under DBH1, {:.2}x under DBH2, on uplink ciphertext bytes).",
        tcp_json.total_wire_frame_bytes() as f64 / tcp_json.total_ciphertext_bytes() as f64,
        tcp_binary.total_wire_frame_bytes() as f64 / tcp_binary.total_ciphertext_bytes() as f64
    );

    // The same runs under 32-bit slot packing: identical decisions, many
    // counters per Paillier plaintext, so every ciphertext-bearing message
    // (and with it the framed wire traffic) shrinks by the lane count.
    let (packed, packed_time) = run_mode(SecureMode::Encrypted {
        key_bits,
        packing: Some(32),
    });
    let (packed_tcp, packed_tcp_time) = run_mode(SecureMode::EncryptedTcp {
        key_bits,
        shards: 4,
        codec: CodecKind::Binary,
        listener: ListenerKind::Threaded,
        packing: Some(32),
    });
    let ct_reduction =
        encrypted.total_ciphertext_bytes() as f64 / packed.total_ciphertext_bytes() as f64;
    let wire_reduction =
        tcp_binary.total_wire_frame_bytes() as f64 / packed_tcp.total_wire_frame_bytes() as f64;
    println!("\npacked (32-bit slots) vs element-wise, same seeds and identical decisions:");
    println!(
        "  {:<22} {:>16} {:>10} {:>16} {:>10} {:>10}",
        "mode", "ciphertext (B)", "reduction", "DBH2 framed (B)", "reduction", "time"
    );
    println!(
        "  {:<22} {:>16} {:>10} {:>16} {:>10} {:>10.2?}",
        "element-wise",
        encrypted.total_ciphertext_bytes(),
        "1.00x",
        tcp_binary.total_wire_frame_bytes(),
        "1.00x",
        binary_time,
    );
    println!(
        "  {:<22} {:>16} {:>9.2}x {:>16} {:>9.2}x {:>10.2?}",
        "packed",
        packed.total_ciphertext_bytes(),
        ct_reduction,
        packed_tcp.total_wire_frame_bytes(),
        wire_reduction,
        packed_time.min(packed_tcp_time),
    );
    assert_eq!(
        packed.total_ciphertext_bytes(),
        packed_tcp.total_ciphertext_bytes(),
        "packed canonical accounting must be transport-independent"
    );
    assert!(
        ct_reduction >= 4.0,
        "32-bit slot packing must shrink uplink ciphertext bytes at least 4x (got {ct_reduction:.2}x)"
    );
    assert!(
        wire_reduction > 1.0,
        "packed frames must shrink the measured wire traffic (got {wire_reduction:.2}x)"
    );
}
