//! Table 2: multi-time selection — EMD* = ||p_o,h* - p_u||_1 and the accuracy
//! improvement for H in {1, 2, 5, 10, 20}, with the greedy selection as the
//! "opt" (100%) reference.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin table2_multitime [-- --full]
//! ```

use dubhe_bench::{dubhe_config_for, run_training, scaled_spec, ExperimentArgs, Method};
use dubhe_data::federated::DatasetFamily;
use dubhe_select::{multi_time_select, DubheSelector};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    h: usize,
    emd_star: f64,
    acc_mnist: f64,
    beta_mnist: f64,
    acc_cifar: f64,
    beta_cifar: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    let hs = [1usize, 2, 5, 10, 20];
    let (rounds, eval_every) = if args.full { (200, 10) } else { (25, 5) };
    let emd_repetitions = if args.full { 100 } else { 40 };

    // --- EMD* column: selection-only at N = 1000 on the rho=10 / EMD=1.5 data.
    let spec_sel = dubhe_data::federated::FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: 1000,
        samples_per_client: 128,
        test_samples_per_class: 1,
        seed: args.seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec_sel.seed);
    let dists = spec_sel.build_partition(&mut rng).client_distributions();
    let config = dubhe_config_for(DatasetFamily::MnistLike);

    let emd_star_for = |h: usize, rng: &mut rand::rngs::StdRng| -> f64 {
        let mut total = 0.0;
        for _ in 0..emd_repetitions {
            let mut selector = DubheSelector::new(&dists, config.clone());
            total += multi_time_select(&mut selector, &dists, h, rng)
                .expect("Dubhe selection is never empty")
                .best_distance;
        }
        total / emd_repetitions as f64
    };

    // --- Accuracy columns: short federated runs on the two group-1 families.
    let accuracy_for = |family: DatasetFamily, h: usize| -> f64 {
        let spec = scaled_spec(family, 10.0, 1.5, args.full, args.seed);
        run_training(&spec, Method::Dubhe, rounds, eval_every, h, args.seed)
            .average_accuracy_last(5)
            .unwrap_or(0.0)
    };
    let greedy_accuracy = |family: DatasetFamily| -> f64 {
        let spec = scaled_spec(family, 10.0, 1.5, args.full, args.seed);
        run_training(&spec, Method::Greedy, rounds, eval_every, 1, args.seed)
            .average_accuracy_last(5)
            .unwrap_or(0.0)
    };

    println!("Table 2: multi-time selection (M = MNIST-like, C = CIFAR10-like)");
    let acc_m_base = accuracy_for(DatasetFamily::MnistLike, 1);
    let acc_c_base = accuracy_for(DatasetFamily::CifarLike, 1);
    let opt_m = greedy_accuracy(DatasetFamily::MnistLike);
    let opt_c = greedy_accuracy(DatasetFamily::CifarLike);

    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "H", "EMD*", "Acc_M", "beta_M", "Acc_C", "beta_C"
    );
    let beta = |acc: f64, base: f64, opt: f64| -> f64 {
        if (opt - base).abs() < 1e-9 {
            0.0
        } else {
            100.0 * (acc - base) / (opt - base)
        }
    };

    let mut rows = Vec::new();
    for &h in &hs {
        let emd_star = emd_star_for(h, &mut rng);
        let (acc_m, acc_c) = if h == 1 {
            (acc_m_base, acc_c_base)
        } else {
            (
                accuracy_for(DatasetFamily::MnistLike, h),
                accuracy_for(DatasetFamily::CifarLike, h),
            )
        };
        let row = Row {
            h,
            emd_star,
            acc_mnist: acc_m,
            beta_mnist: beta(acc_m, acc_m_base, opt_m),
            acc_cifar: acc_c,
            beta_cifar: beta(acc_c, acc_c_base, opt_c),
        };
        println!(
            "{:>4} {:>10.4} {:>10.4} {:>9.1}% {:>10.4} {:>9.1}%",
            row.h, row.emd_star, row.acc_mnist, row.beta_mnist, row.acc_cifar, row.beta_cifar
        );
        rows.push(row);
    }
    println!(
        "{:>4} {:>10} {:>10.4} {:>9.1}% {:>10.4} {:>9.1}%",
        "opt", "-", opt_m, 100.0, opt_c, 100.0
    );
    println!(
        "\nExpected shape: EMD* decreases monotonically with H (paper: 0.295 at H=1 down to \
         0.175 at H=20) and the accuracy improvement beta grows with H, though not strictly \
         monotonically because of selection randomness."
    );
    dubhe_bench::dump_json("table2_multitime", &rows);
}
