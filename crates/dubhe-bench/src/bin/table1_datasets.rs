//! Table 1: the datasets used in the experiments.
//!
//! Regenerates the dataset inventory — for every (family, rho, EMD_avg)
//! combination the paper lists, build the federation and report the *achieved*
//! imbalance ratio, achieved EMD_avg and client count, confirming the
//! generators hit the targets.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin table1_datasets [-- --full]
//! ```

use dubhe_bench::{scaled_spec, ExperimentArgs};
use dubhe_data::federated::DatasetFamily;
use dubhe_data::partition::average_emd;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    target_rho: f64,
    achieved_rho: f64,
    target_emd: f64,
    achieved_emd: f64,
    clients: usize,
}

fn main() {
    let args = ExperimentArgs::parse();
    println!("Table 1: datasets used in the experiments (targets vs achieved)");
    println!(
        "{:<22} {:>10} {:>13} {:>10} {:>13} {:>8}",
        "dataset", "rho", "rho(achieved)", "EMD", "EMD(achieved)", "N"
    );

    let mut rows = Vec::new();
    // Group 1: MNIST / CIFAR10 series with rho x EMD grids.
    for family in [DatasetFamily::MnistLike, DatasetFamily::CifarLike] {
        for &rho in &[10.0, 5.0, 2.0, 1.0] {
            for &emd in &[0.0, 0.5, 1.0, 1.5] {
                let spec = scaled_spec(family, rho, emd, args.full, args.seed);
                let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
                let fp = spec.build_partition(&mut rng);
                let achieved_emd = average_emd(fp.clients(), &fp.global);
                let row = Row {
                    dataset: spec.name(),
                    target_rho: rho,
                    achieved_rho: fp.global.imbalance_ratio(),
                    target_emd: emd,
                    achieved_emd,
                    clients: fp.num_clients(),
                };
                println!(
                    "{:<22} {:>10.2} {:>13.2} {:>10.2} {:>13.3} {:>8}",
                    row.dataset,
                    row.target_rho,
                    row.achieved_rho,
                    row.target_emd,
                    row.achieved_emd,
                    row.clients
                );
                rows.push(row);
            }
        }
    }
    // Group 2: FEMNIST.
    let spec = scaled_spec(
        DatasetFamily::FemnistLike,
        13.64,
        0.554,
        args.full,
        args.seed,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let fp = spec.build_partition(&mut rng);
    let row = Row {
        dataset: spec.name(),
        target_rho: 13.64,
        achieved_rho: fp.global.imbalance_ratio(),
        target_emd: 0.554,
        achieved_emd: average_emd(fp.clients(), &fp.global),
        clients: fp.num_clients(),
    };
    println!(
        "{:<22} {:>10.2} {:>13.2} {:>10.2} {:>13.3} {:>8}",
        row.dataset,
        row.target_rho,
        row.achieved_rho,
        row.target_emd,
        row.achieved_emd,
        row.clients
    );
    rows.push(row);

    dubhe_bench::dump_json("table1_datasets", &rows);
}
