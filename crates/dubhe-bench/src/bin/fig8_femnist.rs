//! Figure 8: FEMNIST — accuracy curves of the three selection methods plus the
//! population class proportion of one random round (52 classes).
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin fig8_femnist [-- --full]
//! ```

use dubhe_bench::{print_series, run_training, scaled_spec, ExperimentArgs, Method};
use dubhe_data::federated::DatasetFamily;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Result {
    method: String,
    accuracy_curve: Vec<f64>,
    final_accuracy: f64,
    population_proportion_one_round: Vec<f64>,
}

fn main() {
    let args = ExperimentArgs::parse();
    // The paper trains FEMNIST for 1500 rounds with E = 5; the quick run keeps
    // the same structure at a fraction of the length.
    let (rounds, eval_every) = if args.full { (1500, 25) } else { (30, 5) };
    let spec = scaled_spec(
        DatasetFamily::FemnistLike,
        13.64,
        0.554,
        args.full,
        args.seed,
    );
    println!(
        "Fig. 8: {} with {} clients, K = 20",
        spec.name(),
        spec.clients
    );

    let mut results = Vec::new();
    for method in Method::all() {
        let history = run_training(&spec, method, rounds, eval_every, 1, args.seed);
        let acc: Vec<f64> = history.accuracy_curve().iter().map(|(_, a)| *a).collect();
        print_series(&format!("{} accuracy", method.name()), &acc);
        let final_acc = history.average_accuracy_last(5).unwrap_or(0.0);
        // Population class proportion of one (the last) round — the right-hand
        // panel of Fig. 8.
        let one_round = history
            .rounds
            .last()
            .unwrap()
            .population_distribution
            .clone();
        println!(
            "  final accuracy {:.3}; population proportion of one round: min {:.4} max {:.4} (uniform would be {:.4})",
            final_acc,
            one_round.iter().cloned().fold(f64::INFINITY, f64::min),
            one_round.iter().cloned().fold(0.0, f64::max),
            1.0 / 52.0
        );
        results.push(Fig8Result {
            method: method.name().to_string(),
            accuracy_curve: acc,
            final_accuracy: final_acc,
            population_proportion_one_round: one_round,
        });
    }

    println!(
        "\nPaper reference: Random 31.0%, Dubhe 36.4%, Greedy 37.4% test accuracy; the \
         population proportion under Random follows the skewed global distribution while \
         Dubhe's approaches the greedy selection's flatter profile."
    );
    dubhe_bench::dump_json("fig8_femnist", &results);
}
