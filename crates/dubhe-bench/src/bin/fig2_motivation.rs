//! Figure 2: the motivation experiments.
//!
//! * part (a): random selection under global skew rho in {1, 2, 5, 10}
//!   (EMD_avg = 1) — accuracy degrades as rho grows, and the expected
//!   participated class proportion follows the skewed global distribution.
//! * part (b): random selection under client discrepancy EMD_avg in
//!   {0, 0.5, 1.0, 1.5} (rho = 10) — larger discrepancy means larger deviation
//!   of the participated proportion and more fluctuation.
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin fig2_motivation [-- --part a|b] [--full]
//! ```

use dubhe_bench::{print_series, run_training, scaled_spec, ExperimentArgs, Method};
use dubhe_data::federated::DatasetFamily;
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    label: String,
    accuracy: Vec<f64>,
    mean_participated_proportion: Vec<f64>,
    proportion_std: Vec<f64>,
}

fn participated_proportion_stats(history: &dubhe_fl::History) -> (Vec<f64>, Vec<f64>) {
    let classes = history.rounds[0].population_distribution.len();
    let mut mean = vec![0.0; classes];
    for r in &history.rounds {
        for (m, v) in mean.iter_mut().zip(&r.population_distribution) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= history.rounds.len() as f64;
    }
    let mut std = vec![0.0; classes];
    for r in &history.rounds {
        for ((s, v), m) in std.iter_mut().zip(&r.population_distribution).zip(&mean) {
            *s += (v - m).powi(2);
        }
    }
    for s in &mut std {
        *s = (*s / history.rounds.len() as f64).sqrt();
    }
    (mean, std)
}

fn main() {
    let args = ExperimentArgs::parse();
    let rounds = if args.full { 300 } else { 40 };
    let eval_every = if args.full { 10 } else { 5 };
    let part = args.part.clone().unwrap_or_else(|| "both".to_string());
    let mut curves = Vec::new();

    if part == "a" || part == "both" {
        println!("Fig. 2(a): global data skewness (random selection, EMD_avg = 1.0)");
        for &rho in &[10.0, 5.0, 2.0, 1.0] {
            let spec = scaled_spec(DatasetFamily::CifarLike, rho, 1.0, args.full, args.seed);
            let history = run_training(&spec, Method::Random, rounds, eval_every, 1, args.seed);
            let acc: Vec<f64> = history.accuracy_curve().iter().map(|(_, a)| *a).collect();
            print_series(&format!("rho = {rho:<4} accuracy"), &acc);
            let (mean, std) = participated_proportion_stats(&history);
            print_series("  participated prop.", &mean);
            curves.push(Curve {
                label: format!("rho={rho}"),
                accuracy: acc,
                mean_participated_proportion: mean,
                proportion_std: std,
            });
        }
        println!();
    }

    if part == "b" || part == "both" {
        println!("Fig. 2(b): client discrepancy (random selection, rho = 10)");
        for &emd in &[1.5, 1.0, 0.5, 0.0] {
            let spec = scaled_spec(DatasetFamily::CifarLike, 10.0, emd, args.full, args.seed);
            let history = run_training(&spec, Method::Random, rounds, eval_every, 1, args.seed);
            let acc: Vec<f64> = history.accuracy_curve().iter().map(|(_, a)| *a).collect();
            print_series(&format!("EMD = {emd:<4} accuracy"), &acc);
            let (mean, std) = participated_proportion_stats(&history);
            print_series("  participated prop.", &mean);
            print_series("  proportion std", &std);
            curves.push(Curve {
                label: format!("EMD={emd}"),
                accuracy: acc,
                mean_participated_proportion: mean,
                proportion_std: std,
            });
        }
    }

    dubhe_bench::dump_json("fig2_motivation", &curves);
    println!(
        "\nExpected shape: accuracy decreases as rho grows (a); the participated class \
         proportion tracks the skewed global distribution, and its per-round standard \
         deviation grows with EMD_avg (b)."
    );
}
