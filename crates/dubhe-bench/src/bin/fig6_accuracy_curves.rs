//! Figure 6: test-accuracy curves on MNIST-2/EMD and CIFAR10-10/EMD for
//! Random, Dubhe and Greedy selection (EMD_avg in {0.5, 1.0, 1.5}).
//!
//! ```text
//! cargo run --release -p dubhe-bench --bin fig6_accuracy_curves [-- --full]
//! ```

use dubhe_bench::{print_series, run_training, scaled_spec, ExperimentArgs, Method};
use dubhe_data::federated::DatasetFamily;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct PanelResult {
    dataset: String,
    method: String,
    accuracy_curve: Vec<f64>,
    final_accuracy: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    // The paper trains MNIST for 200 rounds and CIFAR10 for 1000; the quick
    // configuration keeps the same panel structure at reduced length.
    let (mnist_rounds, cifar_rounds, eval_every) = if args.full {
        (200, 1000, 10)
    } else {
        (30, 50, 5)
    };

    let mut results = Vec::new();
    let mut summary: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();

    for (family, rho, rounds) in [
        (DatasetFamily::MnistLike, 2.0, mnist_rounds),
        (DatasetFamily::CifarLike, 10.0, cifar_rounds),
    ] {
        for &emd in &[0.5, 1.0, 1.5] {
            let spec = scaled_spec(family, rho, emd, args.full, args.seed);
            println!("=== {} ===", spec.name());
            for method in Method::all() {
                let history = run_training(&spec, method, rounds, eval_every, 1, args.seed);
                let acc: Vec<f64> = history.accuracy_curve().iter().map(|(_, a)| *a).collect();
                print_series(method.name(), &acc);
                let final_acc = history.average_accuracy_last(10).unwrap_or(0.0);
                summary
                    .entry(spec.name())
                    .or_default()
                    .push((method.name().to_string(), final_acc));
                results.push(PanelResult {
                    dataset: spec.name(),
                    method: method.name().to_string(),
                    accuracy_curve: acc,
                    final_accuracy: final_acc,
                });
            }
            println!();
        }
    }

    println!("=== summary (average accuracy over the last evaluations) ===");
    for (dataset, methods) in &summary {
        let line: Vec<String> = methods.iter().map(|(m, a)| format!("{m} {a:.3}")).collect();
        println!("{dataset:<18} {}", line.join("   "));
    }
    println!(
        "\nExpected shape: Dubhe tracks Greedy closely and both stay above Random, \
         with the gap widening as EMD_avg grows (most visible on the CIFAR10-like task)."
    );
    dubhe_bench::dump_json("fig6_accuracy_curves", &results);
}
