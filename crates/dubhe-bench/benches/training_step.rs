//! Criterion benchmarks of the local-training hot path: one client's local
//! epoch, the parallel round across K = 20 clients, and the underlying matmul.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_fl::models::small_mlp;
use dubhe_fl::{FlClient, LocalOptimizer, LocalTrainingConfig};
use dubhe_ml::Matrix;
use rand::SeedableRng;
use rayon::prelude::*;

fn build_clients(n: usize) -> (Vec<FlClient>, dubhe_ml::Sequential) {
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.0,
        clients: n,
        samples_per_client: 64,
        test_samples_per_class: 1,
        seed: 5,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let data = spec.build_dataset(&mut rng);
    let clients = data
        .client_data
        .into_iter()
        .enumerate()
        .map(|(id, ds)| FlClient::new(id, ds).expect("generated datasets are non-empty"))
        .collect();
    (clients, small_mlp(32, 10, 1))
}

fn bench_local_epoch(c: &mut Criterion) {
    let (clients, model) = build_clients(4);
    let config = LocalTrainingConfig {
        epochs: 1,
        batch_size: 8,
        optimizer: LocalOptimizer::Sgd { lr: 0.05 },
    };
    c.bench_function("local_epoch_64_samples", |b| {
        b.iter(|| clients[0].local_train(&model, &config, 1));
    });
}

fn bench_parallel_round(c: &mut Criterion) {
    let (clients, model) = build_clients(20);
    let config = LocalTrainingConfig {
        epochs: 1,
        batch_size: 8,
        optimizer: LocalOptimizer::Sgd { lr: 0.05 },
    };
    let mut group = c.benchmark_group("round_of_20_clients");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            clients
                .iter()
                .map(|cl| cl.local_train(&model, &config, 2))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("rayon_parallel", |b| {
        b.iter(|| {
            clients
                .par_iter()
                .map(|cl| cl.local_train(&model, &config, 2))
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 128] {
        let a = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 13) as f32 * 0.1).collect());
        let b_mat = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 7) as f32 * 0.2).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b_mat));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_local_epoch,
    bench_parallel_round,
    bench_matmul
);
criterion_main!(benches);
