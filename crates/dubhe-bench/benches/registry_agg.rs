//! Scaling benchmark of registry aggregation: how fast can a coordinator
//! fold `N` client registries into one homomorphic sum, for `N` from 10² to
//! 10⁵?
//!
//! Three routes are timed over the same synthetic ciphertexts (uniform
//! residues below `n²` — the fold is arithmetic on residues, so synthetic
//! inputs measure exactly what real registries cost, without paying 10⁵
//! encryptions to set the sweep up):
//!
//! * `serial`   — the reference left-to-right `(acc · c) mod n²` fold
//!   ([`sum_vectors_serial`]), one full multiply + Knuth division per
//!   element;
//! * `mont`     — the Montgomery-domain batch fold ([`sum_vectors`]): one
//!   CIOS multiply per element, one conversion out per position;
//! * `running`  — the coordinator-style incremental [`RunningFold`] (one
//!   vector at a time, as registries arrive over the wire);
//! * `packed16` / `packed32` — the slot-packed [`PackedRunningFold`]: the
//!   same length-56 registry laid into `⌈56 / lanes⌉` ciphertexts (16-bit
//!   slots → 15 lanes → 4 ciphertexts, 32-bit → 7 lanes → 8, at the CI key),
//!   so the coordinator multiplies ~7–14× fewer residues per client.
//!
//! All element-wise routes produce bit-identical totals, and the packed fold
//! is asserted bit-identical to the Montgomery batch fold over the same
//! packed ciphertexts. Besides the criterion groups, the binary writes
//! `results/BENCH_agg.json` with per-count timings and speedups (element-wise
//! and packed rows) so CI tracks the aggregation trajectory the way
//! `BENCH_wire.json` tracks framing
//! (`cargo bench -p dubhe-bench --bench registry_agg -- --test`).

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dubhe_bench::{allocs_during, synthetic_registries};
use dubhe_he::{
    sum_vectors, sum_vectors_serial, HeadroomModel, Keypair, PackedEncryptedVector,
    PackedRunningFold, Packer, PublicKey, RunningFold,
};
use rand::SeedableRng;
use serde::Serialize;

/// CI key size: the byte/op accounting scales with the modulus, the fold
/// structure does not, so a small key keeps the 10⁵ point affordable.
const KEY_BITS: u64 = 256;

/// Registry length of the paper's group-1 configuration.
const REGISTRY_LEN: usize = 56;

/// Slot widths the packed sweep covers (the two widths the protocol layer
/// deploys: 16-bit registry-only packing and 32-bit full packing).
const SLOT_WIDTHS: [u32; 2] = [16, 32];

/// Synthetic *packed* registries: the same uniform-residue trick as
/// [`synthetic_registries`], but over the `⌈len / lanes⌉` ciphertexts a
/// packed length-`len` registry actually ships. The fold is arithmetic on
/// residues either way, so this measures exactly what a packed coordinator
/// pays without `count` real pack-and-encrypt passes.
fn synthetic_packed_registries(
    public: &PublicKey,
    count: usize,
    len: usize,
    packer: Packer,
    seed: u64,
) -> Vec<PackedEncryptedVector> {
    let lanes = packer.slots_per_plaintext().expect("slot width fits key");
    synthetic_registries(public, count, len.div_ceil(lanes), seed)
        .into_iter()
        .map(|v| PackedEncryptedVector::from_vector(v, len, packer).expect("layout matches"))
        .collect()
}

fn bench_fold_routes(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA66);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut group = c.benchmark_group("registry_agg");
    group.sample_size(10);
    for count in [100usize, 1000] {
        let vectors = synthetic_registries(&kp.public, count, REGISTRY_LEN, 0xA66E);
        group.bench_with_input(BenchmarkId::new("serial", count), &vectors, |b, vs| {
            b.iter(|| sum_vectors_serial(black_box(vs)).unwrap().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mont", count), &vectors, |b, vs| {
            b.iter(|| sum_vectors(black_box(vs)).unwrap().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("running", count), &vectors, |b, vs| {
            b.iter(|| {
                let mut fold = RunningFold::new(&vs[0]);
                for v in &vs[1..] {
                    fold.fold(v).unwrap();
                }
                fold.total()
            });
        });
        for slot_bits in SLOT_WIDTHS {
            let packer = Packer::new(slot_bits, KEY_BITS);
            let model = HeadroomModel::new(packer, count as u64, 1).unwrap();
            let packed =
                synthetic_packed_registries(&kp.public, count, REGISTRY_LEN, packer, 0xA66E);
            group.bench_with_input(
                BenchmarkId::new(format!("packed{slot_bits}"), count),
                &packed,
                |b, vs| {
                    b.iter(|| {
                        let mut fold = PackedRunningFold::new(&vs[0], model).unwrap();
                        for v in &vs[1..] {
                            fold.fold(v).unwrap();
                        }
                        fold.total()
                    });
                },
            );
        }
    }
    group.finish();
}

#[derive(Serialize)]
struct AggRow {
    clients: usize,
    registry_len: usize,
    key_bits: u64,
    serial_ms: f64,
    mont_ms: f64,
    running_fold_ms: f64,
    /// Serial reference over the Montgomery batch fold.
    speedup_mont: f64,
    /// Serial reference over the incremental running fold.
    speedup_running: f64,
    /// Montgomery batch throughput in folded elements per second.
    mont_elems_per_s: f64,
    /// Heap allocations per folded element in the Montgomery batch fold.
    /// `null` unless built with `--features count-allocs`; the scratch
    /// arenas hold this near zero (seeding amortises across the sweep).
    mont_allocs_per_element: Option<f64>,
    /// Same meter over the incremental running fold.
    running_allocs_per_element: Option<f64>,
}

#[derive(Serialize)]
struct PackedAggRow {
    clients: usize,
    registry_len: usize,
    key_bits: u64,
    slot_bits: u32,
    lanes_per_ciphertext: usize,
    /// Ciphertexts per client registry after packing (`⌈56 / lanes⌉`).
    ciphertexts: usize,
    packed_fold_ms: f64,
    /// Element-wise running fold at the same client count over the packed
    /// incremental fold — tracks the `56 / ciphertexts` layout reduction.
    speedup_vs_element_wise: f64,
    /// `registry_len / ciphertexts`, the work reduction the layout promises.
    ciphertext_reduction: f64,
}

#[derive(Serialize)]
struct AggReport {
    element_wise: Vec<AggRow>,
    packed: Vec<PackedAggRow>,
}

/// The 10²…10⁵ sweep behind `results/BENCH_agg.json`.
fn write_agg_report() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA66);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut rows = Vec::new();
    for &count in &[100usize, 1_000, 10_000, 100_000] {
        let vectors = synthetic_registries(&kp.public, count, REGISTRY_LEN, 0xA66E);

        let t = Instant::now();
        let serial = sum_vectors_serial(&vectors).unwrap().unwrap();
        let serial_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let (mont, mont_allocs) = allocs_during(|| sum_vectors(&vectors).unwrap().unwrap());
        let mont_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let (running, running_allocs) = allocs_during(|| {
            let mut fold = RunningFold::new(&vectors[0]);
            for v in &vectors[1..] {
                fold.fold(v).unwrap();
            }
            fold.total()
        });
        let running_fold_ms = t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(mont, serial, "Montgomery batch fold diverged at {count}");
        assert_eq!(running, serial, "running fold diverged at {count}");

        let elems = (count * REGISTRY_LEN) as f64;
        rows.push(AggRow {
            clients: count,
            registry_len: REGISTRY_LEN,
            key_bits: KEY_BITS,
            serial_ms,
            mont_ms,
            running_fold_ms,
            speedup_mont: serial_ms / mont_ms,
            speedup_running: serial_ms / running_fold_ms,
            mont_elems_per_s: elems / (mont_ms / 1e3),
            mont_allocs_per_element: mont_allocs.map(|a| a as f64 / elems),
            running_allocs_per_element: running_allocs.map(|a| a as f64 / elems),
        });
    }
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "clients", "serial ms", "mont ms", "running ms", "mont x", "running x"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x {:>8.2}x",
            r.clients, r.serial_ms, r.mont_ms, r.running_fold_ms, r.speedup_mont, r.speedup_running
        );
    }

    // Packed sweep: the 10³-client point CI smokes, one row per slot width.
    // Bit-identity is asserted against the Montgomery batch fold over the
    // same packed ciphertexts, so the packed incremental route can never
    // drift from the reference arithmetic.
    let mut packed_rows = Vec::new();
    for &count in &[100usize, 1_000] {
        for slot_bits in SLOT_WIDTHS {
            let packer = Packer::new(slot_bits, KEY_BITS);
            let lanes = packer.slots_per_plaintext().unwrap();
            let model = HeadroomModel::new(packer, count as u64, 1).unwrap();
            let packed =
                synthetic_packed_registries(&kp.public, count, REGISTRY_LEN, packer, 0xA66E);

            let t = Instant::now();
            let mut fold = PackedRunningFold::new(&packed[0], model).unwrap();
            for v in &packed[1..] {
                fold.fold(v).unwrap();
            }
            let total = fold.total();
            let packed_fold_ms = t.elapsed().as_secs_f64() * 1e3;

            let inner: Vec<_> = packed.iter().map(|p| p.vector().clone()).collect();
            let reference = sum_vectors(&inner).unwrap().unwrap();
            assert_eq!(
                *total.vector(),
                reference,
                "packed fold diverged from the batch fold at {count}/{slot_bits}"
            );

            let element_wise_ms = rows
                .iter()
                .find(|r| r.clients == count)
                .expect("packed sweep points are a subset of the element-wise sweep")
                .running_fold_ms;
            let ciphertexts = total.ciphertext_count();
            packed_rows.push(PackedAggRow {
                clients: count,
                registry_len: REGISTRY_LEN,
                key_bits: KEY_BITS,
                slot_bits,
                lanes_per_ciphertext: lanes,
                ciphertexts,
                packed_fold_ms,
                speedup_vs_element_wise: element_wise_ms / packed_fold_ms,
                ciphertext_reduction: REGISTRY_LEN as f64 / ciphertexts as f64,
            });
        }
    }
    println!(
        "{:>8} {:>6} {:>6} {:>12} {:>10} {:>8}",
        "clients", "slots", "cts", "packed ms", "vs elems", "layout"
    );
    for r in &packed_rows {
        println!(
            "{:>8} {:>6} {:>6} {:>12.1} {:>9.2}x {:>7.2}x",
            r.clients,
            r.slot_bits,
            r.ciphertexts,
            r.packed_fold_ms,
            r.speedup_vs_element_wise,
            r.ciphertext_reduction
        );
    }

    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    dubhe_bench::dump_json_at(
        &results,
        "BENCH_agg",
        &AggReport {
            element_wise: rows,
            packed: packed_rows,
        },
    );
}

criterion_group!(benches, bench_fold_routes);

fn main() {
    benches();
    write_agg_report();
}
