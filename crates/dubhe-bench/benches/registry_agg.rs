//! Scaling benchmark of registry aggregation: how fast can a coordinator
//! fold `N` client registries into one homomorphic sum, for `N` from 10² to
//! 10⁵?
//!
//! Three routes are timed over the same synthetic ciphertexts (uniform
//! residues below `n²` — the fold is arithmetic on residues, so synthetic
//! inputs measure exactly what real registries cost, without paying 10⁵
//! encryptions to set the sweep up):
//!
//! * `serial`   — the reference left-to-right `(acc · c) mod n²` fold
//!   ([`sum_vectors_serial`]), one full multiply + Knuth division per
//!   element;
//! * `mont`     — the Montgomery-domain batch fold ([`sum_vectors`]): one
//!   CIOS multiply per element, one conversion out per position;
//! * `running`  — the coordinator-style incremental [`RunningFold`] (one
//!   vector at a time, as registries arrive over the wire).
//!
//! All three produce bit-identical totals (asserted here for the smaller
//! sweep points). Besides the criterion groups, the binary writes
//! `results/BENCH_agg.json` with per-count timings and speedups so CI tracks
//! the aggregation trajectory the way `BENCH_wire.json` tracks framing
//! (`cargo bench -p dubhe-bench --bench registry_agg -- --test`).

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dubhe_bench::synthetic_registries;
use dubhe_he::{sum_vectors, sum_vectors_serial, Keypair, RunningFold};
use rand::SeedableRng;
use serde::Serialize;

/// CI key size: the byte/op accounting scales with the modulus, the fold
/// structure does not, so a small key keeps the 10⁵ point affordable.
const KEY_BITS: u64 = 256;

/// Registry length of the paper's group-1 configuration.
const REGISTRY_LEN: usize = 56;

fn bench_fold_routes(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA66);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut group = c.benchmark_group("registry_agg");
    group.sample_size(10);
    for count in [100usize, 1000] {
        let vectors = synthetic_registries(&kp.public, count, REGISTRY_LEN, 0xA66E);
        group.bench_with_input(BenchmarkId::new("serial", count), &vectors, |b, vs| {
            b.iter(|| sum_vectors_serial(black_box(vs)).unwrap().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mont", count), &vectors, |b, vs| {
            b.iter(|| sum_vectors(black_box(vs)).unwrap().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("running", count), &vectors, |b, vs| {
            b.iter(|| {
                let mut fold = RunningFold::new(&vs[0]);
                for v in &vs[1..] {
                    fold.fold(v).unwrap();
                }
                fold.total()
            });
        });
    }
    group.finish();
}

#[derive(Serialize)]
struct AggRow {
    clients: usize,
    registry_len: usize,
    key_bits: u64,
    serial_ms: f64,
    mont_ms: f64,
    running_fold_ms: f64,
    /// Serial reference over the Montgomery batch fold.
    speedup_mont: f64,
    /// Serial reference over the incremental running fold.
    speedup_running: f64,
    /// Montgomery batch throughput in folded elements per second.
    mont_elems_per_s: f64,
}

/// The 10²…10⁵ sweep behind `results/BENCH_agg.json`.
fn write_agg_report() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA66);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut rows = Vec::new();
    for &count in &[100usize, 1_000, 10_000, 100_000] {
        let vectors = synthetic_registries(&kp.public, count, REGISTRY_LEN, 0xA66E);

        let t = Instant::now();
        let serial = sum_vectors_serial(&vectors).unwrap().unwrap();
        let serial_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let mont = sum_vectors(&vectors).unwrap().unwrap();
        let mont_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let mut fold = RunningFold::new(&vectors[0]);
        for v in &vectors[1..] {
            fold.fold(v).unwrap();
        }
        let running = fold.total();
        let running_fold_ms = t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(mont, serial, "Montgomery batch fold diverged at {count}");
        assert_eq!(running, serial, "running fold diverged at {count}");

        let elems = (count * REGISTRY_LEN) as f64;
        rows.push(AggRow {
            clients: count,
            registry_len: REGISTRY_LEN,
            key_bits: KEY_BITS,
            serial_ms,
            mont_ms,
            running_fold_ms,
            speedup_mont: serial_ms / mont_ms,
            speedup_running: serial_ms / running_fold_ms,
            mont_elems_per_s: elems / (mont_ms / 1e3),
        });
    }
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "clients", "serial ms", "mont ms", "running ms", "mont x", "running x"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x {:>8.2}x",
            r.clients, r.serial_ms, r.mont_ms, r.running_fold_ms, r.speedup_mont, r.speedup_running
        );
    }
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    dubhe_bench::dump_json_at(&results, "BENCH_agg", &rows);
}

criterion_group!(benches, bench_fold_routes);

fn main() {
    benches();
    write_agg_report();
}
