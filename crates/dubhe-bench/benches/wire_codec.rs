//! Criterion benchmarks of the pluggable wire codecs: encode/decode
//! throughput and bytes-per-message for `DBH1` (JSON), `DBH2` (canonical
//! binary) and `DBHZ` (LZSS-compressed JSON) over the representative
//! protocol payloads — a length-56 encrypted registry upload (element-wise
//! and slot-packed at 16- and 32-bit widths) and a 10-class encrypted
//! distribution.
//!
//! Besides the criterion timings, the binary writes
//! `results/BENCH_wire.json` with the measured bytes-per-message,
//! per-operation latencies and the packed-registry byte reduction, so CI
//! records the wire-format trajectory run over run — including the packing
//! acceptance bar: a 32-bit-slot packed length-56 registry must ship at
//! least 4× fewer binary payload bytes than the element-wise upload
//! (`cargo bench -p dubhe-bench --bench wire_codec -- --test`).

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dubhe_he::{EncryptedVector, Keypair, PackedEncryptedVector, Packer};
use dubhe_select::protocol::{CodecKind, Envelope, Party, ProtocolMsg, WireMsg};
use rand::SeedableRng;
use serde::Serialize;

const KEY_BITS: u64 = 512;

/// Wraps one protocol message in the envelope every sample shares.
fn enveloped(msg: ProtocolMsg) -> WireMsg {
    WireMsg::Envelope {
        envelope: Envelope {
            from: Party::Client(7),
            to: Party::Server,
            epoch: 0,
            msg,
        },
    }
}

/// The payloads the §6.4 overhead model is made of: a registry upload
/// (registration epoch, element-wise and packed at both deployed slot
/// widths) and a scaled label distribution (multi-time round).
fn sample_messages() -> Vec<(&'static str, WireMsg)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut registry = vec![0u64; 56];
    registry[17] = 1;
    let packed_s16 =
        PackedEncryptedVector::encrypt(Packer::new(16, KEY_BITS), &kp.public, &registry, &mut rng)
            .expect("16-bit slots fit the bench key");
    let packed_s32 =
        PackedEncryptedVector::encrypt(Packer::new(32, KEY_BITS), &kp.public, &registry, &mut rng)
            .expect("32-bit slots fit the bench key");
    let registry = EncryptedVector::encrypt_u64(&kp.public, &registry, &mut rng);
    let distribution =
        EncryptedVector::encrypt_u64(&kp.public, &[100u64, 3, 5, 8, 1, 0, 9, 2, 4, 7], &mut rng);
    vec![
        (
            "registry_l56",
            enveloped(ProtocolMsg::EncryptedRegistry {
                client: 7,
                registry,
            }),
        ),
        (
            "packed_registry_l56_s16",
            enveloped(ProtocolMsg::PackedRegistry {
                client: 7,
                registry: packed_s16,
            }),
        ),
        (
            "packed_registry_l56_s32",
            enveloped(ProtocolMsg::PackedRegistry {
                client: 7,
                registry: packed_s32,
            }),
        ),
        (
            "distribution_c10",
            enveloped(ProtocolMsg::EncryptedDistribution {
                client: 7,
                try_index: 2,
                distribution,
            }),
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let msgs = sample_messages();
    let mut group = c.benchmark_group("wire_encode");
    for (name, msg) in &msgs {
        for codec in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
            group.bench_with_input(BenchmarkId::new(*name, codec.name()), msg, |b, msg| {
                b.iter(|| codec.encode(black_box(msg)).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let msgs = sample_messages();
    let mut group = c.benchmark_group("wire_decode");
    for (name, msg) in &msgs {
        for codec in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
            let payload = codec.encode(msg).unwrap();
            group.bench_with_input(
                BenchmarkId::new(*name, codec.name()),
                &payload,
                |b, payload| {
                    b.iter(|| codec.decode(black_box(payload)).unwrap());
                },
            );
        }
    }
    group.finish();
}

#[derive(Serialize)]
struct WireRow {
    message: &'static str,
    codec: &'static str,
    payload_bytes: usize,
    encode_ns: f64,
    decode_ns: f64,
}

#[derive(Serialize)]
struct PackedReduction {
    slot_bits: u32,
    /// Binary (`DBH2`) payload bytes of the element-wise length-56 registry.
    element_wise_bytes: usize,
    /// Binary (`DBH2`) payload bytes of the packed length-56 registry.
    packed_bytes: usize,
    reduction: f64,
}

#[derive(Serialize)]
struct WireReport {
    rows: Vec<WireRow>,
    /// Measured packed-vs-element-wise registry reductions; the 32-bit row
    /// carries the ≥4× acceptance bar asserted at report time.
    packed_registry_reduction: Vec<PackedReduction>,
}

/// Measures bytes-per-message and per-op latency for both codecs and writes
/// `results/BENCH_wire.json`. Runs a single iteration in `--test` mode so
/// the CI smoke step stays fast but still records the byte sizes.
fn write_wire_report() {
    let iters: u32 = if std::env::args().any(|a| a == "--test") {
        1
    } else {
        200
    };
    let mut rows = Vec::new();
    for (name, msg) in &sample_messages() {
        for codec in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
            let payload = codec.encode(msg).unwrap();
            let t = Instant::now();
            for _ in 0..iters {
                black_box(codec.encode(black_box(msg)).unwrap());
            }
            let encode_ns = t.elapsed().as_nanos() as f64 / iters as f64;
            let t = Instant::now();
            for _ in 0..iters {
                black_box(codec.decode(black_box(&payload)).unwrap());
            }
            let decode_ns = t.elapsed().as_nanos() as f64 / iters as f64;
            rows.push(WireRow {
                message: name,
                codec: codec.name(),
                payload_bytes: payload.len(),
                encode_ns,
                decode_ns,
            });
        }
    }
    for group in rows.chunks(3) {
        let dbh1 = group[0].payload_bytes as f64;
        let sized: Vec<String> = group
            .iter()
            .map(|r| {
                format!(
                    "{}: {:>7} B ({:.2}x)",
                    r.codec,
                    r.payload_bytes,
                    dbh1 / r.payload_bytes as f64
                )
            })
            .collect();
        println!("{:<24} {}", group[0].message, sized.join("   "));
    }
    // Packed-registry acceptance: the binary payload of the slot-packed
    // length-56 registry against the element-wise one, per slot width. The
    // 32-bit row is the protocol's full-packing deployment and must come in
    // at ≥ 4× fewer bytes.
    let binary_bytes = |message: &str| {
        rows.iter()
            .find(|r| r.message == message && r.codec == CodecKind::Binary.name())
            .expect("every sample message has a binary row")
            .payload_bytes
    };
    let element_wise_bytes = binary_bytes("registry_l56");
    let mut packed_registry_reduction = Vec::new();
    for slot_bits in [16u32, 32] {
        let packed_bytes = binary_bytes(&format!("packed_registry_l56_s{slot_bits}"));
        let reduction = element_wise_bytes as f64 / packed_bytes as f64;
        println!(
            "packed s{slot_bits:<2} registry: {packed_bytes:>7} B vs {element_wise_bytes} B element-wise ({reduction:.2}x smaller)"
        );
        packed_registry_reduction.push(PackedReduction {
            slot_bits,
            element_wise_bytes,
            packed_bytes,
            reduction,
        });
        assert!(
            slot_bits != 32 || element_wise_bytes >= 4 * packed_bytes,
            "32-bit-slot packing must cut the length-56 registry at least 4x \
             ({element_wise_bytes} B -> {packed_bytes} B)"
        );
    }

    // Benches run with the package directory as cwd; aim for the workspace
    // root's results/ where every other machine-readable artifact lives.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    dubhe_bench::dump_json_at(
        &results,
        "BENCH_wire",
        &WireReport {
            rows,
            packed_registry_reduction,
        },
    );
}

criterion_group!(benches, bench_encode, bench_decode);

fn main() {
    benches();
    write_wire_report();
}
