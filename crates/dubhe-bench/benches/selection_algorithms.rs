//! Criterion benchmarks of the three client-selection algorithms as a function
//! of the population size N — the selection-time comparison behind the paper's
//! observation that greedy selection adds 0.13x (N = 1000) to 1.69x (N = 8962)
//! of the round time while Dubhe's probability draw is linear and cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_select::{ClientSelector, DubheConfig, DubheSelector, GreedySelector, RandomSelector};
use rand::SeedableRng;

fn distributions(n: usize) -> Vec<dubhe_data::ClassDistribution> {
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: n,
        samples_per_client: 128,
        test_samples_per_class: 1,
        seed: 13,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    spec.build_partition(&mut rng).client_distributions()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_k20");
    group.sample_size(20);
    for n in [200usize, 1000, 4000] {
        let dists = distributions(n);
        let config = DubheConfig::group1();

        let mut random = RandomSelector::new(n, config.k);
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| random.select(&mut rng));
        });

        let mut dubhe = DubheSelector::new(&dists, config.clone());
        group.bench_with_input(BenchmarkId::new("dubhe", n), &n, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| dubhe.select(&mut rng));
        });

        let mut greedy = GreedySelector::new(&dists, config.k);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| greedy.select(&mut rng));
        });
    }
    group.finish();
}

fn bench_dubhe_setup(c: &mut Criterion) {
    // Registration happens once per epoch; measure it separately from the
    // per-round probability draw.
    let mut group = c.benchmark_group("dubhe_registration_epoch");
    group.sample_size(10);
    for n in [1000usize, 8962] {
        let dists = distributions(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DubheSelector::new(&dists, DubheConfig::group1()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_dubhe_setup);
criterion_main!(benches);
