//! Criterion micro-benchmarks of the Paillier substrate: key generation,
//! scalar and vector encryption (naive `rⁿ` vs precomputed-base `hˣ`),
//! batch decryption and homomorphic aggregation across key sizes — the raw
//! numbers behind the §6.4 encryption-overhead discussion and the fast-path
//! speedup claimed in the crate docs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dubhe_he::{
    sum_vectors, sum_vectors_serial, CrtEncryptor, EncryptedVector, Encryptor, Keypair,
    PrecomputedEncryptor,
};
use rand::SeedableRng;

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_keygen");
    group.sample_size(10);
    for bits in [256u64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| Keypair::generate(bits, &mut rng));
        });
    }
    group.finish();
}

fn bench_encrypt_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_scalar");
    group.sample_size(10);
    for bits in [256u64, 512, 1024] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let kp = Keypair::generate(bits, &mut rng);
        let (pk, sk) = (kp.public.clone(), kp.private.clone());
        group.bench_with_input(BenchmarkId::new("encrypt_naive", bits), &bits, |b, _| {
            b.iter(|| pk.encrypt_u64(123_456, &mut rng));
        });
        let encryptor = PrecomputedEncryptor::new(&pk, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("encrypt_precomputed", bits),
            &bits,
            |b, _| {
                b.iter(|| encryptor.encrypt_u64(123_456, &mut rng));
            },
        );
        // The keypair-side tier: same fixed-base table, evaluated mod p²/q²
        // through the key's cached Montgomery contexts and CRT-recombined.
        let crt = CrtEncryptor::new(&kp, &mut rng).expect("valid keypair");
        group.bench_with_input(BenchmarkId::new("encrypt_crt", bits), &bits, |b, _| {
            b.iter(|| crt.encrypt_u64(123_456, &mut rng));
        });
        let ct = pk.encrypt_u64(123_456, &mut rng);
        group.bench_with_input(BenchmarkId::new("decrypt", bits), &bits, |b, _| {
            b.iter(|| sk.decrypt_u64(&ct));
        });
        let other = pk.encrypt_u64(7, &mut rng);
        group.bench_with_input(BenchmarkId::new("homomorphic_add", bits), &bits, |b, _| {
            b.iter(|| ct.add(&other).unwrap());
        });
    }
    group.finish();
}

/// The acceptance-criterion benchmark: vector encryption at 1024-bit keys,
/// naive per-element `rⁿ` vs the default precomputed-base path.
fn bench_vector_fast_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_vector_1024");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let (pk, sk) = Keypair::generate(1024, &mut rng).split();
    let mut registry = vec![0u64; 56];
    registry[10] = 1;

    group.bench_function("encrypt_registry56_naive", |b| {
        b.iter(|| EncryptedVector::encrypt_u64_naive(&pk, &registry, &mut rng));
    });
    // Table construction happens once per key; bind it before timing so the
    // measured loop reflects the steady state every epoch client sees.
    let encryptor = PrecomputedEncryptor::new(&pk, &mut rng);
    group.bench_function("encrypt_registry56_precomputed", |b| {
        b.iter(|| EncryptedVector::encrypt_u64_with(&encryptor, &registry, &mut rng));
    });
    let crt = CrtEncryptor::from_keys(&pk, &sk, &mut rng).expect("valid keypair");
    group.bench_function("encrypt_registry56_crt", |b| {
        b.iter(|| EncryptedVector::encrypt_u64_with(&crt, &registry, &mut rng));
    });

    let enc = EncryptedVector::encrypt_u64(&pk, &registry, &mut rng);
    group.bench_function("decrypt_registry56_batch", |b| {
        b.iter(|| enc.decrypt_u64(&sk).unwrap());
    });
    group.finish();
}

fn bench_registry_vector(c: &mut Criterion) {
    // The protocol object of §6.4: a length-56 one-hot registry.
    let mut group = c.benchmark_group("paillier_registry56");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let (pk, sk) = Keypair::generate(512, &mut rng).split();
    let mut registry = vec![0u64; 56];
    registry[10] = 1;
    group.bench_function("encrypt_registry", |b| {
        b.iter(|| EncryptedVector::encrypt_u64(&pk, &registry, &mut rng));
    });
    let enc = EncryptedVector::encrypt_u64(&pk, &registry, &mut rng);
    let enc2 = EncryptedVector::encrypt_u64(&pk, &registry, &mut rng);
    group.bench_function("aggregate_two_registries", |b| {
        b.iter(|| enc.add(&enc2).unwrap());
    });
    group.bench_function("decrypt_registry", |b| {
        b.iter(|| enc.decrypt_u64(&sk).unwrap());
    });
    group.finish();
}

/// Server-side epoch aggregation: homomorphic sum of many client registries,
/// parallel tree vs the serial reference fold.
fn bench_epoch_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_epoch_sum");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let (pk, _sk) = Keypair::generate(512, &mut rng).split();
    let registries: Vec<EncryptedVector> = (0..64)
        .map(|i| {
            let mut v = vec![0u64; 56];
            v[i % 56] = 1;
            EncryptedVector::encrypt_u64(&pk, &v, &mut rng)
        })
        .collect();
    group.bench_function("sum_64_registries_parallel", |b| {
        b.iter(|| sum_vectors(&registries).unwrap().unwrap());
    });
    group.bench_function("sum_64_registries_serial", |b| {
        b.iter(|| sum_vectors_serial(&registries).unwrap().unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_keygen,
    bench_encrypt_decrypt,
    bench_vector_fast_vs_naive,
    bench_registry_vector,
    bench_epoch_aggregation,
);
criterion_main!(benches);
