//! Criterion micro-benchmarks of the Paillier substrate: key generation,
//! encryption, decryption and homomorphic addition across key sizes — the raw
//! numbers behind the §6.4 encryption-overhead discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dubhe_he::{EncryptedVector, Keypair};
use rand::SeedableRng;

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_keygen");
    group.sample_size(10);
    for bits in [256u64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| Keypair::generate(bits, &mut rng));
        });
    }
    group.finish();
}

fn bench_encrypt_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_scalar");
    for bits in [256u64, 512, 1024] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (pk, sk) = Keypair::generate(bits, &mut rng).split();
        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |b, _| {
            b.iter(|| pk.encrypt_u64(123_456, &mut rng));
        });
        let ct = pk.encrypt_u64(123_456, &mut rng);
        group.bench_with_input(BenchmarkId::new("decrypt", bits), &bits, |b, _| {
            b.iter(|| sk.decrypt_u64(&ct));
        });
        let other = pk.encrypt_u64(7, &mut rng);
        group.bench_with_input(BenchmarkId::new("homomorphic_add", bits), &bits, |b, _| {
            b.iter(|| ct.add(&other).unwrap());
        });
    }
    group.finish();
}

fn bench_registry_vector(c: &mut Criterion) {
    // The protocol object of §6.4: a length-56 one-hot registry.
    let mut group = c.benchmark_group("paillier_registry56");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let (pk, sk) = Keypair::generate(512, &mut rng).split();
    let mut registry = vec![0u64; 56];
    registry[10] = 1;
    group.bench_function("encrypt_registry", |b| {
        b.iter(|| EncryptedVector::encrypt_u64(&pk, &registry, &mut rng));
    });
    let enc = EncryptedVector::encrypt_u64(&pk, &registry, &mut rng);
    let enc2 = EncryptedVector::encrypt_u64(&pk, &registry, &mut rng);
    group.bench_function("aggregate_two_registries", |b| {
        b.iter(|| enc.add(&enc2).unwrap());
    });
    group.bench_function("decrypt_registry", |b| {
        b.iter(|| enc.decrypt_u64(&sk));
    });
    group.finish();
}

criterion_group!(benches, bench_keygen, bench_encrypt_decrypt, bench_registry_vector);
criterion_main!(benches);
