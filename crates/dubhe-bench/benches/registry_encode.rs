//! Criterion benchmarks of registration (Algorithm 1) and codebook indexing —
//! the per-client, per-epoch cost of joining Dubhe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_he::{Keypair, PrecomputedEncryptor};
use dubhe_select::codebook::{rank_subset, RegistryLayout};
use dubhe_select::registry::{register, register_all, register_all_encrypted};
use dubhe_select::DubheConfig;
use rand::SeedableRng;

fn client_distributions(family: DatasetFamily, n: usize) -> Vec<dubhe_data::ClassDistribution> {
    let spec = FederatedSpec {
        family,
        rho: 10.0,
        emd_avg: 1.5,
        clients: n,
        samples_per_client: 128,
        test_samples_per_class: 1,
        seed: 7,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    spec.build_partition(&mut rng).client_distributions()
}

fn bench_single_registration(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_one_client");
    let layouts = [
        (
            "group1_C10",
            RegistryLayout::group1(),
            DubheConfig::group1(),
        ),
        (
            "group2_C52",
            RegistryLayout::group2(),
            DubheConfig::group2(),
        ),
    ];
    for (name, layout, config) in layouts {
        let family = if layout.classes() == 52 {
            DatasetFamily::FemnistLike
        } else {
            DatasetFamily::MnistLike
        };
        let dists = client_distributions(family, 10);
        let thresholds = config.effective_thresholds();
        group.bench_function(name, |b| {
            b.iter(|| register(&dists[0], &layout, &thresholds));
        });
    }
    group.finish();
}

fn bench_registration_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_all_clients");
    group.sample_size(10);
    for n in [100usize, 1000] {
        let dists = client_distributions(DatasetFamily::MnistLike, n);
        let layout = RegistryLayout::group1();
        let thresholds = DubheConfig::group1().effective_thresholds();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| register_all(&dists, &layout, &thresholds));
        });
    }
    group.finish();
}

/// The full client-side crypto of one registration epoch: register every
/// client and encrypt its one-hot registry under a shared fast encryptor.
fn bench_encrypted_registration_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_all_encrypted");
    group.sample_size(10);
    let dists = client_distributions(DatasetFamily::MnistLike, 50);
    let layout = RegistryLayout::group1();
    let thresholds = DubheConfig::group1().effective_thresholds();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let (pk, _sk) = Keypair::generate(512, &mut rng).split();
    let encryptor = PrecomputedEncryptor::new(&pk, &mut rng);
    group.bench_function("50_clients_512bit", |b| {
        b.iter(|| register_all_encrypted(&dists, &layout, &thresholds, &encryptor, &mut rng));
    });
    group.finish();
}

fn bench_codebook_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook_rank_subset");
    group.bench_function("pair_of_10", |b| b.iter(|| rank_subset(&[3, 7], 10)));
    group.bench_function("pair_of_52", |b| b.iter(|| rank_subset(&[11, 40], 52)));
    group.bench_function("quintuple_of_52", |b| {
        b.iter(|| rank_subset(&[1, 9, 20, 33, 51], 52))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_registration,
    bench_registration_epoch,
    bench_encrypted_registration_epoch,
    bench_codebook_rank
);
criterion_main!(benches);
