//! Integration tests for the role-separated protocol:
//!
//! * **Threat model** — a full registration + multi-time epoch is walked
//!   through the actors over a recording transport, and the transcript is
//!   audited: the server never receives a private key or anything but
//!   ciphertexts, and the server role structurally cannot hold either.
//! * **Serde** — every [`ProtocolMsg`] variant round-trips through JSON.
//! * **Equivalence** — the actor-driven wrappers produce bit-identical
//!   results (ciphertexts included) to a straight-line reimplementation of
//!   the legacy `secure_registration` / `secure_multi_time_select` code on
//!   the same seed, including participation probabilities and byte totals.

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_data::ClassDistribution;
use dubhe_he::transport::ciphertext_size_bytes;
use dubhe_he::{sum_vectors, EncryptedVector, FixedPointCodec, Keypair, PrecomputedEncryptor};
use dubhe_select::participation_probability;
use dubhe_select::protocol::{
    run_registration, run_try, InMemoryTransport, MsgKind, Party, ProtocolMsg,
};
use dubhe_select::registry::register_all_encrypted;
use dubhe_select::{
    secure_multi_time_select, secure_registration, ClientSelector, DubheConfig, DubheSelector,
};
use rand::{Rng, SeedableRng};

const KEY_BITS: u64 = 256;

fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: n,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    spec.build_partition(&mut rng).client_distributions()
}

/// Walks a complete epoch — registration plus an H=3 multi-time round —
/// and audits the transcript against the honest-but-curious threat model.
#[test]
fn full_epoch_never_shows_the_server_secrets() {
    let dists = clients(12, 41);
    let config = DubheConfig {
        k: 5,
        ..DubheConfig::group1()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut transport = InMemoryTransport::recording();
    let mut run = run_registration(&dists, &config, KEY_BITS, &mut transport, &mut rng).unwrap();

    // Multi-time round through the same actors.
    let mut selector = DubheSelector::new(&dists, config.clone());
    run.agent.expect_tries(3);
    for try_index in 0..3 {
        let tentative = selector.select(&mut rng);
        run_try(
            try_index,
            &tentative,
            &mut run.agent,
            &mut run.clients,
            &mut run.server,
            &mut transport,
            &mut rng,
        )
        .unwrap();
    }
    assert!(run.agent.verdict().is_some(), "epoch must reach a verdict");

    // 1. The server role's API exposes nothing but the public key and
    //    ciphertext folds; its struct has no private-key field to begin
    //    with, so the following is the *observable* half of the guarantee.
    assert!(run.server.public_key().is_some());

    // 2. Transcript audit: everything addressed to the server is either the
    //    public-key-only dispatch, a ciphertext payload, or the verdict.
    let mut server_kinds = Vec::new();
    for env in transport.transcript() {
        if env.to != Party::Server {
            continue;
        }
        server_kinds.push(env.msg.kind());
        match &env.msg {
            ProtocolMsg::PublicKeyDispatch { private_key, .. } => {
                assert!(
                    private_key.is_none(),
                    "a private key was addressed to the server"
                );
            }
            ProtocolMsg::EncryptedRegistry { registry, .. } => {
                // One-hot plaintexts are 0/1; every wire element is a
                // full-width ciphertext instead.
                for ct in registry.elements() {
                    assert!(ct.byte_len() > 8);
                }
            }
            ProtocolMsg::EncryptedDistribution { distribution, .. } => {
                for ct in distribution.elements() {
                    assert!(ct.byte_len() > 8);
                }
            }
            ProtocolMsg::TryVerdict { .. } => {}
            other => panic!("threat-model violation: server got {:?}", other.kind()),
        }
    }
    assert_eq!(
        server_kinds
            .iter()
            .filter(|k| **k == MsgKind::Registry)
            .count(),
        12
    );
    assert_eq!(
        server_kinds
            .iter()
            .filter(|k| **k == MsgKind::Distribution)
            .count(),
        3 * 5
    );

    // 3. Private keys travel only agent → client.
    for env in transport.transcript() {
        if let ProtocolMsg::PublicKeyDispatch {
            private_key: Some(_),
            ..
        } = &env.msg
        {
            assert_eq!(env.from, Party::Agent);
            assert!(matches!(env.to, Party::Client(_)));
        }
    }

    // 4. And no plaintext registry ever equals what crossed the wire: the
    //    decrypted total exists only on key-holding parties.
    let overall = run.overall_registry();
    assert_eq!(overall.iter().sum::<u64>(), 12);
}

#[test]
fn the_server_rejects_a_smuggled_private_key() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut server = dubhe_select::CoordinatorServer::new(1);
    let err = server
        .handle(ProtocolMsg::PublicKeyDispatch {
            public_key: kp.public.clone(),
            private_key: Some(kp.private.clone()),
        })
        .unwrap_err();
    assert_eq!(err, dubhe_select::ProtocolError::PrivateKeyAtServer);
    assert!(
        server.public_key().is_none(),
        "the dispatch must be refused"
    );
}

/// Every `ProtocolMsg` variant survives a JSON round trip.
#[test]
fn protocol_messages_round_trip_through_serde() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let vector = EncryptedVector::encrypt_u64(&kp.public, &[0, 1, 0, 2], &mut rng);

    let messages = vec![
        ProtocolMsg::PublicKeyDispatch {
            public_key: kp.public.clone(),
            private_key: None,
        },
        ProtocolMsg::PublicKeyDispatch {
            public_key: kp.public.clone(),
            private_key: Some(kp.private.clone()),
        },
        ProtocolMsg::EncryptedRegistry {
            client: 7,
            registry: vector.clone(),
        },
        ProtocolMsg::EncryptedTotalBroadcast {
            total: vector.clone(),
        },
        ProtocolMsg::EncryptedDistribution {
            client: 3,
            try_index: 2,
            distribution: vector.clone(),
        },
        ProtocolMsg::EncryptedDistributionSum {
            try_index: 2,
            contributors: 5,
            sum: vector.clone(),
        },
        ProtocolMsg::TryVerdict {
            best_try: 1,
            distance: 0.25,
        },
    ];
    for msg in messages {
        let json = serde_json::to_string(&msg).unwrap();
        let back: ProtocolMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg, "round trip changed {:?}", msg.kind());
        assert_eq!(back.wire_bytes(), msg.wire_bytes());
    }

    // A decryptable payload stays decryptable after the round trip.
    let json =
        serde_json::to_string(&ProtocolMsg::EncryptedTotalBroadcast { total: vector }).unwrap();
    let back: ProtocolMsg = serde_json::from_str(&json).unwrap();
    if let ProtocolMsg::EncryptedTotalBroadcast { total } = back {
        assert_eq!(total.decrypt_u64(&kp.private).unwrap(), vec![0, 1, 0, 2]);
    } else {
        panic!("wrong variant");
    }
}

/// Straight-line reimplementation of the pre-actor `secure_registration`
/// (agent draw, keygen, shared fast encryptor, per-client encrypt in id
/// order, one homomorphic sum, decrypt) used as the equivalence oracle.
struct LegacyRegistration {
    agent: usize,
    overall: Vec<u64>,
    total: EncryptedVector,
    uplink_ciphertext_bytes: usize,
    positions: Vec<usize>,
}

fn legacy_registration<R: Rng>(
    dists: &[ClassDistribution],
    config: &DubheConfig,
    rng: &mut R,
) -> LegacyRegistration {
    let layout = config.validate();
    let thresholds = config.effective_thresholds();
    let agent = rng.gen_range(0..dists.len());
    let keypair = Keypair::generate(KEY_BITS, rng);
    let (public_key, private_key) = keypair.split();
    let encryptor = PrecomputedEncryptor::new(&public_key, rng);
    let (registrations, encrypted) =
        register_all_encrypted(dists, &layout, &thresholds, &encryptor, rng);
    let total = sum_vectors(&encrypted).unwrap().unwrap();
    let overall = total.decrypt_u64(&private_key).unwrap();
    LegacyRegistration {
        agent,
        overall,
        total,
        uplink_ciphertext_bytes: encrypted.len()
            * layout.len()
            * ciphertext_size_bytes(&public_key),
        positions: registrations.iter().map(|r| r.position).collect(),
    }
}

/// The actor-driven registration is bit-identical to the legacy straight-line
/// path on the same seed: same agent, same ciphertext total, same decrypted
/// registry, same probabilities, same uplink byte total.
#[test]
fn actor_registration_is_bit_identical_to_the_legacy_path() {
    for seed in 0..4u64 {
        let dists = clients(10 + seed as usize * 3, 100 + seed);
        let config = DubheConfig::group1();

        let legacy = legacy_registration(
            &dists,
            &config,
            &mut rand::rngs::StdRng::seed_from_u64(500 + seed),
        );
        let epoch = secure_registration(
            &dists,
            &config,
            KEY_BITS,
            &mut rand::rngs::StdRng::seed_from_u64(500 + seed),
        )
        .unwrap();

        assert_eq!(epoch.agent, legacy.agent, "seed {seed}: agent draw");
        assert_eq!(epoch.overall_registry, legacy.overall, "seed {seed}");
        assert_eq!(
            epoch.server_view.bytes_received, legacy.uplink_ciphertext_bytes,
            "seed {seed}: uplink byte totals"
        );
        // The ciphertexts themselves are bit-identical: the server's running
        // fold equals the legacy sum_vectors result element by element.
        let total = epoch.server_view.encrypted_total.as_ref().unwrap();
        assert_eq!(total.len(), legacy.total.len());
        for (a, b) in total.elements().iter().zip(legacy.total.elements()) {
            assert_eq!(a.raw(), b.raw(), "seed {seed}: fold diverged");
        }
        // Bit-identical participation probabilities (exact f64 equality).
        for (reg, &pos) in epoch.registrations.iter().zip(&legacy.positions) {
            assert_eq!(reg.position, pos);
            let p_new = participation_probability(&epoch.overall_registry, reg.position, config.k);
            let p_old = participation_probability(&legacy.overall, pos, config.k);
            assert!(p_new == p_old, "seed {seed}: probability drifted");
        }
    }
}

/// Straight-line reimplementation of the pre-actor secure multi-time loop.
fn legacy_multi_time<R: Rng>(
    dists: &[ClassDistribution],
    config: &DubheConfig,
    h: usize,
    rng: &mut R,
) -> (Vec<usize>, usize, Vec<f64>, usize) {
    let keypair = Keypair::generate(KEY_BITS, rng);
    let (public_key, private_key) = keypair.split();
    let codec = FixedPointCodec::default();
    let classes = dists[0].classes();
    let mut selector = DubheSelector::new(dists, config.clone());

    let mut tries = Vec::new();
    let mut distances = Vec::new();
    let mut bytes = 0usize;
    for _ in 0..h {
        let selected = selector.select(rng);
        let encryptor = PrecomputedEncryptor::new(&public_key, rng);
        let mut encrypted = Vec::with_capacity(selected.len());
        for &id in &selected {
            let scaled = codec.encode_vec(&dists[id].proportions());
            encrypted.push(EncryptedVector::encrypt_u64_with(&encryptor, &scaled, rng));
            bytes += classes * ciphertext_size_bytes(&public_key);
        }
        let sum = sum_vectors(&encrypted).unwrap().unwrap();
        let decrypted = sum.decrypt_u64(&private_key).unwrap();
        let population = codec.decode_average(&decrypted, selected.len());
        let p_u = vec![1.0 / classes as f64; classes];
        distances.push(dubhe_data::l1_distance(&population, &p_u));
        tries.push(selected);
    }
    let best = distances
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    (tries[best].clone(), best, distances, bytes)
}

/// The actor-driven multi-time wrapper reproduces the legacy loop exactly:
/// same tentative draws, same decrypted distances, same winner, same bytes.
#[test]
fn actor_multi_time_is_bit_identical_to_the_legacy_path() {
    for seed in 0..3u64 {
        let dists = clients(30, 200 + seed);
        let config = DubheConfig {
            k: 8,
            ..DubheConfig::group1()
        };
        let h = 4;

        let (legacy_selected, legacy_best, legacy_distances, legacy_bytes) = legacy_multi_time(
            &dists,
            &config,
            h,
            &mut rand::rngs::StdRng::seed_from_u64(900 + seed),
        );

        let mut rng = rand::rngs::StdRng::seed_from_u64(900 + seed);
        let keypair = Keypair::generate(KEY_BITS, &mut rng);
        let (pk, sk) = keypair.split();
        let mut selector = DubheSelector::new(&dists, config.clone());
        let secure =
            secure_multi_time_select(&mut selector, &dists, h, &pk, &sk, &mut rng).unwrap();

        assert_eq!(secure.best_try, legacy_best, "seed {seed}");
        assert_eq!(secure.selected, legacy_selected, "seed {seed}");
        assert_eq!(secure.ciphertext_bytes, legacy_bytes, "seed {seed}");
        assert_eq!(secure.tries.len(), legacy_distances.len());
        for (t, d) in secure.tries.iter().zip(&legacy_distances) {
            assert!(
                t.distance_to_uniform == *d,
                "seed {seed}: decrypted distance drifted ({} vs {d})",
                t.distance_to_uniform
            );
        }
    }
}

/// The coordinator rejects duplicate, unknown and late contributions — the
/// uploads a retrying networked transport could replay — instead of silently
/// folding them into the homomorphic sums.
#[test]
fn the_server_rejects_replayed_and_unknown_contributions() {
    use dubhe_select::{CoordinatorServer, ProtocolError};

    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let registry =
        |rng: &mut rand::rngs::StdRng| EncryptedVector::encrypt_u64(&kp.public, &[1, 0, 0], rng);

    // Registration: one upload per known client, none after the broadcast.
    let mut server = CoordinatorServer::with_public_key(kp.public.clone(), 2);
    server
        .handle(ProtocolMsg::EncryptedRegistry {
            client: 0,
            registry: registry(&mut rng),
        })
        .unwrap();
    assert_eq!(
        server
            .handle(ProtocolMsg::EncryptedRegistry {
                client: 0,
                registry: registry(&mut rng),
            })
            .unwrap_err(),
        ProtocolError::DuplicateContribution {
            client: 0,
            try_index: None
        }
    );
    assert_eq!(
        server
            .handle(ProtocolMsg::EncryptedRegistry {
                client: 9,
                registry: registry(&mut rng),
            })
            .unwrap_err(),
        ProtocolError::UnknownContributor {
            client: 9,
            try_index: None
        }
    );
    let broadcast = server
        .handle(ProtocolMsg::EncryptedRegistry {
            client: 1,
            registry: registry(&mut rng),
        })
        .unwrap();
    assert!(!broadcast.is_empty(), "second upload completes the epoch");
    assert_eq!(
        server
            .handle(ProtocolMsg::EncryptedRegistry {
                client: 1,
                registry: registry(&mut rng),
            })
            .unwrap_err(),
        ProtocolError::EpochComplete { client: 1 }
    );
    // The corrupted uploads never reached the fold: it still decrypts to
    // exactly two registrations.
    let total = server.encrypted_total().unwrap();
    assert_eq!(total.decrypt_u64(&kp.private).unwrap(), vec![2, 0, 0]);

    // Multi-time: only announced participants, once each.
    server.announce_try(0, &[3, 5]);
    let dist =
        |rng: &mut rand::rngs::StdRng| EncryptedVector::encrypt_u64(&kp.public, &[7, 7, 7], rng);
    server
        .handle(ProtocolMsg::EncryptedDistribution {
            client: 5,
            try_index: 0,
            distribution: dist(&mut rng),
        })
        .unwrap();
    assert_eq!(
        server
            .handle(ProtocolMsg::EncryptedDistribution {
                client: 5,
                try_index: 0,
                distribution: dist(&mut rng),
            })
            .unwrap_err(),
        ProtocolError::DuplicateContribution {
            client: 5,
            try_index: Some(0)
        }
    );
    assert_eq!(
        server
            .handle(ProtocolMsg::EncryptedDistribution {
                client: 4,
                try_index: 0,
                distribution: dist(&mut rng),
            })
            .unwrap_err(),
        ProtocolError::UnknownContributor {
            client: 4,
            try_index: Some(0)
        }
    );
    assert_eq!(
        server
            .handle(ProtocolMsg::EncryptedDistribution {
                client: 3,
                try_index: 7,
                distribution: dist(&mut rng),
            })
            .unwrap_err(),
        ProtocolError::UnknownTry { try_index: 7 }
    );
    let sum = server
        .handle(ProtocolMsg::EncryptedDistribution {
            client: 3,
            try_index: 0,
            distribution: dist(&mut rng),
        })
        .unwrap();
    assert_eq!(sum.len(), 1, "the completed try goes to the agent");
}
