//! Property-based tests for the Dubhe selection core: codebook bijection,
//! Algorithm-1 invariants, probability-calculation guarantees and selector
//! contracts.

use dubhe_data::ClassDistribution;
use dubhe_select::codebook::{binomial, rank_subset, unrank_subset, Category, RegistryLayout};
use dubhe_select::probability::{expected_participation, participation_probability};
use dubhe_select::registry::register;
use dubhe_select::selector::{population_distribution, ClientSelector, RandomSelector};
use dubhe_select::{DubheConfig, DubheSelector};
use proptest::prelude::*;
use rand::SeedableRng;

/// A strategy producing a non-empty 10-class count vector.
fn counts_10() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..200, 10)
        .prop_filter("at least one sample", |v| v.iter().sum::<u64>() > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_unrank_bijection(classes in 4usize..20, k in 1usize..4, raw_rank in any::<u64>()) {
        let k = k.min(classes);
        let total = binomial(classes, k);
        let rank = raw_rank % total;
        let subset = unrank_subset(rank, k, classes);
        prop_assert_eq!(subset.len(), k);
        prop_assert!(subset.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(*subset.last().unwrap() < classes);
        prop_assert_eq!(rank_subset(&subset, classes), rank);
    }

    #[test]
    fn registry_position_round_trip(counts in counts_10()) {
        let layout = RegistryLayout::group1();
        let d = ClassDistribution::from_counts(counts);
        let reg = register(&d, &layout, &[0.7, 0.1, 0.0]);
        // Exactly one bit is set, at the reported position, and the category
        // decodes back from that position.
        prop_assert_eq!(reg.registry.iter().sum::<u64>(), 1);
        prop_assert_eq!(reg.registry[reg.position], 1);
        prop_assert_eq!(layout.category_at(reg.position), reg.category.clone());
        // The dominating-class count is a member of G.
        prop_assert!(layout.reference_set().contains(&reg.dominating_count));
        // Dominating classes really are the most frequent ones: every class in
        // the category has at least as many samples as every class outside it
        // (up to ties).
        let min_in: u64 = reg.category.classes.iter().map(|&c| d.counts()[c]).min().unwrap();
        let max_out: u64 = (0..10)
            .filter(|c| !reg.category.classes.contains(c))
            .map(|c| d.counts()[c])
            .max()
            .unwrap_or(0);
        prop_assert!(min_in >= max_out);
    }

    #[test]
    fn expected_participation_never_exceeds_k_or_population(
        overall in prop::collection::vec(0u64..50, 1..60),
        k in 1usize..40,
    ) {
        let e = expected_participation(&overall, k);
        let population: u64 = overall.iter().sum();
        prop_assert!(e <= k as f64 + 1e-9, "expectation {e} exceeds K {k}");
        prop_assert!(e <= population as f64 + 1e-9);
        // And it equals K exactly when no category saturates.
        let nonzero = overall.iter().filter(|&&c| c > 0).count();
        if nonzero > 0 && overall.iter().filter(|&&c| c > 0).all(|&c| c as usize * nonzero >= k) {
            prop_assert!((e - k as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn probabilities_are_valid_and_equal_within_category(
        overall in prop::collection::vec(0u64..50, 1..60),
        k in 1usize..40,
    ) {
        for pos in 0..overall.len() {
            let p = participation_probability(&overall, pos, k);
            prop_assert!((0.0..=1.0).contains(&p));
            if overall[pos] == 0 {
                prop_assert_eq!(p, 0.0);
            }
        }
    }

    #[test]
    fn random_selector_contract(n in 2usize..200, k_frac in 0.01f64..1.0, seed in any::<u64>()) {
        let k = ((n as f64 * k_frac).ceil() as usize).clamp(1, n);
        let mut sel = RandomSelector::new(n, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = sel.select(&mut rng);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        prop_assert!(s.iter().all(|&id| id < n));
    }

    #[test]
    fn population_distribution_is_a_distribution(
        seed in any::<u64>(),
        n in 5usize..80,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists: Vec<ClassDistribution> = (0..n)
            .map(|i| {
                let mut counts = vec![1u64; 10];
                counts[i % 10] += (i as u64 * 7) % 90;
                ClassDistribution::from_counts(counts)
            })
            .collect();
        let k = (n / 2).max(1);
        let mut sel = RandomSelector::new(n, k);
        let selected = sel.select(&mut rng);
        let p_o = population_distribution(&selected, &dists).unwrap();
        prop_assert_eq!(p_o.len(), 10);
        prop_assert!((p_o.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p_o.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dubhe_selector_always_returns_exactly_k(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists: Vec<ClassDistribution> = (0..120)
            .map(|i| {
                let mut counts = vec![1u64; 10];
                counts[i % 10] += 60;
                ClassDistribution::from_counts(counts)
            })
            .collect();
        let mut config = DubheConfig::group1();
        config.k = 15;
        let mut sel = DubheSelector::new(&dists, config);
        let s = sel.select(&mut rng);
        prop_assert_eq!(s.len(), 15);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn category_positions_are_unique(classes in 3usize..12) {
        let layout = RegistryLayout::new(classes, &[1, 2, classes]);
        let mut seen = std::collections::HashSet::new();
        for a in 0..classes {
            prop_assert!(seen.insert(layout.position(&Category::new(vec![a]))));
            for b in (a + 1)..classes {
                prop_assert!(seen.insert(layout.position(&Category::new(vec![a, b]))));
            }
        }
        prop_assert!(seen.insert(layout.position(&Category::new((0..classes).collect()))));
        prop_assert_eq!(seen.len(), layout.len());
    }
}

/// A shared keypair for the snapshot-resume properties (key generation
/// dominates runtime, exactly as in `dubhe-he`'s property suite).
fn snapshot_keys() -> &'static dubhe_he::Keypair {
    use std::sync::OnceLock;
    static KEYS: OnceLock<dubhe_he::Keypair> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5AFE);
        dubhe_he::Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-recovery property over the coordinator grid: for any registry
    /// length × shard count × crash point, a coordinator restored from its
    /// snapshot finishes on a total bit-identical to both the uninterrupted
    /// sharded run and the single-fold reference.
    #[test]
    fn sharded_snapshot_resumes_bit_identically(len in 1usize..16,
                                                n in 2usize..7,
                                                shards in 1usize..5,
                                                cut_seed in any::<u64>(),
                                                seed in any::<u64>()) {
        use dubhe_select::protocol::{
            Coordinator, CoordinatorServer, Envelope, Party, ProtocolMsg, ShardedCoordinator,
        };

        let kp = snapshot_keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let uploads: Vec<Envelope> = (0..n)
            .map(|client| {
                let v: Vec<u64> = (0..len).map(|j| ((client * 13 + j * 7) % 9) as u64).collect();
                Envelope {
                    from: Party::Client(client),
                    to: Party::Server,
                    epoch: 0,
                    msg: ProtocolMsg::EncryptedRegistry {
                        client,
                        registry: dubhe_he::EncryptedVector::encrypt_u64(&kp.public, &v, &mut rng),
                    },
                }
            })
            .collect();
        let cut = 1 + (cut_seed as usize) % n;

        let mut single = CoordinatorServer::with_public_key(kp.public.clone(), n);
        let mut whole = ShardedCoordinator::with_public_key(kp.public.clone(), n, shards);
        let mut doomed = ShardedCoordinator::with_public_key(kp.public.clone(), n, shards);
        for e in &uploads {
            Coordinator::deliver(&mut single, e.clone()).unwrap();
            Coordinator::deliver(&mut whole, e.clone()).unwrap();
        }
        for e in uploads.iter().take(cut) {
            Coordinator::deliver(&mut doomed, e.clone()).unwrap();
        }
        let bytes = doomed.snapshot().unwrap();
        drop(doomed);
        let mut resumed = ShardedCoordinator::restore(&bytes).unwrap();
        prop_assert_eq!(resumed.shards(), shards);
        for e in uploads.iter().skip(cut) {
            Coordinator::deliver(&mut resumed, e.clone()).unwrap();
        }

        let reference = single.encrypted_total().expect("epoch complete");
        let uninterrupted = whole.encrypted_total().expect("epoch complete");
        let total = resumed.encrypted_total().expect("epoch complete");
        for ((a, b), c) in total
            .elements()
            .iter()
            .zip(uninterrupted.elements())
            .zip(reference.elements())
        {
            prop_assert_eq!(a.raw(), b.raw(), "resumed fold diverged from uninterrupted");
            prop_assert_eq!(a.raw(), c.raw(), "sharded fold diverged from single");
        }
    }
}
