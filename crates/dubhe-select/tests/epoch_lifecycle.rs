//! End-to-end pins for the epoch lifecycle: key rotation with cohort
//! re-registration (in memory and over TCP), stale/future frame rejection,
//! coordinator crash recovery from a snapshot (single and sharded), the
//! straggler deadline, and dropout-driven partial-cohort folds.
//!
//! The acceptance bar: a coordinator killed mid-aggregation and restored
//! from its snapshot must finish on a total *bit-identical* to the
//! uninterrupted run, and a round with injected churn must always close —
//! explicitly partial — instead of hanging.

use std::time::Duration;

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_data::ClassDistribution;
use dubhe_select::protocol::{
    pump, run_registration_with, run_registration_with_packing, run_try, run_try_with_dropouts,
    Coordinator, CoordinatorListener, CoordinatorServer, Envelope, InMemoryTransport,
    PackingPolicy, Party, ProtocolMsg, ShardedCoordinator, TcpTransport, Transport,
};
use dubhe_select::{ClientSelector, DubheConfig, DubheSelector, ProtocolError};
use rand::SeedableRng;

const KEY_BITS: u64 = 256;

fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: n,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    spec.build_partition(&mut rng).client_distributions()
}

#[test]
fn rotation_re_registers_the_cohort_under_a_fresh_key() {
    let dists = clients(12, 81);
    let mut config = DubheConfig::group1();
    config.k = 6;
    let mut rng = rand::rngs::StdRng::seed_from_u64(82);
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(12),
        &mut transport,
        &mut rng,
    )
    .unwrap();

    let overall_epoch0 = run.overall_registry().to_vec();
    let old_modulus = run.agent.public_key().n().clone();

    // Mid-simulation rotation: fresh keypair, everyone re-registers.
    for e in run.agent.rotate_epoch(12, &mut rng) {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .unwrap();

    assert_eq!(run.agent.epoch(), 1);
    assert_eq!(run.server.epoch(), 1);
    for c in &run.clients {
        assert_eq!(c.epoch(), 1, "client {} missed the rotation", c.id());
    }
    assert_ne!(
        run.agent.public_key().n(),
        &old_modulus,
        "rotation must generate a genuinely fresh key"
    );
    // Same distributions, fresh key: the re-derived overall registry is the
    // same plaintext decision even though every ciphertext changed.
    assert_eq!(run.overall_registry(), &overall_epoch0[..]);
    assert_eq!(run.agent.overall_registry(), Some(&overall_epoch0[..]));

    // The new epoch is live: a multi-time round runs to a verdict.
    let mut selector = DubheSelector::new(&dists, config);
    run.agent.expect_tries(1);
    let tentative = selector.select(&mut rng);
    run_try(
        0,
        &tentative,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut transport,
        &mut rng,
    )
    .unwrap();
    assert!(run.agent.verdict().is_some());

    // A replayed epoch-0 frame is now refused with a typed error.
    let stale = Envelope {
        from: Party::Agent,
        to: Party::Server,
        epoch: 0,
        msg: ProtocolMsg::TryVerdict {
            best_try: 0,
            distance: 0.0,
        },
    };
    match Coordinator::deliver(&mut run.server, stale) {
        Err(ProtocolError::StaleEpoch {
            received: 0,
            current: 1,
        }) => {}
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
}

#[test]
fn rotation_drives_re_registration_over_tcp() {
    let dists = clients(8, 91);
    let mut config = DubheConfig::group1();
    config.k = 4;
    let mut rng = rand::rngs::StdRng::seed_from_u64(92);

    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(8, 2)).unwrap();
    let endpoint = TcpTransport::connect(listener.addr()).unwrap();
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        endpoint,
        &mut transport,
        &mut rng,
    )
    .unwrap();
    let overall_epoch0 = run.overall_registry().to_vec();

    for e in run.agent.rotate_epoch(8, &mut rng) {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .unwrap();

    assert_eq!(run.agent.epoch(), 1);
    assert_eq!(run.overall_registry(), &overall_epoch0[..]);

    // The remote coordinator refuses a stale frame with a relayed typed
    // error — never a hang or a dropped session.
    let stale = Envelope {
        from: Party::Agent,
        to: Party::Server,
        epoch: 0,
        msg: ProtocolMsg::TryVerdict {
            best_try: 0,
            distance: 0.0,
        },
    };
    match Coordinator::deliver(&mut run.server, stale) {
        Err(ProtocolError::Remote { detail }) => {
            assert!(detail.contains("stale frame"), "{detail}");
        }
        other => panic!("expected a relayed stale-epoch error, got {other:?}"),
    }

    // The rotated epoch still works end-to-end over the socket.
    let mut selector = DubheSelector::new(&dists, config);
    run.agent.expect_tries(1);
    let tentative = selector.select(&mut rng);
    run_try(
        0,
        &tentative,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut transport,
        &mut rng,
    )
    .unwrap();
    assert!(run.agent.verdict().is_some());

    run.server.shutdown().unwrap();
    let coordinator = listener.shutdown().expect("listener state");
    assert_eq!(coordinator.epoch(), 1);
}

#[test]
fn stale_and_future_frames_are_typed_errors_at_every_role() {
    let dists = clients(3, 101);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(102);
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(3),
        &mut transport,
        &mut rng,
    )
    .unwrap();

    let verdict = |epoch: u64, to: Party| Envelope {
        from: Party::Agent,
        to,
        epoch,
        msg: ProtocolMsg::TryVerdict {
            best_try: 0,
            distance: 0.0,
        },
    };

    // The server refuses a non-key frame from the future...
    match Coordinator::deliver(&mut run.server, verdict(3, Party::Server)) {
        Err(ProtocolError::FutureEpoch {
            received: 3,
            current: 0,
        }) => {}
        other => panic!("expected FutureEpoch at the server, got {other:?}"),
    }
    // ...the agent (the epoch's author) refuses both directions...
    let total = run.server.encrypted_total().expect("epoch complete");
    let broadcast = |epoch: u64, to: Party| Envelope {
        from: Party::Server,
        to,
        epoch,
        msg: ProtocolMsg::EncryptedTotalBroadcast {
            total: total.clone(),
        },
    };
    match run.agent.deliver(broadcast(2, Party::Agent)) {
        Err(ProtocolError::FutureEpoch { .. }) => {}
        other => panic!("expected FutureEpoch at the agent, got {other:?}"),
    }
    for e in run.agent.rotate_epoch(3, &mut rng) {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .unwrap();
    match run.agent.deliver(broadcast(0, Party::Agent)) {
        Err(ProtocolError::StaleEpoch {
            received: 0,
            current: 1,
        }) => {}
        other => panic!("expected StaleEpoch at the agent, got {other:?}"),
    }
    // ...and a client refuses stale frames and non-key future frames alike.
    match run.clients[0].deliver(broadcast(0, Party::Client(0)), &mut rng) {
        Err(ProtocolError::StaleEpoch { .. }) => {}
        other => panic!("expected StaleEpoch at the client, got {other:?}"),
    }
    match run.clients[0].deliver(broadcast(9, Party::Client(0)), &mut rng) {
        Err(ProtocolError::FutureEpoch { .. }) => {}
        other => panic!("expected FutureEpoch at the client, got {other:?}"),
    }
}

/// Drives one full registration on a recording transport and returns the
/// envelopes it carried (key dispatch first, then every registry upload)
/// plus the uninterrupted coordinator's final total for comparison.
fn recorded_registration(n: usize, seed: u64) -> (Vec<Envelope>, dubhe_he::EncryptedVector) {
    let dists = clients(n, seed);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
    let mut transport = InMemoryTransport::recording();
    let run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(n),
        &mut transport,
        &mut rng,
    )
    .unwrap();
    let total = run.server.encrypted_total().expect("epoch complete");
    let replay: Vec<Envelope> = transport
        .transcript()
        .iter()
        .filter(|e| {
            matches!(
                e.msg,
                ProtocolMsg::PublicKeyDispatch { .. } | ProtocolMsg::EncryptedRegistry { .. }
            ) && e.to == Party::Server
        })
        .cloned()
        .collect();
    (replay, total)
}

#[test]
fn coordinator_killed_mid_aggregation_resumes_bit_identically() {
    let n = 10;
    let (replay, reference) = recorded_registration(n, 111);
    // replay[0] is the server's key dispatch; the rest are registries.
    assert_eq!(replay.len(), n + 1);

    for cut in [1usize, 4, 9] {
        let mut live = CoordinatorServer::new(n);
        for e in replay.iter().take(1 + cut) {
            Coordinator::deliver(&mut live, e.clone()).unwrap();
        }
        // Kill the coordinator mid-aggregation; all that survives is the
        // snapshot bytes.
        let bytes = live.snapshot().unwrap();
        drop(live);

        let mut resumed = CoordinatorServer::restore(&bytes).unwrap();
        let mut broadcast = Vec::new();
        for e in replay.iter().skip(1 + cut) {
            broadcast = Coordinator::deliver(&mut resumed, e.clone()).unwrap();
        }
        let total = resumed.encrypted_total().expect("epoch complete");
        assert_eq!(total.len(), reference.len());
        for (a, b) in total.elements().iter().zip(reference.elements()) {
            assert_eq!(a.raw(), b.raw(), "cut {cut}: resumed fold diverged");
        }
        // The broadcast the resumed coordinator emits carries that exact
        // bit-identical total.
        assert!(
            !broadcast.is_empty(),
            "cut {cut}: completion must broadcast"
        );
    }
}

#[test]
fn sharded_coordinator_killed_mid_aggregation_resumes_bit_identically() {
    let n = 12;
    let (replay, reference) = recorded_registration(n, 121);

    for shards in [1usize, 3, 4] {
        for cut in [2usize, 7] {
            let mut live = ShardedCoordinator::new(n, shards);
            for e in replay.iter().take(1 + cut) {
                Coordinator::deliver(&mut live, e.clone()).unwrap();
            }
            let bytes = live.snapshot().unwrap();
            drop(live);

            let mut resumed = ShardedCoordinator::restore(&bytes).unwrap();
            assert_eq!(resumed.shards(), shards);
            for e in replay.iter().skip(1 + cut) {
                Coordinator::deliver(&mut resumed, e.clone()).unwrap();
            }
            let total = resumed.encrypted_total().expect("epoch complete");
            for (a, b) in total.elements().iter().zip(reference.elements()) {
                assert_eq!(
                    a.raw(),
                    b.raw(),
                    "shards {shards} cut {cut}: resumed fold diverged"
                );
            }
        }
    }
}

/// The packed twin of [`recorded_registration`]: the same full registration
/// driven under a 32-bit [`PackingPolicy`], returning the server-bound
/// envelopes and the uninterrupted packed total.
fn recorded_packed_registration(
    n: usize,
    seed: u64,
    policy: PackingPolicy,
) -> (Vec<Envelope>, dubhe_he::PackedEncryptedVector) {
    let dists = clients(n, seed);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
    let mut transport = InMemoryTransport::recording();
    let run = run_registration_with_packing(
        &dists,
        &config,
        KEY_BITS,
        policy,
        CoordinatorServer::new(n).with_packing(policy),
        &mut transport,
        &mut rng,
    )
    .unwrap();
    let total = run.server.packed_encrypted_total().expect("epoch complete");
    let replay: Vec<Envelope> = transport
        .transcript()
        .iter()
        .filter(|e| {
            matches!(
                e.msg,
                ProtocolMsg::PublicKeyDispatch { .. } | ProtocolMsg::PackedRegistry { .. }
            ) && e.to == Party::Server
        })
        .cloned()
        .collect();
    (replay, total)
}

#[test]
fn coordinator_killed_mid_packed_aggregation_resumes_bit_identically() {
    // The packed crash-recovery pin: kill the coordinator between packed
    // uploads (including right after the seeding upload and one short of
    // completion), restore it from the snapshot bytes alone, and finish.
    // The resumed packed total must be bit-identical, ciphertext for
    // ciphertext, to the uninterrupted fold — and the restored coordinator
    // must still know its slot layout (the snapshot carries the policy, and
    // restore cross-validates fold against policy).
    let n = 10;
    let policy = PackingPolicy::new(32, KEY_BITS, n as u64).unwrap();
    let (replay, reference) = recorded_packed_registration(n, 311, policy);
    assert_eq!(replay.len(), n + 1);
    // Length-56 registries at 7 lanes per 256-bit plaintext: 8 ciphertexts.
    assert_eq!(reference.ciphertext_count(), 8);

    for cut in [1usize, 4, 9] {
        let mut live = CoordinatorServer::new(n).with_packing(policy);
        for e in replay.iter().take(1 + cut) {
            Coordinator::deliver(&mut live, e.clone()).unwrap();
        }
        let bytes = live.snapshot().unwrap();
        drop(live);

        let mut resumed = CoordinatorServer::restore(&bytes).unwrap();
        assert_eq!(
            resumed.packing(),
            Some(&policy),
            "policy survives the crash"
        );
        let mut broadcast = Vec::new();
        for e in replay.iter().skip(1 + cut) {
            broadcast = Coordinator::deliver(&mut resumed, e.clone()).unwrap();
        }
        let total = resumed.packed_encrypted_total().expect("epoch complete");
        assert_eq!(total.count(), reference.count());
        for (a, b) in total
            .vector()
            .elements()
            .iter()
            .zip(reference.vector().elements())
        {
            assert_eq!(a.raw(), b.raw(), "cut {cut}: resumed packed fold diverged");
        }
        assert!(
            broadcast
                .iter()
                .any(|e| matches!(e.msg, ProtocolMsg::PackedTotalBroadcast { .. })),
            "cut {cut}: completion must broadcast the packed total"
        );
    }
}

#[test]
fn sharded_coordinator_killed_mid_packed_aggregation_resumes_bit_identically() {
    // Same pin against the sharded coordinator, with shard counts that do
    // NOT divide the 8-ciphertext layout evenly — the shard boundaries land
    // mid-vector between plaintexts (3 shards -> ranges of 3/3/2
    // ciphertexts, i.e. 21/21/14 lanes), so a crash straddles both a shard
    // boundary and a plaintext boundary. The restored partition, lane count
    // and every shard fold must line back up bit-identically.
    let n = 12;
    let policy = PackingPolicy::new(32, KEY_BITS, n as u64).unwrap();
    let (replay, reference) = recorded_packed_registration(n, 321, policy);

    for shards in [1usize, 3, 4] {
        for cut in [2usize, 7, 11] {
            let mut live = ShardedCoordinator::new(n, shards).with_packing(policy);
            for e in replay.iter().take(1 + cut) {
                Coordinator::deliver(&mut live, e.clone()).unwrap();
            }
            let bytes = live.snapshot().unwrap();
            drop(live);

            let mut resumed = ShardedCoordinator::restore(&bytes).unwrap();
            assert_eq!(resumed.shards(), shards);
            assert_eq!(resumed.packing(), Some(&policy));
            for e in replay.iter().skip(1 + cut) {
                Coordinator::deliver(&mut resumed, e.clone()).unwrap();
            }
            let total = resumed.packed_encrypted_total().expect("epoch complete");
            for (a, b) in total
                .vector()
                .elements()
                .iter()
                .zip(reference.vector().elements())
            {
                assert_eq!(
                    a.raw(),
                    b.raw(),
                    "shards {shards} cut {cut}: resumed packed fold diverged"
                );
            }
        }
    }
}

#[test]
fn straggler_deadline_closes_partial_rounds_instead_of_hanging() {
    let n = 4;
    let (replay, _) = recorded_registration(n, 131);

    // A zero deadline expires immediately: as soon as one registry is in,
    // close_expired folds whatever arrived.
    let mut server = CoordinatorServer::new(n).with_straggler_deadline(Duration::ZERO);
    for e in replay.iter().take(1 + 2) {
        Coordinator::deliver(&mut server, e.clone()).unwrap();
    }
    let envelopes = server.close_expired().unwrap();
    assert!(
        envelopes
            .iter()
            .any(|e| matches!(e.msg, ProtocolMsg::EncryptedTotalBroadcast { .. })),
        "an expired registration must broadcast its partial total"
    );
    let outcome = *server.cohort_outcomes().last().expect("recorded");
    assert_eq!(outcome.expected, n);
    assert_eq!(outcome.contributed, 2);
    assert!(outcome.partial);
    assert_eq!(outcome.try_index, None);

    // A straggler arriving after the close is a typed error, not corruption.
    match Coordinator::deliver(&mut server, replay[3].clone()) {
        Err(ProtocolError::EpochComplete { .. }) => {}
        other => panic!("expected EpochComplete after partial close, got {other:?}"),
    }

    // An expired try nobody contributed to is abandoned — recorded, no
    // envelope, no hang.
    server.announce_try(7, &[0, 1]);
    let envelopes = server.close_expired().unwrap();
    assert!(envelopes.is_empty());
    let outcome = *server.cohort_outcomes().last().expect("recorded");
    assert_eq!(outcome.try_index, Some(7));
    assert_eq!(outcome.contributed, 0);
    assert!(outcome.partial);

    // Without a deadline, close_expired is a no-op (nothing ever "expires").
    let mut patient = CoordinatorServer::new(n);
    for e in replay.iter().take(1 + 2) {
        Coordinator::deliver(&mut patient, e.clone()).unwrap();
    }
    assert!(patient.close_expired().unwrap().is_empty());
}

#[test]
fn dropout_partial_fold_feeds_the_agent_a_normalized_sum() {
    let dists = clients(10, 141);
    let mut config = DubheConfig::group1();
    config.k = 5;
    let mut rng = rand::rngs::StdRng::seed_from_u64(142);
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(10),
        &mut transport,
        &mut rng,
    )
    .unwrap();

    let mut selector = DubheSelector::new(&dists, config);
    run.agent.expect_tries(1);
    let tentative = selector.select(&mut rng);
    assert!(tentative.len() >= 2, "need a survivor besides the dropout");
    let dropped = vec![tentative[0]];

    run_try_with_dropouts(
        0,
        &tentative,
        &dropped,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut transport,
        &mut rng,
    )
    .unwrap();

    // The round closed on the partial cohort and the agent still scored it.
    let (best_try, distance) = run.agent.verdict().expect("verdict on partial cohort");
    assert_eq!(best_try, 0);
    assert!(distance.is_finite());
    let outcome = *run.server.cohort_outcomes().last().expect("recorded");
    assert_eq!(outcome.try_index, Some(0));
    assert_eq!(outcome.expected, tentative.len());
    assert_eq!(outcome.contributed, tentative.len() - 1);
    assert!(outcome.partial);

    // The agent's population estimate is normalized by the *actual*
    // contributor count: a probability distribution, not a scaled one.
    let outcome = &run.agent.try_outcomes()[0];
    let mass: f64 = outcome.population.iter().sum();
    assert!((mass - 1.0).abs() < 1e-6, "population mass {mass}");

    // Dropping *every* participant abandons the try with a typed error.
    run.agent.expect_tries(1);
    let all = tentative.clone();
    let err = run_try_with_dropouts(
        1,
        &tentative,
        &all,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut transport,
        &mut rng,
    )
    .unwrap_err();
    match err {
        dubhe_select::SelectError::Protocol(ProtocolError::NothingToClose { what }) => {
            assert_eq!(what, "try");
        }
        other => panic!("expected NothingToClose, got {other:?}"),
    }
}
