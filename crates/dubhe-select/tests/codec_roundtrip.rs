//! Codec robustness: property-based round-trips of every [`WireMsg`]
//! variant through both payload codecs, and `DBH2` frame error paths
//! mirroring the `DBH1` suite — against byte cursors and against the live
//! TCP listener.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use dubhe_he::{EncryptedVector, Keypair};
use dubhe_select::protocol::{
    read_frame, write_frame_with, CodecKind, CoordinatorListener, Envelope, Party, ProtocolMsg,
    ShardedCoordinator, WireMsg, FRAME_MAGIC_V2, MAX_FRAME_BYTES,
};
use dubhe_select::ProtocolError;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One shared keypair: key generation dominates a per-case budget and the
/// codecs only care about the *shape* of the key material.
fn keypair() -> &'static Keypair {
    static KEYPAIR: OnceLock<Keypair> = OnceLock::new();
    KEYPAIR.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xD0B43);
        Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng)
    })
}

fn vector(values: &[u64], rng: &mut StdRng) -> EncryptedVector {
    EncryptedVector::encrypt_u64(&keypair().public, values, rng)
}

/// Builds one randomized [`ProtocolMsg`] of the chosen shape.
fn protocol_msg(
    variant: usize,
    values: &[u64],
    scalars: (usize, usize),
    rng: &mut StdRng,
) -> ProtocolMsg {
    let (a, b) = scalars;
    match variant {
        0 => ProtocolMsg::PublicKeyDispatch {
            public_key: keypair().public.clone(),
            private_key: if a % 2 == 0 {
                Some(keypair().private.clone())
            } else {
                None
            },
        },
        1 => ProtocolMsg::EncryptedRegistry {
            client: a,
            registry: vector(values, rng),
        },
        2 => ProtocolMsg::EncryptedTotalBroadcast {
            total: vector(values, rng),
        },
        3 => ProtocolMsg::EncryptedDistribution {
            client: a,
            try_index: b,
            distribution: vector(values, rng),
        },
        4 => ProtocolMsg::EncryptedDistributionSum {
            try_index: b,
            contributors: a,
            sum: vector(values, rng),
        },
        _ => ProtocolMsg::TryVerdict {
            best_try: b,
            distance: (a % 1000) as f64 / 8.0,
        },
    }
}

/// Builds one randomized [`WireMsg`] covering every variant.
fn wire_msg(
    variant: usize,
    inner: usize,
    values: &[u64],
    scalars: (usize, usize),
    text: &str,
    rng: &mut StdRng,
) -> WireMsg {
    let envelope = |rng: &mut StdRng| Envelope {
        from: Party::Client(scalars.0),
        to: if inner.is_multiple_of(2) {
            Party::Server
        } else {
            Party::Agent
        },
        epoch: scalars.1 as u64,
        msg: protocol_msg(inner % 6, values, scalars, rng),
    };
    match variant {
        0 => WireMsg::Envelope {
            envelope: envelope(rng),
        },
        1 => WireMsg::AnnounceTry {
            try_index: scalars.1,
            participants: values.iter().map(|&v| v as usize).collect(),
        },
        2 => WireMsg::Batch {
            envelopes: (0..inner % 3).map(|_| envelope(rng)).collect(),
        },
        3 => WireMsg::Ack,
        4 => WireMsg::Error {
            detail: text.to_string(),
        },
        _ => WireMsg::Shutdown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every variant of every message, filled with random contents, must
    /// survive encode → frame → read-frame → decode through both codecs,
    /// and the negotiated codec must match the one that framed it.
    #[test]
    fn every_wiremsg_round_trips_through_both_codecs(
        variant in 0usize..6,
        inner in 0usize..12,
        values in prop::collection::vec(0u64..10_000, 1..9),
        a in 0usize..1000,
        b in 0usize..64,
        text_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(text_seed);
        let text = format!("error {}", rng.gen_range(0..100_000));
        let msg = wire_msg(variant, inner, &values, (a, b), &text, &mut rng);
        for codec in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
            // Payload-level round trip.
            let payload = codec.encode(&msg).unwrap();
            prop_assert_eq!(codec.decode(&payload).unwrap(), msg.clone());
            // Frame-level round trip, including magic negotiation.
            let mut framed = Vec::new();
            let written = write_frame_with(&mut framed, &msg, codec).unwrap();
            prop_assert_eq!(written, framed.len());
            prop_assert_eq!(&framed[..4], &codec.magic()[..]);
            let (back, consumed) = read_frame(&mut &framed[..]).unwrap();
            prop_assert_eq!(back, msg.clone());
            prop_assert_eq!(consumed, framed.len());
        }
    }

    /// Arbitrary byte soup handed to the binary decoder must fail with a
    /// typed error — never panic, never succeed by accident (the chance of
    /// random bytes forming a valid ciphertext payload is negligible, but a
    /// clean `Ok` on `[3]`-style one-byte frames is legitimate).
    #[test]
    fn binary_decoder_survives_random_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        match CodecKind::Binary.decode(&bytes) {
            Ok(msg) => {
                // If random bytes happen to decode, they must re-encode to
                // the exact same bytes (the encoding is canonical).
                prop_assert_eq!(CodecKind::Binary.encode(&msg).unwrap(), bytes);
            }
            Err(e) => prop_assert!(
                matches!(e, ProtocolError::MalformedFrame { .. }),
                "unexpected error shape: {}", e
            ),
        }
    }

    /// Truncating a valid DBH2 frame at any byte yields a typed framing
    /// error (truncated/disconnected), mirroring the DBH1 suite.
    #[test]
    fn truncated_dbh2_frames_are_typed_errors(
        cut_seed in any::<u64>(),
        values in prop::collection::vec(0u64..100, 1..5),
    ) {
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let msg = WireMsg::Envelope {
            envelope: Envelope {
                from: Party::Client(1),
                to: Party::Server,
                epoch: 3,
                msg: ProtocolMsg::EncryptedRegistry {
                    client: 1,
                    registry: vector(&values, &mut rng),
                },
            },
        };
        let mut framed = Vec::new();
        write_frame_with(&mut framed, &msg, CodecKind::Binary).unwrap();
        let cut = rng.gen_range(0..framed.len());
        let err = read_frame(&mut &framed[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                ProtocolError::TruncatedFrame { .. } | ProtocolError::Disconnected
            ),
            "cut {}: {}", cut, err
        );
    }
}

#[test]
fn oversized_dbh2_header_is_rejected_before_allocating() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&FRAME_MAGIC_V2);
    buf.extend_from_slice(&(u32::MAX).to_be_bytes());
    assert_eq!(
        read_frame(&mut &buf[..]).unwrap_err(),
        ProtocolError::FrameTooLarge {
            len: u32::MAX as usize,
            max: MAX_FRAME_BYTES,
        }
    );
}

#[test]
fn garbage_dbh2_frames_get_an_error_reply_and_a_hangup() {
    // The live-listener mirror of the DBH1 garbage-frame test: a frame with
    // a valid DBH2 magic but an undecodable payload is reported as a typed
    // error frame, then the connection closes.
    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let mut raw = TcpStream::connect(listener.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = [42u8, 13, 13, 13];
    raw.write_all(&FRAME_MAGIC_V2).unwrap();
    raw.write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(&payload).unwrap();
    let (reply, _) = read_frame(&mut raw).expect("an error frame before the hangup");
    match reply {
        WireMsg::Error { detail } => assert!(detail.contains("malformed"), "{detail}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0, "connection closed");
}

#[test]
fn truncated_dbh2_frame_against_the_listener_surfaces_as_error_reply() {
    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let mut raw = TcpStream::connect(listener.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // A correct DBH2 magic announcing 100 payload bytes, of which only 3
    // arrive before the client half-closes.
    raw.write_all(&FRAME_MAGIC_V2).unwrap();
    raw.write_all(&100u32.to_be_bytes()).unwrap();
    raw.write_all(b"abc").unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let (reply, _) = read_frame(&mut raw).expect("an error frame before the hangup");
    match reply {
        WireMsg::Error { detail } => assert!(detail.contains("truncated"), "{detail}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
}
