//! Equivalence and robustness pins for the networked/sharded coordinator.
//!
//! The acceptance bar of the transport work: a `ShardedCoordinator` (N ∈
//! {1, 4}) and a TCP-loopback session must be *bit-identical* to the
//! in-memory single-coordinator exchange on the same seed — same decrypted
//! overall registry, same ciphertext residues, same verdict, same canonical
//! byte accounting — and the TCP layer must surface every failure mode as a
//! `ProtocolError`, never a panic or a hang.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_data::ClassDistribution;
use dubhe_select::protocol::{
    read_frame, run_registration_with, run_try, CodecKind, Coordinator, CoordinatorListener,
    Envelope, InMemoryTransport, Party, ProtocolMsg, ShardedCoordinator, TcpTransport,
    TransportStats, WireMsg, FRAME_MAGIC,
};
use dubhe_select::{ClientSelector, DubheConfig, DubheSelector, ProtocolError};
use rand::SeedableRng;

const KEY_BITS: u64 = 256;

fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: n,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    spec.build_partition(&mut rng).client_distributions()
}

/// One full session (registration + H=3 multi-time round) against an
/// arbitrary coordinator slot. Returns everything the equivalence pins
/// compare: the decrypted overall registry, the agent's verdict, the
/// canonical transport stats, and the coordinator slot back.
fn drive_session<C: Coordinator>(
    dists: &[ClassDistribution],
    seed: u64,
    server: C,
) -> (Vec<u64>, (usize, f64), TransportStats, C) {
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut transport = InMemoryTransport::new();
    let mut run =
        run_registration_with(dists, &config, KEY_BITS, server, &mut transport, &mut rng).unwrap();

    let mut selector = DubheSelector::new(dists, config);
    run.agent.expect_tries(3);
    for try_index in 0..3 {
        let tentative = selector.select(&mut rng);
        run_try(
            try_index,
            &tentative,
            &mut run.agent,
            &mut run.clients,
            &mut run.server,
            &mut transport,
            &mut rng,
        )
        .unwrap();
    }

    let overall = run.overall_registry().to_vec();
    let verdict = run.agent.verdict().expect("all tries evaluated");
    (overall, verdict, *transport.stats(), run.server)
}

#[test]
fn sharded_coordinator_is_bit_identical_to_single_for_n_1_and_4() {
    let dists = clients(20, 51);

    let (overall_single, verdict_single, stats_single, single) =
        drive_session(&dists, 52, dubhe_select::CoordinatorServer::new(20));
    let total_single = single.encrypted_total().expect("epoch complete");

    for shards in [1usize, 4] {
        let (overall, verdict, stats, sharded) =
            drive_session(&dists, 52, ShardedCoordinator::new(20, shards));
        assert_eq!(overall, overall_single, "shards={shards}");
        assert_eq!(verdict, verdict_single, "shards={shards}");
        assert_eq!(stats, stats_single, "shards={shards}");
        // Bit-identical ciphertext folds, element by element.
        let total = sharded.encrypted_total().expect("epoch complete");
        assert_eq!(total.len(), total_single.len());
        for (a, b) in total.elements().iter().zip(total_single.elements()) {
            assert_eq!(a.raw(), b.raw(), "shards={shards}: fold diverged");
        }
        assert_eq!(sharded.messages_received(), single.messages_received());
        assert_eq!(sharded.bytes_received(), single.bytes_received());
    }
}

#[test]
fn tcp_loopback_session_is_bit_identical_to_in_memory_under_both_codecs() {
    let dists = clients(24, 61);

    let (overall_mem, verdict_mem, stats_mem, server) =
        drive_session(&dists, 62, dubhe_select::CoordinatorServer::new(24));

    // Same exchange, but every server-bound envelope crosses a real socket
    // to a sharded listener — once framed as DBH1 JSON, once as DBH2
    // canonical binary. Decisions and canonical accounting must be
    // identical; only the measured framing differs.
    let mut wire_totals = Vec::new();
    for codec in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(24, 4)).unwrap();
        let endpoint = TcpTransport::connect_with_codec(listener.addr(), codec).unwrap();
        let (overall_tcp, verdict_tcp, stats_tcp, endpoint) = drive_session(&dists, 62, endpoint);

        assert_eq!(overall_tcp, overall_mem, "{}", codec.name());
        assert_eq!(verdict_tcp, verdict_mem, "{}", codec.name());
        // The local transport saw the identical message flow...
        assert_eq!(stats_tcp, stats_mem, "{}", codec.name());
        // ...and the socket actually carried it: framed bytes exceed the
        // canonical ciphertext accounting (framing is not free).
        let wire = *endpoint.wire_stats();
        assert!(wire.frames_sent > 0 && wire.frames_received > 0);
        assert!(
            wire.total_bytes() > stats_mem.total().bytes,
            "{}: framed traffic {} should exceed canonical bytes {}",
            codec.name(),
            wire.total_bytes(),
            stats_mem.total().bytes
        );
        wire_totals.push(wire.total_bytes());
        endpoint.shutdown().unwrap();
        let coordinator = listener.shutdown().expect("listener state");
        // The remote coordinator saw exactly what the in-memory server saw,
        // in canonical units — regardless of the payload format.
        assert_eq!(coordinator.messages_received(), server.messages_received());
        assert_eq!(coordinator.bytes_received(), server.bytes_received());
        assert_eq!(coordinator.last_verdict(), Some(verdict_mem));
    }
    assert!(
        wire_totals[1] < wire_totals[0],
        "DBH2 ({}) must frame the identical session in fewer bytes than DBH1 ({})",
        wire_totals[1],
        wire_totals[0]
    );
}

#[test]
fn remote_coordinator_relays_protocol_errors() {
    // A registry from an unknown client must come back as a typed remote
    // rejection, not a hang or a dropped connection.
    let dists = clients(4, 71);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(72);

    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(4, 2)).unwrap();
    let endpoint = TcpTransport::connect(listener.addr()).unwrap();
    let mut transport = InMemoryTransport::new();
    let mut run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        endpoint,
        &mut transport,
        &mut rng,
    )
    .unwrap();

    // Replay client 0's registration after the epoch completed.
    let registry =
        dubhe_he::EncryptedVector::encrypt_u64(run.agent.public_key(), &vec![0u64; 56], &mut rng);
    let err = run
        .server
        .deliver(Envelope {
            from: Party::Client(0),
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::EncryptedRegistry {
                client: 0,
                registry,
            },
        })
        .unwrap_err();
    match err {
        ProtocolError::Remote { detail } => {
            assert!(detail.contains("after the total was broadcast"), "{detail}");
        }
        other => panic!("expected a relayed remote error, got {other}"),
    }
}

#[test]
fn garbage_frames_get_an_error_reply_and_a_hangup() {
    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let mut raw = TcpStream::connect(listener.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\nHost: dubhe\r\n\r\n")
        .unwrap();
    // The listener reports the malformed frame and closes.
    let (reply, _) = read_frame(&mut raw).expect("an error frame before the hangup");
    match reply {
        WireMsg::Error { detail } => assert!(detail.contains("malformed"), "{detail}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0, "connection closed");
}

#[test]
fn truncated_frame_surfaces_as_error_reply() {
    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let mut raw = TcpStream::connect(listener.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // A correct magic and a length announcing 100 bytes... of which only 3
    // arrive before the client half-closes.
    raw.write_all(&FRAME_MAGIC).unwrap();
    raw.write_all(&100u32.to_be_bytes()).unwrap();
    raw.write_all(b"abc").unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let (reply, _) = read_frame(&mut raw).expect("an error frame before the hangup");
    match reply {
        WireMsg::Error { detail } => assert!(detail.contains("truncated"), "{detail}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn mid_exchange_disconnect_is_an_error_not_a_hang() {
    // The "server" accepts and immediately drops the connection.
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let killer = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
    });
    let mut endpoint = TcpTransport::connect_with_timeout(addr, Duration::from_secs(2)).unwrap();
    killer.join().unwrap();
    let err = endpoint
        .deliver(Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try: 0,
                distance: 0.0,
            },
        })
        .unwrap_err();
    assert!(
        matches!(
            err,
            ProtocolError::Disconnected
                | ProtocolError::TruncatedFrame { .. }
                | ProtocolError::Io { .. }
        ),
        "unexpected error shape: {err}"
    );
}

#[test]
fn silent_peer_times_out_instead_of_hanging() {
    // The "server" accepts and never replies; the connector's read timeout
    // must bound the wait.
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let holder = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(3));
        drop(stream);
    });
    let mut endpoint =
        TcpTransport::connect_with_timeout(addr, Duration::from_millis(300)).unwrap();
    let started = std::time::Instant::now();
    let err = endpoint
        .announce_try(0, &[1, 2, 3])
        .expect_err("silent peer must not look like success");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "timed out too slowly: {:?}",
        started.elapsed()
    );
    assert!(matches!(err, ProtocolError::Io { .. }), "{err}");
    holder.join().unwrap();
}

#[test]
fn connect_to_a_dead_port_fails_cleanly() {
    // Bind-then-drop guarantees the port is closed.
    let addr = {
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap()
    };
    let err = TcpTransport::connect(addr).unwrap_err();
    assert!(matches!(err, ProtocolError::Io { .. }), "{err}");
}
